"""Sharded-vs-single-process A/B bench for the conservative shard runtime.

Drives the ``fig_scale`` cluster workload three ways over the same
byte-exact arrival plan:

- **single-process (stepped)** — today's default path:
  ``drive_network`` with ``progress="stepped"``, the mode
  ``BENCH_network.json`` pins against the frozen seed;
- **single-process (analytic)** — ``run_network_single``: one
  environment in ``progress="analytic"`` mode, the exactness reference
  every sharded run must match bit-for-bit;
- **sharded** — ``run_network_sharded`` at S ∈ {2, 4, 8}: NICs
  partitioned across shard processes synchronized with conservative
  time windows (``repro/sim/shard.py``).

Every sharded run's merged transfer records are asserted tuple-identical
to the analytic single-process run — the bench is invalid on a single
bit of drift.  The headline number is S=4 wall clock versus the
single-process path on the 128-node cells; ``shards=1`` is also timed to
show the passthrough adds no overhead.

Run directly (``python benchmarks/test_bench_shard.py``) to refresh the
committed ``BENCH_shard.json``; pass ``--quick`` for the small sweep the
CI smoke job uses (bit-identity asserted, speedup recorded but not
gated — small cells are dominated by process-spawn overhead).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.experiments.fig_scale import drive_network, drive_network_sharded
from repro.sim import network as live_network

_HERE = Path(__file__).resolve().parent
_ROUNDS = 2
# Acceptance gate (full mode only): S=4 must at least halve the
# single-process wall clock on a 100+ node cell.
_TARGET_S4_SPEEDUP = 2.0
_CELLS = [
    (128, 8000),
    (128, 16000),
]
_QUICK_CELLS = [
    (32, 600),
    (64, 1200),
]
_SHARDS = (2, 4, 8)
_QUICK_SHARDS = (2, 4)


def _best_of(fn, rounds: int) -> float:
    wall = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        wall = min(wall, time.perf_counter() - start)
    return wall


def _measure(cells, shard_counts, rounds: int = _ROUNDS):
    results = []
    for nodes, flows in cells:
        # Exactness reference: single-process analytic run.
        reference = drive_network_sharded(
            nodes, flows, 1, collect_records=True
        )
        ref_records = reference["records"]

        # Today's single-process path (stepped mode), timed as-is.
        stepped = drive_network(live_network, nodes, flows)
        stepped_rounds = 1 if stepped["wall_seconds"] > 5.0 else rounds
        stepped_wall = stepped["wall_seconds"]
        for _ in range(stepped_rounds - 1):
            stepped_wall = min(
                stepped_wall,
                drive_network(live_network, nodes, flows)["wall_seconds"],
            )

        analytic_wall = _best_of(
            lambda: drive_network_sharded(nodes, flows, 1), rounds
        )
        # shards=1 through the sharded entry point (the passthrough).
        passthrough_wall = _best_of(
            lambda: drive_network_sharded(nodes, flows, 1), rounds
        )

        cell = {
            "nodes": nodes,
            "flows": flows,
            "events": 2 * flows,
            "single_stepped_wall_seconds": round(stepped_wall, 6),
            "single_analytic_wall_seconds": round(analytic_wall, 6),
            "shards1_wall_seconds": round(passthrough_wall, 6),
            "shards1_passthrough_ratio": round(
                passthrough_wall / analytic_wall, 3
            ),
            "records_identical": True,
            "sharded": {},
        }
        for shards in shard_counts:
            first = drive_network_sharded(
                nodes, flows, shards, collect_records=True
            )
            if first["records"] != ref_records:
                raise AssertionError(
                    f"sharded run diverged from single-process analytic "
                    f"run at nodes={nodes} flows={flows} shards={shards}"
                )
            wall = first["wall_seconds"]
            for _ in range(rounds - 1):
                wall = min(
                    wall,
                    drive_network_sharded(nodes, flows, shards)[
                        "wall_seconds"
                    ],
                )
            cell["sharded"][str(shards)] = {
                "wall_seconds": round(wall, 6),
                "speedup_vs_single_process": round(stepped_wall / wall, 3),
                "speedup_vs_single_analytic": round(analytic_wall / wall, 3),
                "barrier_rounds": first["rounds"],
                "cross_flows": first["cross_flows"],
                "backend": first["backend"],
            }
        results.append(cell)
    return results


def _aggregate(results) -> dict:
    s4 = [
        r["sharded"]["4"]["speedup_vs_single_process"]
        for r in results
        if "4" in r["sharded"]
    ]
    big_s4 = [
        r["sharded"]["4"]["speedup_vs_single_process"]
        for r in results
        if "4" in r["sharded"] and r["nodes"] >= 100
    ]
    return {
        "best_s4_speedup_vs_single_process": max(s4) if s4 else None,
        "best_s4_speedup_100plus_nodes": max(big_s4) if big_s4 else None,
        "max_shards1_passthrough_ratio": max(
            r["shards1_passthrough_ratio"] for r in results
        ),
    }


def test_sharded_records_bit_identical(benchmark):
    def run_ab():
        results = _measure(_QUICK_CELLS, _QUICK_SHARDS, rounds=1)
        return results, _aggregate(results)

    results, aggregate = benchmark.pedantic(run_ab, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = results
    benchmark.extra_info.update(aggregate)
    # The invariant, not the speedup, is what CI gates on: small quick
    # cells are dominated by process-spawn overhead.
    assert all(r["records_identical"] for r in results)
    assert all(
        s["cross_flows"] == 0
        for r in results
        for s in r["sharded"].values()
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    cells = _QUICK_CELLS if quick else _CELLS
    shard_counts = _QUICK_SHARDS if quick else _SHARDS
    rounds = 1 if quick else _ROUNDS
    results = _measure(cells, shard_counts, rounds=rounds)
    aggregate = _aggregate(results)
    payload = {
        "bench": "sharded cluster simulation vs single-process (wall clock "
        f"per sweep cell, best of {rounds} round(s))",
        "baseline": "single-process fig_scale.drive_network (stepped mode; "
        "the path BENCH_network.json pins); exactness reference is the "
        "single-process analytic run",
        "workload": "fig_scale.make_plan: worker-group transfers with a "
        "per-group collector hotspot (group_size=8), partition aligned "
        "on group boundaries (strict, zero cross-shard flows)",
        "invariant": "merged sharded records bit-identical to the "
        "single-process analytic run at every shard count",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "cells": results,
        **aggregate,
    }
    out = _HERE.parent / "BENCH_shard.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {out}")
    if not quick and (
        (payload["best_s4_speedup_100plus_nodes"] or 0.0)
        < _TARGET_S4_SPEEDUP
    ):
        print("WARNING: S=4 speedup target not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

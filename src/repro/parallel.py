"""Process-pool experiment harness: fan independent simulations across cores.

Every reproduction figure and benchmark runs a grid of *fully
independent* simulations — (benchmark x bandwidth x rate) sweep cells,
trial repetitions, workflow sizes.  Each cell builds its own
:class:`~repro.sim.kernel.Environment`, so nothing is shared and the
grid parallelizes embarrassingly.  :class:`ParallelRunner` fans such a
grid out over a :class:`concurrent.futures.ProcessPoolExecutor` while
keeping the results **bit-identical to serial execution**:

- results are merged back in task order, never completion order;
- randomness is keyed to the task, not the worker: derive each task's
  seed with :func:`derive_seed` from the experiment's base seed and the
  task's identity, so the same task gets the same seed no matter which
  process runs it (or whether a pool is used at all);
- ``jobs=1`` (the default) runs everything in-process with no executor,
  and pool-infrastructure failures (a sandbox that forbids ``fork``, a
  worker killed by the OOM killer) degrade gracefully to the same
  in-process path.

Task functions must be module-level (picklable) and their task payloads
plain picklable data.  Exceptions raised *by the task itself* propagate
to the caller in both modes; only executor-infrastructure errors trigger
the serial fallback.

Example
-------
>>> from repro.parallel import ParallelRunner, derive_seed
>>> runner = ParallelRunner(jobs=4)
>>> tasks = [("genome", bw, derive_seed(13, "genome", bw)) for bw in (25, 50)]
>>> # results = runner.map(run_cell, tasks)   # same order as ``tasks``
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

__all__ = [
    "ParallelRunner",
    "derive_seed",
    "resolve_jobs",
    "add_jobs_argument",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def derive_seed(base_seed: int, *key: Any) -> int:
    """A deterministic 63-bit seed for the task identified by ``key``.

    Stable across processes and Python invocations (``PYTHONHASHSEED``
    has no effect: the digest is over the ``repr`` of primitives, not
    ``hash()``).  Use primitive key parts (str/int/float/tuples thereof)
    whose ``repr`` is stable.
    """
    material = repr((int(base_seed), key)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _jobs_type(text: str) -> int:
    import argparse

    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid jobs count {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = all cores), got {value}"
        )
    return value


def add_jobs_argument(parser) -> None:
    """Attach the standard ``--jobs N`` option to an argparse parser."""
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=1,
        metavar="N",
        help="run independent simulations on N worker processes "
        "(0 = all cores; default 1 = in-process serial)",
    )


class ParallelRunner:
    """Run independent tasks across a process pool, results in task order.

    Parameters
    ----------
    jobs:
        Worker-process count.  ``1`` (default) executes in-process with
        no pool; ``0`` or ``None`` uses every core.
    fallback_serial:
        When true (default), failures of the pool *infrastructure* —
        not of the tasks — rerun the batch in-process instead of
        raising, so ``--jobs`` can never make an experiment less
        reliable than serial mode.
    """

    def __init__(self, jobs: Optional[int] = 1, fallback_serial: bool = True):
        self.jobs = resolve_jobs(jobs)
        self.fallback_serial = fallback_serial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelRunner(jobs={self.jobs})"

    def map(
        self, fn: Callable[[_T], _R], tasks: Iterable[_T]
    ) -> list[_R]:
        """Apply ``fn`` to every task; the result list matches task order.

        Serial and parallel modes produce identical results for
        deterministic ``fn`` because nothing about the execution
        schedule leaks into the output: no shared state, no
        completion-order merging, no worker-identity-dependent seeding.
        """
        task_list = list(tasks)
        workers = min(self.jobs, len(task_list))
        if workers <= 1:
            return [fn(task) for task in task_list]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, task_list))
        except (BrokenProcessPool, OSError, ImportError, PermissionError):
            # Pool infrastructure failed (fork unavailable, worker
            # killed, fd exhaustion...) — not a task error.
            if not self.fallback_serial:
                raise
            return [fn(task) for task in task_list]

    def starmap(
        self, fn: Callable[..., _R], tasks: Iterable[Sequence[Any]]
    ) -> list[_R]:
        """Like :meth:`map`, unpacking each task as positional args."""
        return self.map(_Star(fn), tasks)


class _Star:
    """Picklable argument-unpacking wrapper for :meth:`ParallelRunner.starmap`."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, task: Sequence[Any]) -> Any:
        return self.fn(*task)

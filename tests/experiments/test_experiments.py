"""Integration tests: every experiment runs and shows the paper's shape.

These use reduced invocation counts, so they verify *directional*
claims (who wins, roughly by how much), not the calibrated magnitudes
recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig04_master_overhead,
    fig05_data_movement,
    fig11_sched_overhead,
    fig12_bandwidth_sweep,
    fig13_tail_latency,
    fig14_colocation,
    fig15_grouping,
    fig16_scheduler_scalability,
    sec57_component_overhead,
    tab04_transfer_latency,
)

MB = 1024.0 * 1024.0


class TestFig04:
    def test_scientific_overhead_exceeds_real_world(self):
        result = fig04_master_overhead.run(invocations=8)
        categories = result.data["overhead_by_category"]
        scientific = sum(categories["scientific"]) / len(categories["scientific"])
        real_world = sum(categories["real-world"]) / len(categories["real-world"])
        assert scientific > 2 * real_world

    def test_rows_cover_all_benchmarks(self):
        result = fig04_master_overhead.run(
            invocations=3, benchmarks=["cycles", "word-count"]
        )
        assert len(result.rows) == 2


class TestFig05:
    def test_faas_amplifies_every_benchmark(self):
        result = fig05_data_movement.run()
        for row in result.rows:
            mono, faas = row[1], row[2]
            assert faas > 1.5 * mono

    def test_cycles_and_vid_match_paper_anchors(self):
        result = fig05_data_movement.run(
            benchmarks=["cycles", "video-ffmpeg"]
        )
        by_name = {row[0]: row for row in result.rows}
        assert by_name["Cyc"][1] == pytest.approx(23.95, rel=0.1)
        assert by_name["Vid"][1] == pytest.approx(4.23, rel=0.05)
        assert by_name["Vid"][2] == pytest.approx(96.82, rel=0.1)


class TestFig11:
    def test_worker_sp_wins_everywhere(self):
        result = fig11_sched_overhead.run(invocations=8)
        for row in result.rows:
            master_ms, worker_ms = row[1], row[2]
            assert worker_ms < master_ms

    def test_average_reduction_in_paper_ballpark(self):
        result = fig11_sched_overhead.run(invocations=8)
        reductions = result.data["reductions"]
        mean = sum(reductions) / len(reductions)
        assert 55 <= mean <= 95  # paper: 74.6%


class TestTab04:
    def test_faastore_cuts_heavy_benchmarks(self):
        result = tab04_transfer_latency.run(
            invocations=2,
            benchmarks=["cycles", "word-count", "soykb"],
        )
        by_name = {row[0]: row for row in result.rows}
        # Cyc and WC localize nearly everything.
        assert by_name["Cyc"][2] < 0.1 * by_name["Cyc"][1]
        assert by_name["WC"][2] < 0.1 * by_name["WC"][1]
        # Soy has no reclaimable memory: FaaStore cannot help it.
        assert by_name["Soy"][4] == "0%"


class TestFig12:
    def test_hyperflow_is_bandwidth_sensitive(self):
        result = fig12_bandwidth_sweep.run(
            invocations=6,
            benchmarks=("genome",),
            bandwidths=(25 * MB, 100 * MB),
            rates=(4.0,),
        )
        series = result.data["series"]
        hyper_low = series[("genome", 25.0, 4.0, "hyper")]
        hyper_high = series[("genome", 100.0, 4.0, "hyper")]
        assert hyper_low > 2 * hyper_high

    def test_faasflow_flattens_the_curve(self):
        result = fig12_bandwidth_sweep.run(
            invocations=6,
            benchmarks=("genome",),
            bandwidths=(25 * MB, 100 * MB),
            rates=(4.0,),
        )
        series = result.data["series"]
        hyper_ratio = (
            series[("genome", 25.0, 4.0, "hyper")]
            / series[("genome", 100.0, 4.0, "hyper")]
        )
        faas_ratio = (
            series[("genome", 25.0, 4.0, "faasflow")]
            / series[("genome", 100.0, 4.0, "faasflow")]
        )
        assert faas_ratio < hyper_ratio

    def test_bandwidth_multiplication(self):
        """FaaSFlow at 50 MB/s matches HyperFlow at 100 MB/s for Vid
        (the paper's 1.5-4x bandwidth-multiplication claim)."""
        result = fig12_bandwidth_sweep.run(
            invocations=6,
            benchmarks=("video-ffmpeg",),
            bandwidths=(50 * MB, 100 * MB),
            rates=(4.0,),
        )
        series = result.data["series"]
        assert (
            series[("video-ffmpeg", 50.0, 4.0, "faasflow")]
            <= series[("video-ffmpeg", 100.0, 4.0, "hyper")] * 1.25
        )


class TestFig13:
    def test_cycles_times_out_under_hyperflow_only(self):
        result = fig13_tail_latency.run(
            invocations=12, benchmarks=["cycles"]
        )
        row = result.rows[0]
        hyper_p99, hyper_timeouts = row[1], row[2]
        faas_p99, faas_timeouts = row[3], row[4]
        assert hyper_timeouts > 0
        assert hyper_p99 == pytest.approx(60.0)
        assert faas_timeouts == 0
        assert faas_p99 < 30.0

    def test_light_benchmark_improves_modestly(self):
        result = fig13_tail_latency.run(
            invocations=12, benchmarks=["file-processing"]
        )
        row = result.rows[0]
        assert row[3] <= row[1]  # FaaSFlow p99 <= HyperFlow p99


class TestFig14:
    def test_faasflow_mitigates_colocation(self):
        result = fig14_colocation.run(invocations=4)
        degradation = {}
        for row in result.rows:
            system, benchmark = row[0], row[1]
            value = float(row[4].rstrip("%"))
            degradation.setdefault(system, {})[benchmark] = value
        hyper = degradation["HyperFlow-serverless"]
        faas = degradation["FaaSFlow-FaaStore"]
        wins = sum(1 for b in hyper if faas[b] < hyper[b])
        assert wins >= 6  # FaaSFlow degrades less for almost every benchmark
        assert sum(faas.values()) < 0.4 * sum(hyper.values())


class TestFig15:
    def test_scientific_spreads_real_world_concentrates(self):
        result = fig15_grouping.run()
        by_abbrev = {row[0]: row for row in result.rows}
        for abbrev in ("Cyc", "Epi", "Gen", "Soy"):
            assert by_abbrev[abbrev][4] >= 5  # spread wide (paper: all 7)
        for abbrev in ("Vid", "IR", "FP", "WC"):
            assert by_abbrev[abbrev][4] <= 2  # concentrated


class TestFig16:
    def test_superlinear_growth(self):
        result = fig16_scheduler_scalability.run(
            sizes=(10, 50, 100), repeats=2
        )
        times = result.data["times"]
        assert times[100] > 4 * times[10]

    def test_memory_grows_modestly(self):
        result = fig16_scheduler_scalability.run(sizes=(10, 100), repeats=1)
        memories = [row[2] for row in result.rows]
        assert memories[-1] < 100  # MB: far below any worrying level


class TestSec57:
    def test_per_worker_usage_stays_flat(self):
        result = sec57_component_overhead.run(
            worker_counts=(1, 10, 25), invocations=4
        )
        cpus = [row[1] for row in result.rows]
        assert max(cpus) < 0.5  # engines are cheap
        events = [row[3] for row in result.rows]
        workers = [row[0] for row in result.rows]
        per_worker = [e / w for e, w in zip(events, workers)]
        # Linear scaling: per-worker event counts identical.
        assert max(per_worker) == pytest.approx(min(per_worker), rel=0.01)


class TestCLI:
    def test_cli_runs_quick_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig05", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "Cyc" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["nope"])


class TestSec6:
    def test_memory_upgrade_beats_network_upgrade(self):
        from repro.experiments import sec6_memory_vs_network

        result = sec6_memory_vs_network.run(invocations=10)
        results = result.data["results"]
        baseline = results["baseline (32GB, 50MB/s)"]
        network = results["network upgrade (32GB, 100MB/s)"]
        memory = results["memory upgrade (64GB, 50MB/s)"]
        assert network["p99"] < baseline["p99"]
        assert memory["p99"] < network["p99"]
        # The win comes from locality, not raw speed.
        assert memory["local"] > 0.3
        assert baseline["local"] < 0.05


class TestScaleServe:
    def test_sustained_serving_rollups_and_lifecycle(self):
        from repro.experiments import ext_scale_serve

        result = ext_scale_serve.run(
            invocations=1_200, tenants=4, workers=4, rate_per_minute=2_400.0
        )
        data = result.data
        assert data["total_served"] == 1_200
        assert data["total_ok"] == 1_200
        # Per-tenant rollup rows: one per tenant, all served, all ok.
        assert len(result.rows) == 4
        assert all(row[2] == 300 for row in result.rows)
        # The lifecycle claim: peak live state is set by concurrency,
        # far below the number served; telemetry is O(label sets).
        assert 0 < data["peak_in_flight"] < 100
        assert 0 < data["peak_live_invocations"] <= data["peak_in_flight"]
        assert data["telemetry_instruments"] < 1_000

    def test_batched_mode_serves_identically_sized_run(self):
        from repro.experiments import ext_scale_serve

        result = ext_scale_serve.run(
            invocations=600,
            tenants=2,
            workers=4,
            rate_per_minute=2_400.0,
            batch_control=True,
        )
        assert result.data["total_ok"] == result.data["total_served"] == 600
        assert result.data["batch_control"] is True

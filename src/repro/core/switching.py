"""Runtime switch-branch selection.

The DAG parser lowers a switch step like a parallel step (the paper's
§4.1.1: containers are maintained for every branch), but at *runtime*
only one arm's functions should actually execute.  With
``EngineConfig.evaluate_switches`` enabled, both engines consult this
module before running a function: non-selected arms are completed
without execution (zero work, no data ops), so fan-in predecessor
counting stays intact.

Selection is a deterministic hash of ``(workflow, invocation, switch)``
— every distributed worker engine computes the same choice with no
coordination message.  Tests and applications can pin a specific arm by
setting ``force_case`` in the switch-start node's metadata.
"""

from __future__ import annotations

import hashlib

from ..dag import WorkflowDAG

__all__ = ["selected_case", "is_skipped"]


def selected_case(
    workflow: str,
    invocation_id: int,
    switch: str,
    case_count: int,
    force_case=None,
) -> int:
    """Which arm of ``switch`` this invocation takes (0-based)."""
    if case_count < 1:
        raise ValueError("case_count must be >= 1")
    if force_case is not None:
        if not 0 <= int(force_case) < case_count:
            raise ValueError(
                f"force_case {force_case} outside [0, {case_count})"
            )
        return int(force_case)
    digest = hashlib.sha256(
        f"{workflow}/{invocation_id}/{switch}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") % case_count


def is_skipped(dag: WorkflowDAG, function: str, invocation_id: int) -> bool:
    """Is ``function`` on a non-selected switch arm for this invocation?"""
    node = dag.node(function)
    switch = node.metadata.get("switch")
    if switch is None:
        return False
    start = dag.node(f"{switch}.start")
    chosen = selected_case(
        dag.name,
        invocation_id,
        switch,
        case_count=int(start.metadata.get("case_count", 1)),
        force_case=start.metadata.get("force_case"),
    )
    return int(node.metadata["switch_case"]) != chosen

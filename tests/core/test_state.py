"""Unit tests for the Workflow/State/FunctionInfo structures."""

import pytest

from repro.core.state import (
    FunctionInfo,
    FunctionState,
    InvocationState,
    Placement,
    PlacementError,
    WorkflowStructure,
    new_invocation_id,
)
from repro.dag import DAGError

from .conftest import all_on, fanout_dag, linear_dag, round_robin


class TestInvocationID:
    def test_ids_are_unique_and_increasing(self):
        a, b, c = new_invocation_id(), new_invocation_id(), new_invocation_id()
        assert a < b < c


class TestPlacement:
    def test_node_of(self):
        dag = linear_dag()
        placement = all_on(dag, "worker-0")
        assert placement.node_of("f0") == "worker-0"

    def test_missing_function_raises(self):
        dag = linear_dag()
        placement = all_on(dag, "worker-0")
        with pytest.raises(PlacementError):
            placement.node_of("ghost")

    def test_functions_on(self):
        dag = linear_dag(n=4)
        placement = round_robin(dag, ["w0", "w1"])
        assert placement.functions_on("w0") == ["f0", "f2"]
        assert placement.functions_on("w1") == ["f1", "f3"]

    def test_colocated(self):
        dag = linear_dag(n=3)
        placement = round_robin(dag, ["w0", "w1"])
        assert placement.colocated("f0", "f2")
        assert not placement.colocated("f0", "f1")

    def test_validate_against_incomplete(self):
        dag = linear_dag(n=3)
        placement = Placement(workflow=dag.name, assignment={"f0": "w0"})
        with pytest.raises(PlacementError):
            placement.validate_against(dag)

    def test_with_version(self):
        dag = linear_dag()
        placement = all_on(dag, "w0")
        v2 = placement.with_version(2)
        assert v2.version == 2
        assert v2.assignment == placement.assignment

    def test_workers_sorted_unique(self):
        dag = linear_dag(n=4)
        placement = round_robin(dag, ["w1", "w0"])
        assert placement.workers() == ["w0", "w1"]


class TestFunctionState:
    def test_ready_requires_all_predecessors(self):
        state = FunctionState()
        assert state.ready(0)
        assert not state.ready(2)
        state.mark_predecessor_done()
        state.mark_predecessor_done()
        assert state.ready(2)

    def test_triggered_blocks_ready(self):
        state = FunctionState()
        state.triggered = True
        assert not state.ready(0)


class TestInvocationState:
    def test_state_of_creates_lazily(self):
        inv = InvocationState(1)
        state = inv.state_of("f")
        assert state is inv.state_of("f")

    def test_all_executed(self):
        inv = InvocationState(1)
        inv.state_of("a").executed = True
        assert not inv.all_executed(["a", "b"])
        inv.state_of("b").executed = True
        assert inv.all_executed(["a", "b"])


class TestFunctionInfo:
    def test_from_dag(self):
        dag = fanout_dag(branches=2)
        placement = all_on(dag, "w0")
        info = FunctionInfo.from_dag(dag, placement, "head")
        assert info.predecessors_count == 0
        assert set(info.successors) == {"b0", "b1"}
        assert info.successor_locations == {"b0": "w0", "b1": "w0"}
        assert not info.is_virtual

    def test_sink_info(self):
        dag = fanout_dag(branches=2)
        info = FunctionInfo.from_dag(dag, all_on(dag, "w0"), "tail")
        assert info.predecessors_count == 2
        assert info.successors == []


class TestWorkflowStructure:
    def test_owns_only_local_functions(self):
        dag = linear_dag(n=3)
        placement = round_robin(dag, ["w0", "w1"])
        structure = WorkflowStructure(dag, placement, ["f0", "f2"])
        assert structure.owns("f0")
        assert not structure.owns("f1")
        with pytest.raises(DAGError):
            structure.info("f1")

    def test_unknown_local_function_rejected(self):
        dag = linear_dag()
        with pytest.raises(DAGError):
            WorkflowStructure(dag, all_on(dag, "w0"), ["nope"])

    def test_invocation_lifecycle(self):
        dag = linear_dag()
        structure = WorkflowStructure(dag, all_on(dag, "w0"), ["f0"])
        inv = structure.invocation(42)
        assert structure.live_invocations == 1
        inv.state_of("f0").executed = True
        structure.release_invocation(42)
        assert structure.live_invocations == 0
        # After release, the state is fresh.
        assert not structure.invocation(42).state_of("f0").executed

    def test_incomplete_placement_rejected(self):
        dag = linear_dag(n=3)
        bad = Placement(workflow=dag.name, assignment={"f0": "w0"})
        with pytest.raises(PlacementError):
            WorkflowStructure(dag, bad, ["f0"])

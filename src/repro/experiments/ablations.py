"""Ablation study: what each FaaSFlow mechanism contributes.

Four controlled comparisons over the benchmarks where each mechanism is
load-bearing (also exercised as benches in
``benchmarks/test_bench_ablation.py``):

1. partition strategy — Algorithm 1 vs hash vs one-function-per-node;
2. FaaStore on/off at the same grouped placement;
3. the reclamation safety margin mu;
4. the remote store's request concurrency.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..core import (
    EngineConfig,
    FaaSFlowSystem,
    GraphScheduler,
    HyperFlowServerlessSystem,
    Placement,
    ReclamationConfig,
    RemoteStorePolicy,
    hash_partition,
)
from ..dag import estimate_edge_weights
from ..sim import Cluster, ClusterConfig, ContainerSpec, Environment, MB
from ..workloads import build
from .common import ExperimentResult, ParallelRunner, make_cluster

__all__ = ["run"]


def _grouped_system(cluster, reclamation=None, policy=None):
    system = FaaSFlowSystem(cluster, EngineConfig(ship_data=True))
    if policy is not None:
        system.policy = policy(cluster, system.metrics)
        system.runtime.policy = system.policy
    scheduler = GraphScheduler(cluster, reclamation=reclamation)
    return system, scheduler


def _deploy_grouped(system, scheduler, dag):
    estimate_edge_weights(dag, bandwidth=system.cluster.config.storage_bandwidth)
    placement, quotas, _ = scheduler.schedule(dag, force_grouping=True)
    system.deploy(dag, placement, quotas=quotas)


def _mean_latency(records):
    warm = records[1:] or records
    return sum(r.latency for r in warm) / len(warm)


def _partition_cell(strategy: str, invocations: int) -> list:
    cluster = make_cluster()
    system, scheduler = _grouped_system(cluster)
    dag = build("epigenomics")
    if strategy.startswith("greedy"):
        _deploy_grouped(system, scheduler, dag)
    elif strategy == "hash":
        placement = hash_partition(dag, cluster.worker_names())
        _, quotas, _ = scheduler.schedule(dag)
        system.deploy(dag, placement, quotas=quotas)
    else:
        workers = cluster.worker_names()
        assignment = {
            name: workers[i % len(workers)]
            for i, name in enumerate(dag.node_names)
        }
        system.deploy(
            dag, Placement(workflow=dag.name, assignment=assignment)
        )
    latency = _mean_latency(run_closed_loop(system, dag.name, invocations))
    local = 100 * system.metrics.local_fraction(dag.name)
    return ["partition strategy", strategy, round(latency, 3), f"{local:.0f}%"]


def _faastore_cell(label: str, invocations: int) -> list:
    policy = None if label == "FaaStore on" else RemoteStorePolicy
    cluster = make_cluster()
    system, scheduler = _grouped_system(cluster, policy=policy)
    dag = build("cycles")
    _deploy_grouped(system, scheduler, dag)
    latency = _mean_latency(run_closed_loop(system, dag.name, invocations))
    local = 100 * system.metrics.local_fraction(dag.name)
    return [
        "FaaStore (fixed partition)", label, round(latency, 3), f"{local:.0f}%"
    ]


def _mu_cell(mu_mb: int, invocations: int) -> list:
    cluster = make_cluster()
    reclamation = ReclamationConfig(
        container_memory=cluster.config.container.memory_limit,
        mu=mu_mb * MB,
    )
    system, scheduler = _grouped_system(cluster, reclamation=reclamation)
    dag = build("epigenomics")
    _deploy_grouped(system, scheduler, dag)
    latency = _mean_latency(run_closed_loop(system, dag.name, invocations))
    local = 100 * system.metrics.local_fraction(dag.name)
    return [
        "reclamation margin", f"mu={mu_mb}MB", round(latency, 3), f"{local:.0f}%"
    ]


def _db_cell(concurrency: int, invocations: int) -> list:
    cluster = Cluster(
        Environment(),
        ClusterConfig(
            workers=7,
            storage_bandwidth=50 * MB,
            container=ContainerSpec(cold_start_time=0.5),
            db_concurrency=concurrency,
        ),
    )
    system = HyperFlowServerlessSystem(cluster, EngineConfig(ship_data=True))
    dag = build("genome")
    system.register(dag, hash_partition(dag, cluster.worker_names()))
    latency = _mean_latency(run_closed_loop(system, dag.name, invocations))
    return [
        "remote-store concurrency", f"K={concurrency}", round(latency, 3), "-"
    ]


_AXES = {
    "partition": _partition_cell,
    "faastore": _faastore_cell,
    "mu": _mu_cell,
    "db": _db_cell,
}


def _ablation_cell(task: tuple) -> list:
    """Dispatch one (axis, variant) ablation — each cell is a fresh,
    independent simulation, so the grid parallelizes across a pool."""
    axis, variant, invocations = task
    return _AXES[axis](variant, invocations)


def run(invocations: int = 4, jobs: int = 1) -> ExperimentResult:
    tasks = [
        ("partition", strategy, invocations)
        for strategy in ("greedy (Alg. 1)", "hash", "singleton")
    ]
    tasks += [
        ("faastore", label, invocations)
        for label in ("FaaStore on", "FaaStore off")
    ]
    tasks += [("mu", mu_mb, invocations) for mu_mb in (0, 32, 96, 144)]
    tasks += [("db", concurrency, invocations) for concurrency in (1, 4, 16)]
    rows = ParallelRunner(jobs).map(_ablation_cell, tasks)
    notes = [
        "greedy grouping beats hash/singleton on the chain-heavy benchmark; "
        "FaaStore provides the data-plane win at a fixed partition; "
        "an oversized mu starves the quota; the baseline's latency is "
        "sensitive to store-side parallelism",
    ]
    return ExperimentResult(
        experiment="ablations",
        title="Mechanism ablations (mean warm e2e latency)",
        headers=["axis", "variant", "mean e2e (s)", "local bytes"],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

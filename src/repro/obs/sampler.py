"""Time-series resource telemetry on a simulated-time cadence.

A :class:`ResourceSampler` runs as a simulation process and, every
``interval`` simulated seconds, snapshots each node of the cluster:
CPU-core occupancy, memory (container-provisioned vs. reclaimed
FaaStore pool, Eq. 1-2), FaaStore bytes resident, and per-link
(egress/ingress) utilization of the node's NIC — the instantaneous sum
of allocated flow rates over the link bandwidth.

One :class:`Sample` row per node per tick; the initial snapshot is
taken at :meth:`ResourceSampler.start` time, so a sampling interval
longer than the whole run still yields one sample per node.

Storage is a bounded drop-oldest ring (``max_samples``, matching the
SpanTracer ring discipline): once full, the oldest tick's rows fall off
and ``dropped`` counts what was lost.
"""

from __future__ import annotations

import csv
from collections import deque
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Union

__all__ = ["Sample", "ResourceSampler", "write_samples_csv", "read_samples_csv"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class Sample:
    """One node's resource snapshot at one simulated instant."""

    time: float
    node: str
    cpu_busy: int
    cpu_cores: int
    mem_reserved: float
    mem_capacity: float
    container_mem: float  # provisioned to containers (Eq. 1 numerator)
    faastore_pool: float  # reclaimed into the FaaStore pool (Eq. 2)
    faastore_used: float  # bytes of workflow data resident in the pool
    containers: int
    egress_util: float  # fraction of NIC egress bandwidth in use
    ingress_util: float
    egress_bytes: float  # cumulative bytes carried so far
    ingress_bytes: float

    @property
    def cpu_util(self) -> float:
        return self.cpu_busy / self.cpu_cores if self.cpu_cores else 0.0

    @property
    def mem_util(self) -> float:
        return self.mem_reserved / self.mem_capacity if self.mem_capacity else 0.0


def _link_util(link) -> float:
    if link.bandwidth <= 0:
        return 0.0
    return min(1.0, link.allocated_rate / link.bandwidth)


class ResourceSampler:
    """Snapshots a cluster's nodes every ``interval`` simulated seconds."""

    def __init__(
        self, cluster, interval: float = 0.25, max_samples: int = 1_000_000
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if max_samples <= 0:
            raise ValueError("max_samples must be > 0")
        self.cluster = cluster
        self.env = cluster.env
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.samples: deque[Sample] = deque(maxlen=self.max_samples)
        self.dropped = 0
        self._started = False

    def start(self) -> None:
        """Take the initial snapshot and begin the periodic process."""
        if self._started:
            return
        self._started = True
        self.take_sample()
        self.env.process(self._run(), name="obs:resource-sampler")

    def _run(self):
        while True:
            yield self.env.timeout(self.interval)
            self.take_sample()

    def _nodes(self):
        return [*self.cluster.workers, self.cluster.storage_node]

    def take_sample(self) -> None:
        """Append one :class:`Sample` per node at the current time."""
        now = self.env.now
        for node in self._nodes():
            nic = node.nic
            if len(self.samples) == self.max_samples:
                self.dropped += 1
            self.samples.append(
                Sample(
                    time=now,
                    node=node.name,
                    cpu_busy=node.cpu.busy,
                    cpu_cores=node.cpu.cores,
                    mem_reserved=node.memory.reserved,
                    mem_capacity=node.memory.capacity,
                    container_mem=node.memory.reserved_by_tag("container"),
                    faastore_pool=node.memory.reserved_by_tag("faastore-pool"),
                    faastore_used=node.memstore.used,
                    containers=node.containers.total_containers,
                    egress_util=_link_util(nic.egress),
                    ingress_util=_link_util(nic.ingress),
                    egress_bytes=nic.bytes_sent,
                    ingress_bytes=nic.bytes_received,
                )
            )

    # -- aggregation -----------------------------------------------------
    def of_node(self, node: str) -> list[Sample]:
        return [s for s in self.samples if s.node == node]

    def node_table(self) -> list[list]:
        """Per-node utilization summary rows (mean/peak over samples)."""
        rows = []
        by_node: dict[str, list[Sample]] = {}
        for sample in self.samples:
            by_node.setdefault(sample.node, []).append(sample)
        for node, samples in by_node.items():
            n = len(samples)
            rows.append(
                [
                    node,
                    n,
                    sum(s.cpu_util for s in samples) / n,
                    max(s.cpu_util for s in samples),
                    sum(s.mem_util for s in samples) / n,
                    max(s.faastore_used for s in samples),
                    sum(s.egress_util for s in samples) / n,
                    sum(s.ingress_util for s in samples) / n,
                ]
            )
        return rows

    NODE_TABLE_HEADERS = [
        "node",
        "samples",
        "cpu avg",
        "cpu peak",
        "mem avg",
        "faastore peak (B)",
        "egress avg",
        "ingress avg",
    ]


_SAMPLE_FIELDS = [f.name for f in fields(Sample)]


def write_samples_csv(samples: list[Sample], path: PathLike) -> int:
    """One row per (tick, node); returns the row count."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_SAMPLE_FIELDS)
        for sample in samples:
            writer.writerow(
                [getattr(sample, name) for name in _SAMPLE_FIELDS]
            )
    return len(samples)


def read_samples_csv(path: PathLike) -> list[Sample]:
    """Load samples written by :func:`write_samples_csv`."""
    samples = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            samples.append(
                Sample(
                    time=float(row["time"]),
                    node=row["node"],
                    cpu_busy=int(row["cpu_busy"]),
                    cpu_cores=int(row["cpu_cores"]),
                    mem_reserved=float(row["mem_reserved"]),
                    mem_capacity=float(row["mem_capacity"]),
                    container_mem=float(row["container_mem"]),
                    faastore_pool=float(row["faastore_pool"]),
                    faastore_used=float(row["faastore_used"]),
                    containers=int(row["containers"]),
                    egress_util=float(row["egress_util"]),
                    ingress_util=float(row["ingress_util"]),
                    egress_bytes=float(row["egress_bytes"]),
                    ingress_bytes=float(row["ingress_bytes"]),
                )
            )
    return samples

"""Scientific workflow benchmarks generated in the Pegasus style.

The paper evaluates four scientific workflows — Cycles, Epigenomics,
Genome (1000-genome), and SoyKB — as 50-node execution instances taken
from the Pegasus trace collection.  The traces themselves are not
redistributable here, so these generators reproduce the *shapes* the
Pegasus papers document (stage structure, fan-in/fan-out) with data
sizes calibrated against the paper's aggregate numbers (Fig. 5 reports
Cycles moving ≈ 23.95 MB monolithically and ≈ 1182 MB as a serverless
workflow).

Each generator takes ``nodes`` (default 50, like the paper) and
distributes it across the workflow's characteristic stages.  Memory
declarations differ deliberately: Cycles' functions are lean (large
reclaimable surplus -> FaaStore localizes almost everything, the 95 %
row of Table 4), while SoyKB's are memory-hungry (almost no surplus ->
only 5 % reduction).
"""

from __future__ import annotations

from ..dag import WorkflowDAG

__all__ = ["cycles", "epigenomics", "genome", "soykb"]

MB = 1024.0 * 1024.0


def _stage_sizes(total: int, weights: list[float]) -> list[int]:
    """Split ``total`` nodes across stages proportionally to ``weights``,
    guaranteeing at least one node per stage."""
    if total < len(weights):
        raise ValueError(
            f"need at least {len(weights)} nodes, got {total}"
        )
    weight_sum = sum(weights)
    sizes = [max(1, int(total * w / weight_sum)) for w in weights]
    # Adjust the largest stage to hit the total exactly.
    while sum(sizes) != total:
        index = sizes.index(max(sizes))
        sizes[index] += 1 if sum(sizes) < total else -1
    return sizes


def cycles(nodes: int = 50) -> WorkflowDAG:
    """Cycles: agro-ecosystem simulation sweep.

    Shape: a *prepare* hub fans a large parameter sweep of simulation
    tasks, whose outputs flow into a small analysis/summary tail.  The
    hub's output is consumed by every simulation task — the source of
    the paper's extreme FaaS data amplification (every consumer re-reads
    the 12 MB input from the store).
    """
    dag = WorkflowDAG("cycles")
    sim_count, agg_count = _stage_sizes(nodes - 2, [44, 4])
    # The shared soil/weather input every simulation cell reads.
    dag.add_function(
        "fetch-data", service_time=0.25, memory=48 * MB, output_size=22 * MB
    )
    sims = []
    for i in range(sim_count):
        name = f"cycles-sim-{i}"
        dag.add_function(
            name, service_time=0.4, memory=48 * MB, output_size=0.04 * MB
        )
        dag.add_edge("fetch-data", name, data_size=22 * MB)
        sims.append(name)
    aggregators = []
    share = max(1, len(sims) // agg_count)
    for i in range(agg_count):
        name = f"analysis-{i}"
        dag.add_function(
            name, service_time=0.3, memory=64 * MB, output_size=0.1 * MB
        )
        for sim in sims[i * share : (i + 1) * share] or sims[-share:]:
            dag.add_edge(sim, name, data_size=0.04 * MB)
        aggregators.append(name)
    dag.add_function(
        "summary", service_time=0.25, memory=64 * MB, output_size=0.3 * MB
    )
    for aggregator in aggregators:
        dag.add_edge(aggregator, "summary", data_size=0.1 * MB)
    dag.validate()
    return dag


def epigenomics(nodes: int = 50) -> WorkflowDAG:
    """Epigenomics: DNA methylation pipelines.

    Shape: fastqSplit fans read chunks into independent 4-stage chains
    (filterContams -> sol2sanger -> fast2bfq -> map) that merge into
    mapMerge -> maqIndex -> pileup.  Data per chain is modest; the
    sequential tail is light.
    """
    dag = WorkflowDAG("epigenomics")
    chain_stages = 4
    overhead = 4  # split + merge + index + pileup
    lanes = max(1, (nodes - overhead) // chain_stages)
    dag.add_function(
        "fastq-split", service_time=0.3, memory=96 * MB,
        output_size=lanes * 0.5 * MB,
    )
    stage_names = ["filter-contams", "sol2sanger", "fast2bfq", "map"]
    stage_outputs = [0.45 * MB, 0.4 * MB, 0.3 * MB, 0.25 * MB]
    last_of_lane = []
    for lane in range(lanes):
        previous = "fastq-split"
        previous_size = lanes * 0.5 * MB
        for stage, out in zip(stage_names, stage_outputs):
            name = f"{stage}-{lane}"
            dag.add_function(
                name, service_time=0.35, memory=112 * MB, output_size=out
            )
            dag.add_edge(previous, name, data_size=previous_size)
            previous, previous_size = name, out
        last_of_lane.append(previous)
    dag.add_function(
        "map-merge", service_time=0.4, memory=128 * MB,
        output_size=lanes * 0.25 * MB,
    )
    for name in last_of_lane:
        dag.add_edge(name, "map-merge", data_size=0.25 * MB)
    dag.add_function(
        "maq-index", service_time=0.3, memory=128 * MB,
        output_size=lanes * 0.2 * MB,
    )
    dag.add_edge("map-merge", "maq-index", data_size=lanes * 0.25 * MB)
    dag.add_function(
        "pileup", service_time=0.3, memory=96 * MB, output_size=0.5 * MB
    )
    dag.add_edge("maq-index", "pileup", data_size=lanes * 0.2 * MB)
    dag.validate()
    return dag


def genome(nodes: int = 50) -> WorkflowDAG:
    """Genome (1000-genome): population genetics analysis.

    Shape: per-chromosome *individuals* tasks fan out of a sizeable
    input, a *sifting* side channel joins them, then *individuals_merge*
    and per-population *mutation_overlap* / *frequency* analyses.  The
    merge stages move big objects and the functions are memory-hungry,
    so FaaStore can reclaim little — the paper's Table 4 shows only a
    24 % transfer-latency reduction.

    This is the benchmark §5.6 scales from 10 to 200 nodes.  Like the
    real 1000-genome workflow, scaling past one chromosome's worth of
    tasks adds further independent chromosome lanes rather than
    inflating one lane.
    """
    dag = WorkflowDAG("genome")
    lanes = max(1, round(nodes / 50))
    per_lane = nodes // lanes
    for lane in range(lanes):
        lane_nodes = per_lane if lane < lanes - 1 else nodes - per_lane * (lanes - 1)
        _genome_lane(dag, f"c{lane}-" if lanes > 1 else "", lane_nodes)
    dag.validate()
    return dag


def _genome_lane(dag: WorkflowDAG, prefix: str, nodes: int) -> None:
    """One chromosome's analysis lane (the paper-default 50-node shape)."""
    ind_count, pop_count = _stage_sizes(max(nodes - 4, 2), [7, 3])
    fetch = f"{prefix}fetch-chromosome"
    sift = f"{prefix}sifting"
    merge = f"{prefix}individuals-merge"
    report = f"{prefix}report"
    dag.add_function(
        fetch, service_time=0.3, memory=128 * MB, output_size=4 * MB
    )
    dag.add_function(
        sift, service_time=0.4, memory=224 * MB, output_size=1.2 * MB
    )
    dag.add_edge(fetch, sift, data_size=4 * MB)
    individuals = []
    for i in range(ind_count):
        name = f"{prefix}individuals-{i}"
        dag.add_function(
            name, service_time=0.45, memory=224 * MB, output_size=0.8 * MB
        )
        dag.add_edge(fetch, name, data_size=4 * MB)
        individuals.append(name)
    dag.add_function(
        merge, service_time=0.6, memory=232 * MB,
        output_size=ind_count * 0.35 * MB,
    )
    for name in individuals:
        dag.add_edge(name, merge, data_size=0.8 * MB)
    analyses = []
    for i in range(pop_count):
        kind = "mutation-overlap" if i % 2 == 0 else "frequency"
        name = f"{prefix}{kind}-{i}"
        dag.add_function(
            name, service_time=0.5, memory=224 * MB, output_size=0.8 * MB
        )
        dag.add_edge(merge, name, data_size=ind_count * 0.35 * MB)
        dag.add_edge(sift, name, data_size=1.2 * MB)
        analyses.append(name)
    dag.add_function(
        report, service_time=0.3, memory=128 * MB, output_size=0.8 * MB
    )
    for name in analyses:
        dag.add_edge(name, report, data_size=0.8 * MB)


def soykb(nodes: int = 50) -> WorkflowDAG:
    """SoyKB: soybean resequencing (GATK-style).

    Shape: per-sample alignment chains (alignment -> sort -> dedup ->
    realign) followed by joint genotyping stages.  Functions keep large
    reference indexes resident, so nearly no memory is reclaimable and
    the in-memory quota is tiny — matching the paper's 5.2 % reduction.
    """
    dag = WorkflowDAG("soykb")
    chain_stages = 4
    overhead = 3  # prepare + combine + genotype
    samples = max(1, (nodes - overhead) // chain_stages)
    dag.add_function(
        "prepare-refs", service_time=0.3, memory=216 * MB,
        output_size=4 * MB,
    )
    stage_names = ["alignment", "sort-sam", "dedup", "realign"]
    stage_outputs = [0.8 * MB, 0.7 * MB, 0.6 * MB, 0.5 * MB]
    # Every chain stage pins the reference index: essentially no
    # reclaimable surplus anywhere (the paper's 5.2 % row — FaaStore
    # cannot help SoyKB).
    stage_memory = [228 * MB, 228 * MB, 228 * MB, 228 * MB]
    last_of_sample = []
    for sample in range(samples):
        previous = "prepare-refs"
        previous_size = 4 * MB
        for stage, out, mem in zip(stage_names, stage_outputs, stage_memory):
            name = f"{stage}-{sample}"
            dag.add_function(
                name, service_time=0.4, memory=mem, output_size=out
            )
            dag.add_edge(previous, name, data_size=previous_size)
            previous, previous_size = name, out
        last_of_sample.append(previous)
    dag.add_function(
        "combine-gvcfs", service_time=0.5, memory=232 * MB,
        output_size=samples * 0.5 * MB,
    )
    for name in last_of_sample:
        dag.add_edge(name, "combine-gvcfs", data_size=0.5 * MB)
    dag.add_function(
        "genotype", service_time=0.5, memory=224 * MB, output_size=1.0 * MB
    )
    dag.add_edge(
        "combine-gvcfs", "genotype", data_size=samples * 0.5 * MB
    )
    dag.validate()
    return dag

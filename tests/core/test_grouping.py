"""Unit and property tests for Algorithm 1 (function grouping)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import GroupingConfig, GroupingError, group_functions
from repro.dag import WorkflowDAG, estimate_edge_weights

MB = 1024.0 * 1024.0


def make_config(workers=("w0", "w1", "w2"), capacity=100, quota=1024 * MB, **kw):
    return GroupingConfig(
        workers=list(workers),
        node_capacity={w: capacity for w in workers},
        quota=quota,
        **kw,
    )


def weighted_chain(n=4, weight=1.0, data=1 * MB):
    dag = WorkflowDAG("chain")
    for i in range(n):
        dag.add_function(f"f{i}", service_time=0.1, output_size=data)
    for i in range(n - 1):
        dag.add_edge(f"f{i}", f"f{i+1}", data_size=data, weight=weight)
    return dag


class TestBasicGrouping:
    def test_chain_merges_into_one_group(self):
        dag = weighted_chain(4)
        result = group_functions(dag, make_config())
        assert len(result.groups) == 1
        assert result.groups[0] == {"f0", "f1", "f2", "f3"}

    def test_placement_covers_all_functions(self):
        dag = weighted_chain(5)
        result = group_functions(dag, make_config())
        result.placement.validate_against(dag)

    def test_heaviest_edge_merged_first(self):
        dag = WorkflowDAG("w")
        for n in ("a", "b", "c"):
            dag.add_function(n, service_time=0.1, output_size=1 * MB)
        dag.add_edge("a", "b", data_size=1 * MB, weight=0.1)
        dag.add_edge("b", "c", data_size=1 * MB, weight=5.0)
        # Capacity for only one merge (2 functions per node).
        config = make_config(capacity=2)
        result = try_group(dag, config)
        heavy_group = result.groups[result.group_of("b")]
        assert "c" in heavy_group

    def test_storage_type_flips_on_localized_producer(self):
        dag = weighted_chain(2)
        result = group_functions(dag, make_config())
        assert result.storage_type["f0"] == "MEM"
        # The sink f1 produces data nobody consumes in-graph; its edge was
        # never localized.
        assert result.storage_type["f1"] == "DB"
        assert result.localized_functions == ["f0"]

    def test_mem_consume_tracks_localized_bytes(self):
        dag = weighted_chain(3, data=2 * MB)
        result = group_functions(dag, make_config())
        assert result.mem_consume == pytest.approx(4 * MB)

    def test_iterations_bounded(self):
        dag = weighted_chain(6)
        result = group_functions(dag, make_config())
        assert result.iterations <= len(dag.node_names) + 1


class TestCapacityConstraint:
    def test_no_merge_when_group_exceeds_every_node(self):
        dag = weighted_chain(2)
        dag.node("f0").scale = 3
        dag.node("f1").scale = 3
        # Each worker holds at most 4 instances -> 6 never fits.
        config = make_config(capacity=4)
        result = try_group(dag, config)
        assert len(result.groups) == 2

    def test_unplaceable_function_raises(self):
        dag = weighted_chain(1)
        dag.node("f0").scale = 50
        with pytest.raises(GroupingError):
            group_functions(dag, make_config(capacity=10))

    def test_capacity_respected_after_grouping(self):
        dag = weighted_chain(6)
        for node in dag.nodes:
            node.scale = 2
        config = make_config(capacity=5)
        result = try_group(dag, config)
        load = {}
        for group, worker in zip(result.groups, result.group_worker):
            load.setdefault(worker, 0.0)
            load[worker] += sum(
                dag.node(f).effective_instances for f in group
            )
        assert all(v <= 5 for v in load.values())


class TestQuotaConstraint:
    def test_zero_quota_blocks_localization_but_not_merge(self):
        """With no quota, Algorithm 1's line 14 rejects DB->MEM flips;
        merging the edge is skipped entirely."""
        dag = weighted_chain(2)
        result = group_functions(dag, make_config(quota=0))
        assert len(result.groups) == 2
        assert result.storage_type["f0"] == "DB"
        assert result.mem_consume == 0

    def test_quota_limits_number_of_localized_edges(self):
        dag = weighted_chain(4, data=10 * MB)
        # Room for exactly two localized edges.
        result = group_functions(dag, make_config(quota=20 * MB))
        assert result.mem_consume <= 20 * MB
        assert len(result.localized_functions) == 2


class TestContentionConstraint:
    def test_contention_pair_never_co_grouped(self):
        dag = weighted_chain(3)
        config = make_config(
            contention_pairs=frozenset([frozenset(["f0", "f1"])])
        )
        result = try_group(dag, config)
        assert result.group_of("f0") != result.group_of("f1")

    def test_indirect_contention_blocks_merge(self):
        """Merging two groups that would join a conflicting pair fails."""
        dag = weighted_chain(3, weight=1.0)
        dag.edge("f0", "f1").weight = 10.0
        dag.edge("f1", "f2").weight = 5.0
        config = make_config(
            contention_pairs=frozenset([frozenset(["f0", "f2"])])
        )
        result = try_group(dag, config)
        groups = [result.group_of(f) for f in ("f0", "f1", "f2")]
        # f0 and f2 must be apart even though both edges are heavy.
        assert result.group_of("f0") != result.group_of("f2")


class TestValidation:
    def test_empty_workers_rejected(self):
        with pytest.raises(GroupingError):
            GroupingConfig(workers=[], node_capacity={}, quota=0)

    def test_missing_capacity_rejected(self):
        with pytest.raises(GroupingError):
            GroupingConfig(workers=["w0"], node_capacity={}, quota=0)

    def test_negative_quota_rejected(self):
        with pytest.raises(GroupingError):
            GroupingConfig(
                workers=["w0"], node_capacity={"w0": 1}, quota=-1
            )


@st.composite
def grouping_case(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    dag = WorkflowDAG("random")
    for i in range(n):
        dag.add_function(
            f"f{i}",
            service_time=draw(st.floats(min_value=0.01, max_value=1.0)),
            output_size=draw(st.floats(min_value=0, max_value=8 * MB)),
            scale=draw(st.floats(min_value=1, max_value=3)),
        )
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                dag.add_edge(
                    f"f{i}",
                    f"f{j}",
                    data_size=dag.node(f"f{i}").output_size,
                    weight=draw(st.floats(min_value=0, max_value=2.0)),
                )
    workers = [f"w{k}" for k in range(draw(st.integers(2, 4)))]
    capacity = draw(st.integers(min_value=8, max_value=40))
    quota = draw(st.floats(min_value=0, max_value=64 * MB))
    config = GroupingConfig(
        workers=workers,
        node_capacity={w: float(capacity) for w in workers},
        quota=quota,
        seed=draw(st.integers(0, 1000)),
    )
    return dag, config


def try_group(dag, config):
    """Run grouping; skip hypothesis examples that are truly infeasible
    (total instance demand too close to total capacity for any greedy
    packing to place)."""
    try:
        return group_functions(dag, config)
    except GroupingError:
        assume(False)


class TestGroupingProperties:
    @settings(max_examples=60, deadline=None)
    @given(grouping_case())
    def test_partition_is_exact(self, case):
        """Every function in exactly one group."""
        dag, config = case
        result = try_group(dag, config)
        seen = [f for group in result.groups for f in group]
        assert sorted(seen) == sorted(dag.node_names)

    @settings(max_examples=60, deadline=None)
    @given(grouping_case())
    def test_capacity_never_violated(self, case):
        dag, config = case
        result = try_group(dag, config)
        load = {w: 0.0 for w in config.workers}
        for group, worker in zip(result.groups, result.group_worker):
            load[worker] += sum(
                dag.node(f).effective_instances for f in group
            )
        for worker, used in load.items():
            assert used <= config.node_capacity[worker] + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(grouping_case())
    def test_quota_never_exceeded(self, case):
        dag, config = case
        result = try_group(dag, config)
        assert result.mem_consume <= config.quota + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(grouping_case())
    def test_placement_matches_groups(self, case):
        dag, config = case
        result = try_group(dag, config)
        for group, worker in zip(result.groups, result.group_worker):
            for function in group:
                assert result.placement.node_of(function) == worker

    @settings(max_examples=60, deadline=None)
    @given(grouping_case())
    def test_deterministic(self, case):
        dag, config = case
        first = try_group(dag, config)
        second = try_group(dag, config)
        assert first.groups == second.groups
        assert first.group_worker == second.group_worker

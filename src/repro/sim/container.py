"""Container lifecycle: cold starts, warm pools, keep-alive, limits.

Reproduces the paper's container policy (Table 3): each function
container gets 1 core and 256 MB, lives 600 s after its last use, and at
most 10 containers per function may exist on one node.  A per-node
:class:`ContainerPool` hands containers to the workflow engines; reuse of
a warm container is free, a cold start pays ``cold_start_time``, and the
pool enforces the per-function cap by queueing excess requests.

FaaStore's memory reclamation (paper §4.3.2) is modeled through
:meth:`Container.set_memory_limit`, the cgroup-limit update that returns
over-provisioned container memory to the node's FaaStore pool.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..obs.spans import NULL_SPANS, SpanKind
from ..obs.telemetry import NULL_TELEMETRY
from .kernel import Environment, Event, SimulationError, Timeout
from .resources import CPUAllocator, MemoryAccount

__all__ = ["ContainerSpec", "Container", "ContainerPool", "ContainerState"]

_MBYTES = 1024.0 * 1024.0


@dataclass(frozen=True)
class ContainerSpec:
    """Platform-wide container policy (paper Table 3 defaults).

    ``sandbox`` selects the isolation technology (§4.3.2): plain
    containers support cgroup memory-limit updates, so FaaStore can
    reclaim over-provisioned memory per function; MicroVMs do not
    support stable memory hot-unplug, so per-function limit shrinking is
    unavailable and the in-memory storage must be provisioned
    statically.
    """

    memory_limit: float = 256 * _MBYTES
    cores: int = 1
    cold_start_time: float = 0.5
    keepalive: float = 600.0
    max_per_function: int = 10
    sandbox: str = "container"  # "container" | "microvm"

    def __post_init__(self) -> None:
        if self.memory_limit <= 0:
            raise SimulationError("memory_limit must be > 0")
        if self.cores < 1:
            raise SimulationError("cores must be >= 1")
        if self.cold_start_time < 0:
            raise SimulationError("cold_start_time must be >= 0")
        if self.keepalive <= 0:
            raise SimulationError("keepalive must be > 0")
        if self.max_per_function < 1:
            raise SimulationError("max_per_function must be >= 1")
        if self.sandbox not in ("container", "microvm"):
            raise SimulationError(
                f"unknown sandbox kind {self.sandbox!r}"
            )


class ContainerState(Enum):
    COLD_STARTING = "cold-starting"
    IDLE = "idle"
    BUSY = "busy"
    DEAD = "dead"


class Container:
    """One function container on one node."""

    _ids = itertools.count(1)

    def __init__(
        self,
        pool: "ContainerPool",
        function: str,
        version: int,
        memory_handle: int,
        memory_limit: float,
    ):
        self.container_id = next(Container._ids)
        self.pool = pool
        self.function = function
        self.version = version
        self.state = ContainerState.COLD_STARTING
        self.memory_limit = memory_limit
        self.peak_memory_used = 0.0
        self.invocations = 0
        self.last_used = pool.env.now
        self._memory_handle = memory_handle
        # Pending keep-alive timer while idle; cancelled on reuse/destroy.
        self._expiry_timer: Optional[Timeout] = None

    @property
    def node_name(self) -> str:
        return self.pool.node_name

    def note_memory_use(self, used: float) -> None:
        """Record the invocation's working-set size (Eq. 1 history S)."""
        self.peak_memory_used = max(self.peak_memory_used, used)

    def set_memory_limit(self, new_limit: float) -> float:
        """cgroup-style limit update; returns bytes released (+) or taken (-).

        FaaStore calls this to reclaim over-provisioned memory.  The limit
        can never drop below the container's observed peak working set.
        MicroVM sandboxes reject it — memory hot-unplug is not stable
        (paper §4.3.2).
        """
        if self.pool.spec.sandbox == "microvm":
            raise SimulationError(
                "MicroVM sandboxes do not support memory-limit updates"
            )
        if self.state == ContainerState.DEAD:
            raise SimulationError("cannot resize a dead container")
        floor = self.peak_memory_used
        effective = max(new_limit, floor)
        released = self.memory_limit - effective
        self.pool.memory.resize(self._memory_handle, effective)
        self.memory_limit = effective
        return released

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Container #{self.container_id} fn={self.function} "
            f"v{self.version} {self.state.value} on {self.node_name}>"
        )


class _PoolRequest:
    __slots__ = ("event", "function", "version", "seq")
    _seq = itertools.count(1)

    def __init__(self, event: Event, function: str, version: int):
        self.event = event
        self.function = function
        self.version = version
        self.seq = next(_PoolRequest._seq)


class ContainerPool:
    """Per-node container manager with warm reuse and keep-alive expiry."""

    def __init__(
        self,
        env: Environment,
        node_name: str,
        cpu: CPUAllocator,
        memory: MemoryAccount,
        spec: Optional[ContainerSpec] = None,
    ):
        self.env = env
        self.node_name = node_name
        self.cpu = cpu
        self.memory = memory
        self.spec = spec or ContainerSpec()
        self._idle: dict[str, deque[Container]] = {}
        self._all: dict[str, list[Container]] = {}
        self._waiting: dict[str, deque[_PoolRequest]] = {}
        # Per-function reclaimed limits (paper Fig. 10(b)): containers of
        # these functions are created with a shrunk cgroup limit, the
        # difference having been handed to the FaaStore pool.
        self._function_limits: dict[str, float] = {}
        # Acquire events whose waiter was interrupted while a cold start
        # was in flight for them: the container joins the pool unclaimed.
        self._abandoned: set[int] = set()
        self.offline = False
        self.cold_starts = 0
        self.warm_reuses = 0
        self.node_failures = 0
        self.spans = NULL_SPANS
        self.telemetry = NULL_TELEMETRY

    def set_function_limit(self, function: str, limit: float) -> None:
        """Create future containers of ``function`` with ``limit`` bytes.

        MicroVM sandboxes cannot shrink memory (§4.3.2); the call is
        rejected there.  Existing containers are unaffected (they will
        recycle through keep-alive or red-black rollout).
        """
        if self.spec.sandbox == "microvm":
            raise SimulationError(
                "MicroVM sandboxes provision memory statically"
            )
        if limit <= 0 or limit > self.spec.memory_limit:
            raise SimulationError(
                f"function limit {limit} outside (0, {self.spec.memory_limit}]"
            )
        self._function_limits[function] = float(limit)

    def function_limit(self, function: str) -> float:
        return self._function_limits.get(function, self.spec.memory_limit)

    # -- capacity ------------------------------------------------------
    def count(self, function: str) -> int:
        """Live containers (cold-starting, idle, or busy) for ``function``."""
        return len(self._all.get(function, []))

    @property
    def total_containers(self) -> int:
        return sum(len(cs) for cs in self._all.values())

    def capacity_left(self, function: str) -> int:
        """How many more containers of ``function`` this node may create."""
        by_policy = self.spec.max_per_function - self.count(function)
        by_memory = int(self.memory.available // self.spec.memory_limit)
        return max(0, min(by_policy, by_memory))

    # -- acquire / release ----------------------------------------------
    def acquire(self, function: str, version: int = 0) -> Event:
        """Event that fires with a ready :class:`Container`.

        Reuses an idle warm container of the same function and version if
        one exists; otherwise cold-starts a new one, unless the
        per-function cap is hit, in which case the request queues until a
        container frees up.
        """
        event = self.env.event()
        idle = self._idle.get(function)
        while idle:
            container = idle.popleft()
            if container.state != ContainerState.IDLE:
                continue
            if container.version != version:
                # Out-of-date (red-black) container: recycle it.
                self._destroy(container)
                continue
            container.state = ContainerState.BUSY
            self._cancel_expiry(container)
            container.invocations += 1
            self.warm_reuses += 1
            if self.telemetry.enabled:
                self.telemetry.inc(
                    "container.warm_reuses", 1.0,
                    node=self.node_name, function=function,
                )
            if self.spans.enabled:
                self.spans.event(
                    SpanKind.CONTAINER, node=self.node_name,
                    function=function, lifecycle="warm-reuse",
                    container=container.container_id,
                )
            event.succeed(container)
            return event
        if self._can_cold_start(function):
            self._cold_start(function, version, event)
            return event
        # Either the per-function cap or the node's memory is exhausted:
        # queue until a container frees a slot (or its memory).
        self._waiting.setdefault(function, deque()).append(
            _PoolRequest(event, function, version)
        )
        return event

    def _can_cold_start(self, function: str) -> bool:
        return (
            not self.offline
            and self.count(function) < self.spec.max_per_function
            and self.memory.available >= self.function_limit(function)
        )

    def set_offline(self, offline: bool) -> None:
        """Stop (or resume) creating containers on this node.

        While offline every acquire queues; coming back online serves
        the backlog with fresh cold starts.
        """
        self.offline = bool(offline)
        if not self.offline:
            self._serve_waiting()

    def fail_all(self) -> int:
        """Node crash: every container dies at once; returns the count.

        Busy containers' memory frees immediately (the processes holding
        them are interrupted separately and must not release a dead
        container); cold-starting containers die too, their waiters get
        back in line for a fresh start.  Take the pool offline first so
        the freed capacity is not instantly re-consumed.
        """
        destroyed = 0
        for containers in list(self._all.values()):
            for container in list(containers):
                self._destroy(container, serve_waiting=False)
                destroyed += 1
        for idle in self._idle.values():
            idle.clear()
        if destroyed:
            self.node_failures += 1
        return destroyed

    def abandon(self, event: Event) -> None:
        """A waiter gave up on an acquire (it was interrupted).

        Safe at any stage of the request: still queued (withdrawn), cold
        start in flight (the container joins the warm pool when ready),
        or granted-but-undelivered (the container is released).
        """
        if event.triggered:
            container = event.value
            if (
                isinstance(container, Container)
                and container.state == ContainerState.BUSY
            ):
                self.release(container)
            return
        for queue in self._waiting.values():
            for request in queue:
                if request.event is event:
                    queue.remove(request)
                    return
        # Pending but not queued: a cold start is running for it.
        self._abandoned.add(id(event))

    def release(self, container: Container) -> None:
        """Return a container to the warm pool (or hand it to a waiter)."""
        if container.state != ContainerState.BUSY:
            raise SimulationError(f"release of non-busy {container!r}")
        container.last_used = self.env.now
        waiting = self._waiting.get(container.function)
        if waiting:
            request = waiting.popleft()
            if request.version == container.version:
                container.invocations += 1
                self.warm_reuses += 1
                if self.telemetry.enabled:
                    self.telemetry.inc(
                        "container.warm_reuses", 1.0,
                        node=self.node_name, function=container.function,
                    )
                if self.spans.enabled:
                    self.spans.event(
                        SpanKind.CONTAINER, node=self.node_name,
                        function=container.function, lifecycle="warm-reuse",
                        container=container.container_id,
                    )
                request.event.succeed(container)
            else:
                # Waiter wants a newer (red-black) version: recycle this
                # container and use its slot for a fresh cold start.
                self._destroy(container, serve_waiting=False)
                self._cold_start(request.function, request.version, request.event)
            return
        container.state = ContainerState.IDLE
        self._idle.setdefault(container.function, deque()).append(container)
        self._schedule_expiry(container)

    def crash(self, container: Container) -> None:
        """A busy container died (OOM, runtime fault): destroy it.

        Its memory frees immediately and queued requests may cold-start
        into the slot.
        """
        if container.state != ContainerState.BUSY:
            raise SimulationError(f"crash of non-busy {container!r}")
        self._destroy(container)

    def recycle_version(self, function: str, version: int) -> int:
        """Destroy idle containers of ``function`` older than ``version``.

        Red-black deployment support: busy containers finish their current
        invocation and are recycled at release time (version mismatch).
        Returns the number destroyed now.
        """
        idle = self._idle.get(function)
        if not idle:
            return 0
        stale = [c for c in idle if c.version < version]
        for container in stale:
            idle.remove(container)
            self._destroy(container)
        return len(stale)

    def prewarm(self, function: str, count: int = 1, version: int = 0) -> int:
        """Start containers ahead of demand (the §7 prewarm strategies).

        Creates up to ``count`` additional containers for ``function``;
        they pay their cold start now and join the warm pool when ready.
        Returns how many were actually started (capped by the
        per-function limit and node memory).
        """
        if count < 0:
            raise SimulationError(f"negative prewarm count {count}")
        started = 0
        for _ in range(count):
            if not self._can_cold_start(function):
                break
            ready = self.env.event()
            self._cold_start(function, version, ready)

            def _park(event: Event) -> None:
                # The container joins the warm pool (or serves a waiter
                # directly).  Its invocation count stays at 1 so later
                # acquisitions read as warm reuses — the cold start was
                # paid here, ahead of any invocation.
                self.release(event.value)

            ready.callbacks.append(_park)
            started += 1
        return started

    def drain(self) -> int:
        """Destroy every idle container on the node; returns count."""
        destroyed = 0
        for idle in self._idle.values():
            while idle:
                self._destroy(idle.popleft())
                destroyed += 1
        return destroyed

    # -- internals -------------------------------------------------------
    def _cold_start(self, function: str, version: int, event: Event) -> None:
        limit = self.function_limit(function)
        handle = self.memory.reserve(limit, tag="container")
        container = Container(self, function, version, handle, limit)
        self._all.setdefault(function, []).append(container)
        self.cold_starts += 1
        started = self.env.now
        timer = self.env.timeout(self.spec.cold_start_time)

        def _ready(_: Event) -> None:
            if container.state == ContainerState.DEAD:
                # The node died mid cold start.  The waiter (unless it
                # was interrupted too) gets back in line to start fresh
                # once the node is reachable again.
                if not self._take_abandoned(event):
                    self._requeue(function, version, event)
                return
            container.state = ContainerState.BUSY
            container.invocations += 1
            if self.telemetry.enabled:
                self.telemetry.inc(
                    "container.cold_starts", 1.0,
                    node=self.node_name, function=function,
                )
                self.telemetry.observe(
                    "container.cold_start_seconds", self.env.now - started,
                    node=self.node_name, function=function,
                )
            if self.spans.enabled:
                self.spans.record(
                    SpanKind.CONTAINER, started, node=self.node_name,
                    function=function, lifecycle="cold-start",
                    container=container.container_id,
                )
            if self._take_abandoned(event):
                # Nobody is waiting any more: park the container warm.
                self.release(container)
                return
            event.succeed(container)

        timer.callbacks.append(_ready)

    def _take_abandoned(self, event: Event) -> bool:
        key = id(event)
        if key in self._abandoned:
            self._abandoned.remove(key)
            return True
        return False

    def _requeue(self, function: str, version: int, event: Event) -> None:
        if self._can_cold_start(function):
            self._cold_start(function, version, event)
        else:
            self._waiting.setdefault(function, deque()).append(
                _PoolRequest(event, function, version)
            )

    def _destroy(self, container: Container, serve_waiting: bool = True) -> None:
        if container.state == ContainerState.DEAD:
            return
        was_busy = container.state == ContainerState.BUSY
        container.state = ContainerState.DEAD
        self._cancel_expiry(container)
        self.memory.free(container._memory_handle)
        if self.telemetry.enabled:
            self.telemetry.inc(
                "container.crashes" if was_busy else "container.evictions",
                1.0, node=self.node_name, function=container.function,
            )
        if self.spans.enabled:
            self.spans.event(
                SpanKind.CONTAINER, node=self.node_name,
                function=container.function,
                lifecycle="crash" if was_busy else "evict",
                container=container.container_id,
            )
        peers = self._all.get(container.function, [])
        if container in peers:
            peers.remove(container)
        if not serve_waiting:
            return
        # Memory and possibly a per-function slot opened up: serve the
        # oldest queued request that can now cold-start (any function).
        self._serve_waiting()

    def _serve_waiting(self) -> None:
        while True:
            candidates = [
                queue[0]
                for function, queue in self._waiting.items()
                if queue and self._can_cold_start(function)
            ]
            if not candidates:
                return
            request = min(candidates, key=lambda r: r.seq)
            self._waiting[request.function].popleft()
            self._cold_start(request.function, request.version, request.event)

    def _cancel_expiry(self, container: Container) -> None:
        timer = container._expiry_timer
        if timer is not None:
            timer.cancel()
            container._expiry_timer = None

    def _schedule_expiry(self, container: Container) -> None:
        self._cancel_expiry(container)
        timer = self.env.timeout(self.spec.keepalive)

        def _expire(_: Event) -> None:
            container._expiry_timer = None
            if container.state == ContainerState.IDLE:
                idle = self._idle.get(container.function)
                if idle and container in idle:
                    idle.remove(container)
                self._destroy(container)

        timer.callbacks.append(_expire)
        container._expiry_timer = timer

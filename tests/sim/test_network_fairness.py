"""Property-style tests of max-min fairness and the incremental allocator.

Three families of invariants over randomized (fixed-seed) arrival and
departure sequences:

1. Feasibility — on every link, the granted rates sum to at most the
   link bandwidth.
2. Max-min optimality — every active flow is bottlenecked: some link on
   its route is saturated and carries no faster flow, so raising the
   flow would necessarily lower an equal-or-slower one.
3. Equivalence — incremental component-local rebalancing produces the
   exact same rates, completion records, and makespans as full
   water-filling over every flow (``NetworkConfig(incremental=False)``).
"""

import random

import pytest

from repro.sim import Environment, MB, Network, NetworkConfig

_TOL = 1e-6  # rate feasibility slack, bytes/second


def _build(seed: int, incremental: bool, nodes: int = 10, flows: int = 60):
    """Deterministic random workload: staggered arrivals, mixed sizes.

    Consumes the RNG identically regardless of ``incremental`` so both
    modes see byte-exact the same plan.
    """
    rng = random.Random(seed)
    env = Environment()
    net = Network(env, NetworkConfig(incremental=incremental))
    nics = [
        net.attach(f"n{i}", rng.choice([25, 50, 100, 200]) * MB)
        for i in range(nodes)
    ]
    plan = []
    for _ in range(flows):
        gap = rng.uniform(0.0, 0.02)
        src, dst = rng.sample(range(nodes), 2)
        if rng.random() < 0.4:  # storage-node hotspot
            dst = 0
        size = rng.uniform(0.5, 24.0) * MB
        plan.append((gap, src, dst, size))

    def starter(env):
        for gap, src, dst, size in plan:
            yield env.timeout(gap)
            net.transfer(nics[src], nics[dst], size)

    env.process(starter(env))
    return env, net


def _link_loads(net: Network) -> dict:
    loads: dict = {}
    for flow in net.active_flows:
        for link in flow.links:
            loads[link] = loads.get(link, 0.0) + flow.rate
    return loads


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
@pytest.mark.parametrize("incremental", [True, False])
class TestMaxMinProperties:
    def test_rates_never_exceed_link_bandwidth(self, seed, incremental):
        env, net = _build(seed, incremental)
        for probe in (0.05, 0.2, 0.5, 1.0, 2.0):
            env.run(until=probe)
            for link, load in _link_loads(net).items():
                assert load <= link.bandwidth + _TOL, (
                    f"link {link.name} oversubscribed: {load} > {link.bandwidth}"
                )

    def test_every_flow_is_bottlenecked(self, seed, incremental):
        """Max-min optimality: no flow can be raised without lowering an
        equal-or-slower flow.  Equivalently, each flow crosses a link
        that is saturated and on which it is among the fastest flows."""
        env, net = _build(seed, incremental)
        for probe in (0.1, 0.4, 0.8, 1.5):
            env.run(until=probe)
            loads = _link_loads(net)
            for flow in net.active_flows:
                rate = flow.rate
                if rate <= 0.0:
                    continue
                bottlenecked = False
                for link in flow.links:
                    saturated = loads[link] >= link.bandwidth - _TOL
                    fastest = all(
                        other.rate <= rate + _TOL
                        for other in net.active_flows
                        if link in other.links
                    )
                    if saturated and fastest:
                        bottlenecked = True
                        break
                assert bottlenecked, (
                    f"flow {flow.flow_id} at {rate} has headroom on all links"
                )


@pytest.mark.parametrize("seed", [1, 7, 23, 91, 137])
class TestIncrementalEquivalence:
    def test_records_and_makespan_bit_identical(self, seed):
        env_inc, net_inc = _build(seed, incremental=True)
        env_full, net_full = _build(seed, incremental=False)
        env_inc.run()
        env_full.run()
        assert env_inc.now == env_full.now
        rec_inc = [
            (r.src, r.dst, r.size, r.started_at, r.finished_at, r.kind)
            for r in net_inc.records
        ]
        rec_full = [
            (r.src, r.dst, r.size, r.started_at, r.finished_at, r.kind)
            for r in net_full.records
        ]
        assert rec_inc == rec_full

    def test_mid_run_rates_bit_identical(self, seed):
        env_inc, net_inc = _build(seed, incremental=True)
        env_full, net_full = _build(seed, incremental=False)
        for probe in (0.1, 0.3, 0.7, 1.2):
            env_inc.run(until=probe)
            env_full.run(until=probe)
            rates_inc = [(f.flow_id, f.rate, f.remaining) for f in net_inc.active_flows]
            rates_full = [(f.flow_id, f.rate, f.remaining) for f in net_full.active_flows]
            assert rates_inc == rates_full


def test_aggregated_same_route_flows_share_one_class():
    """N same-route transfers collapse into one allocator class but keep
    per-flow accounting (each gets bandwidth/N)."""
    env = Environment()
    net = Network(env, NetworkConfig())
    a = net.attach("a", 100 * MB)
    b = net.attach("b", 100 * MB)
    for _ in range(10):
        net.transfer(a, b, 50 * MB)
    assert net.active_flow_count == 10
    # One route class: every flow runs at exactly bandwidth / 10.
    rates = {f.rate for f in net.active_flows}
    assert rates == {100 * MB / 10}
    env.run()
    assert len(net.records) == 10
    assert net.bytes_between("a", "b") == 10 * 50 * MB

"""Property-based end-to-end tests: random workflows, hard invariants.

Hypothesis generates random WDL-shaped workflows; both engines execute
them on fresh clusters with tracing on, and the invariants that define
a correct workflow engine are asserted:

- the invocation completes,
- every function (including virtual step markers) executes exactly once,
- no function executes before all of its predecessors,
- the same invariants hold under any placement and with data shipping.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients import run_closed_loop
from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    HyperFlowServerlessSystem,
    Kind,
    Tracer,
    hash_partition,
)
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment
from repro.wdl import workflow_from_dict

MB = 1024.0 * 1024.0


@st.composite
def random_wdl(draw):
    """A random workflow document: sequences, parallels, foreach."""
    counter = {"n": 0}

    def task():
        counter["n"] += 1
        return {
            "task": f"t{counter['n']}",
            "service_time": draw(
                st.floats(min_value=0.01, max_value=0.2)
            ),
            "output_size": draw(
                st.sampled_from([0, 0.1 * MB, 1 * MB, 4 * MB])
            ),
            "memory": "48MB",
        }

    def step(depth):
        if depth >= 2:
            return task()
        kind = draw(st.sampled_from(["task", "task", "parallel", "foreach"]))
        if kind == "task":
            return task()
        if kind == "parallel":
            branches = [
                [step(depth + 1) for _ in range(draw(st.integers(1, 2)))]
                for _ in range(draw(st.integers(2, 3)))
            ]
            counter["n"] += 1
            return {"parallel": f"p{counter['n']}", "branches": branches}
        counter["n"] += 1
        return {
            "foreach": f"fe{counter['n']}",
            "items": draw(st.integers(2, 4)),
            "steps": [task()],
        }

    steps = [step(0) for _ in range(draw(st.integers(1, 4)))]
    return {"name": "random-wf", "steps": steps}


def fresh_cluster():
    env = Environment()
    return Cluster(
        env,
        ClusterConfig(
            workers=3,
            container=ContainerSpec(cold_start_time=0.05),
        ),
    )


def check_invariants(dag, tracer, record):
    assert record.status == "ok"
    counts = tracer.execution_counts(record.invocation_id)
    assert counts == {name: 1 for name in dag.node_names}
    inv = record.invocation_id
    for edge in dag.edges:
        assert tracer.execution_time(inv, edge.src) <= (
            tracer.execution_time(inv, edge.dst) + 1e-12
        )


class TestRandomWorkflows:
    @settings(max_examples=30, deadline=None)
    @given(document=random_wdl(), ship_data=st.booleans())
    def test_worker_sp_invariants(self, document, ship_data):
        dag = workflow_from_dict(document)
        cluster = fresh_cluster()
        tracer = Tracer()
        system = FaaSFlowSystem(
            cluster, EngineConfig(ship_data=ship_data), tracer=tracer
        )
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        for worker in cluster.workers:
            worker.set_faastore_quota(256 * MB, workflow=dag.name)
        record = run_closed_loop(system, dag.name, 1)[0]
        check_invariants(dag, tracer, record)

    @settings(max_examples=30, deadline=None)
    @given(document=random_wdl(), ship_data=st.booleans())
    def test_master_sp_invariants(self, document, ship_data):
        dag = workflow_from_dict(document)
        cluster = fresh_cluster()
        tracer = Tracer()
        system = HyperFlowServerlessSystem(
            cluster, EngineConfig(ship_data=ship_data), tracer=tracer
        )
        system.register(dag, hash_partition(dag, cluster.worker_names()))
        record = run_closed_loop(system, dag.name, 1)[0]
        check_invariants(dag, tracer, record)

    @settings(max_examples=15, deadline=None)
    @given(document=random_wdl())
    def test_both_engines_run_the_same_functions(self, document):
        """The two schedule patterns must execute identical work."""
        dag_w = workflow_from_dict(document)
        cluster_w = fresh_cluster()
        tracer_w = Tracer()
        worker = FaaSFlowSystem(
            cluster_w, EngineConfig(ship_data=False), tracer=tracer_w
        )
        worker.deploy(dag_w, hash_partition(dag_w, cluster_w.worker_names()))
        record_w = run_closed_loop(worker, dag_w.name, 1)[0]

        dag_m = workflow_from_dict(document)
        cluster_m = fresh_cluster()
        tracer_m = Tracer()
        master = HyperFlowServerlessSystem(
            cluster_m, EngineConfig(ship_data=False), tracer=tracer_m
        )
        master.register(dag_m, hash_partition(dag_m, cluster_m.worker_names()))
        record_m = run_closed_loop(master, dag_m.name, 1)[0]

        assert tracer_w.execution_counts(record_w.invocation_id) == (
            tracer_m.execution_counts(record_m.invocation_id)
        )

    @settings(max_examples=15, deadline=None)
    @given(document=random_wdl(), seed=st.integers(0, 100))
    def test_grouped_placement_preserves_invariants(self, document, seed):
        """Algorithm 1 placements are as correct as hash placements."""
        from repro.core import GraphScheduler
        from repro.dag import estimate_edge_weights

        dag = workflow_from_dict(document)
        cluster = fresh_cluster()
        tracer = Tracer()
        system = FaaSFlowSystem(
            cluster, EngineConfig(ship_data=True), tracer=tracer
        )
        scheduler = GraphScheduler(cluster, seed=seed)
        estimate_edge_weights(dag, bandwidth=cluster.config.storage_bandwidth)
        placement, quotas, _ = scheduler.schedule(dag, force_grouping=True)
        system.deploy(dag, placement, quotas=quotas)
        record = run_closed_loop(system, dag.name, 1)[0]
        check_invariants(dag, tracer, record)

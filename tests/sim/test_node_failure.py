"""Tests for the node-crash substrate: pool failure, offline gating,
acquire abandonment, and mid-flow bandwidth changes."""

import pytest

from repro.sim import (
    Cluster,
    ClusterConfig,
    ContainerSpec,
    Environment,
    MB,
)
from repro.sim.container import ContainerState


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    return Cluster(
        env,
        ClusterConfig(
            workers=2, container=ContainerSpec(cold_start_time=0.1)
        ),
    )


def acquire_one(env, pool, function="f"):
    """Drive one acquire to completion and return the container."""
    got = {}

    def proc():
        container = yield pool.acquire(function)
        got["container"] = container

    done = env.process(proc())
    env.run(until=done)
    return got["container"]


class TestNodeFail:
    def test_fail_destroys_all_containers(self, env, cluster):
        node = cluster.workers[0]
        pool = node.containers
        busy = acquire_one(env, pool, "a")
        idle = acquire_one(env, pool, "b")
        pool.release(idle)
        destroyed = node.fail()
        assert destroyed == 2
        assert not node.up
        assert busy.state == ContainerState.DEAD
        assert idle.state == ContainerState.DEAD
        assert pool.node_failures == 1

    def test_fail_is_idempotent(self, env, cluster):
        node = cluster.workers[0]
        acquire_one(env, node.containers)
        assert node.fail() == 1
        assert node.fail() == 0  # already down
        assert node.containers.node_failures == 1

    def test_offline_pool_queues_until_recovery(self, env, cluster):
        node = cluster.workers[0]
        node.fail()
        state = {}

        def proc():
            container = yield node.containers.acquire("f")
            state["at"] = env.now
            state["container"] = container

        env.process(proc())
        env.run(until=1.0)
        assert "at" not in state  # blocked while offline
        node.recover()
        env.run(until=2.0)
        # Served after recovery: cold start from an empty node.
        assert state["at"] == pytest.approx(1.0 + 0.1)
        assert state["container"].state == ContainerState.BUSY

    def test_recover_without_fail_is_noop(self, env, cluster):
        node = cluster.workers[0]
        assert node.up
        node.recover()
        assert node.up


class TestAbandon:
    def test_abandon_granted_acquire_releases_container(self, env, cluster):
        pool = cluster.workers[0].containers

        def proc():
            event = pool.acquire("f")
            container = yield event
            # The waiter changed its mind after the grant.
            pool.abandon(event)
            assert container.state == ContainerState.IDLE

        done = env.process(proc())
        env.run(until=done)

    def test_abandon_waiting_request_is_removed(self, env, cluster):
        env2 = Environment()
        cluster2 = Cluster(
            env2,
            ClusterConfig(
                workers=1,
                container=ContainerSpec(
                    cold_start_time=0.1, max_per_function=1
                ),
            ),
        )
        pool = cluster2.workers[0].containers
        first = acquire_one(env2, pool, "f")
        event = pool.acquire("f")  # queues behind the limit
        pool.abandon(event)
        pool.release(first)
        env2.run(until=env2.now + 1.0)
        # The abandoned waiter never got the container.
        assert not event.triggered

    def test_abandon_cold_start_in_flight(self, env, cluster):
        pool = cluster.workers[0].containers
        event = pool.acquire("f")  # cold start begins
        pool.abandon(event)
        env.run(until=0.5)
        # The cold start completed but nobody took the container: it
        # must sit warm in the pool, not leak as BUSY.
        assert not event.triggered
        warm = acquire_one(env, pool, "f")
        assert warm.invocations >= 1 or warm.state == ContainerState.BUSY

    def test_cold_start_racing_node_failure_requeues(self, env, cluster):
        node = cluster.workers[0]
        pool = node.containers
        state = {}

        def proc():
            container = yield pool.acquire("f")
            state["at"] = env.now
            state["container"] = container

        env.process(proc())
        env.run(until=0.05)  # cold start half done
        node.fail()
        env.run(until=0.5)
        assert "at" not in state  # the starting container died
        node.recover()
        env.run(until=2.0)
        assert state["container"].state == ContainerState.BUSY


class TestBandwidthChange:
    def test_set_nic_bandwidth_rebalances_active_flows(self):
        def transfer_time(degrade_at=None, factor=0.25):
            env = Environment()
            cluster = Cluster(env, ClusterConfig(workers=2))
            src = cluster.workers[0].nic
            dst = cluster.workers[1].nic
            done = cluster.network.transfer(src, dst, 100 * MB)
            finished = {}

            def watcher():
                yield done
                finished["at"] = env.now

            env.process(watcher())
            if degrade_at is not None:
                original = src.bandwidth

                def degrader():
                    yield env.timeout(degrade_at)
                    cluster.network.set_nic_bandwidth(
                        src, original * factor
                    )

                env.process(degrader())
            env.run(until=60.0)
            return finished["at"]

        baseline = transfer_time()
        degraded = transfer_time(degrade_at=baseline / 2)
        # The second half of the transfer ran at quarter speed, so the
        # flow must finish strictly later — and the slowdown must apply
        # to the *in-flight* flow, not only to new ones.
        assert degraded > baseline * 1.5

#!/usr/bin/env python3
"""Video transcoding pipeline: MasterSP vs WorkerSP, side by side.

The paper's motivating real-world application (Alibaba Function
Compute's FFmpeg sample): an uploaded video fans out to eight parallel
transcode functions.  This example reproduces both §5.2-style
measurements on it:

- *scheduling overhead* — inputs pre-packed in the container image
  (``ship_data=False``), so latency beyond the critical path's
  execution time is pure engine/scheduling cost;
- *data movement* — the full data-shipping run, showing where FaaStore
  keeps the bytes.

Run: ``python examples/video_pipeline.py``
"""

from repro import (
    Cluster,
    ClusterConfig,
    EngineConfig,
    Environment,
    FaaSFlowSystem,
    GraphScheduler,
    HyperFlowServerlessSystem,
    MB,
    hash_partition,
    run_closed_loop,
)
from repro.workloads import video_ffmpeg

INVOCATIONS = 10


def run_master_sp(ship_data: bool):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = HyperFlowServerlessSystem(
        cluster, EngineConfig(ship_data=ship_data)
    )
    dag = video_ffmpeg()
    system.register(dag, hash_partition(dag, cluster.worker_names()))
    records = run_closed_loop(system, dag.name, INVOCATIONS)
    return system, dag, records


def run_worker_sp(ship_data: bool):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = FaaSFlowSystem(cluster, EngineConfig(ship_data=ship_data))
    scheduler = GraphScheduler(cluster)
    dag = video_ffmpeg()
    # Bootstrap, measure, re-partition — the paper's feedback loop.
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    run_closed_loop(system, dag.name, 2)
    scheduler.absorb_feedback(dag, system.metrics)
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    system.metrics.clear()
    records = run_closed_loop(system, dag.name, INVOCATIONS)
    return system, dag, records


def mean_overhead_ms(records) -> float:
    warm = records[1:]
    return 1000 * sum(r.scheduling_overhead for r in warm) / len(warm)


def main() -> None:
    print("video-ffmpeg: 4.23 MB upload -> 8 parallel transcodes\n")

    # --- scheduling overhead (pre-packed inputs, like paper Sec. 5.2) ---
    _, _, master_records = run_master_sp(ship_data=False)
    _, _, worker_records = run_worker_sp(ship_data=False)
    master_overhead = mean_overhead_ms(master_records)
    worker_overhead = mean_overhead_ms(worker_records)
    print("scheduling overhead (no data shipping):")
    print(f"  HyperFlow-serverless  {master_overhead:8.1f} ms")
    print(f"  FaaSFlow              {worker_overhead:8.1f} ms")
    print(f"  reduction             {100 * (1 - worker_overhead / master_overhead):7.0f}% "
          "(paper: 74.6% average)\n")

    # --- data movement (full data plane, like paper Sec. 5.3) ---
    master_system, master_dag, master_records = run_master_sp(ship_data=True)
    worker_system, worker_dag, worker_records = run_worker_sp(ship_data=True)
    print("data plane (full shipping):")
    for label, system, dag, records in (
        ("HyperFlow-serverless", master_system, master_dag, master_records),
        ("FaaSFlow-FaaStore", worker_system, worker_dag, worker_records),
    ):
        warm = records[1:]
        latency = sum(r.latency for r in warm) / len(warm)
        moved = system.metrics.data_moved(dag.name) / len(records) / MB
        local = 100 * system.metrics.local_fraction(dag.name)
        print(f"  {label:22s} e2e {latency:5.2f} s, "
              f"{moved:5.1f} MB moved ({local:3.0f}% node-local)")


if __name__ == "__main__":
    main()

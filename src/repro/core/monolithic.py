"""Monolithic deployment baseline (paper §2.4, Fig. 5).

All functions of the application run in one process on one server and
call each other directly: intermediate data is written to process
memory once and read by direct reference — no database, no network.
This is the baseline Fig. 5 compares the data-shipping FaaS deployment
against.

The DAG still executes with its real parallelism (bounded by the node's
cores), so the monolithic end-to-end latency is meaningful too; what
the experiment reports is the *data movement*: one local write per
producer output, nothing else.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..dag import WorkflowDAG
from ..metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
    TransferEvent,
)
from ..obs.spans import SpanKind
from ..sim import Cluster, Node
from .master_engine import static_critical_exec
from .state import InvocationState, new_invocation_id
from .tracing import Kind, Tracer

__all__ = ["MonolithicSystem"]


class MonolithicSystem:
    """Runs a workflow as a single multi-threaded process on one node."""

    mode = "monolithic"

    def __init__(
        self,
        cluster: Cluster,
        metrics: Optional[MetricsCollector] = None,
        host: Optional[Node] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.host = host or cluster.workers[0]
        self.tracer = tracer
        self.spans = cluster.spans
        if self.spans.enabled:
            self.metrics.spans = self.spans
        self._workflows: dict[str, WorkflowDAG] = {}

    def register(self, dag: WorkflowDAG) -> None:
        dag.validate()
        self._workflows[dag.name] = dag

    def trace(self, kind: str, workflow: str, invocation_id: str,
              function: str = "", node: str = "", detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, kind, workflow, invocation_id,
                function=function, node=node, detail=detail,
            )

    def invoke(self, workflow: str) -> Generator:
        """Simulation process: one monolithic invocation."""
        dag = self._workflows[workflow]
        invocation_id = new_invocation_id()
        record = InvocationRecord(
            workflow=workflow,
            invocation_id=invocation_id,
            mode=self.mode,
            started_at=self.env.now,
            critical_path_exec=static_critical_exec(dag),
        )
        state = InvocationState(invocation_id)
        all_done = self.env.event()
        remaining = {"count": len(dag.node_names)}
        self.trace(Kind.INVOCATION_START, workflow, invocation_id)
        if self.spans.enabled:
            self.spans.start_invocation(
                invocation_id, workflow=workflow, mode=self.mode
            )
        for source in dag.sources():
            state.state_of(source).triggered = True
            self.env.process(
                self._run_function(dag, invocation_id, source, state, remaining, all_done),
                name=f"mono:{workflow}:{source}",
            )
        yield all_done
        record.finished_at = self.env.now
        self.metrics.record_invocation(record)
        self.trace(
            Kind.INVOCATION_END, workflow, invocation_id, detail=record.status
        )
        if self.spans.enabled:
            root = self.spans.root_of(invocation_id)
            if root is not None:
                self.spans.end(root, status=record.status)
        return record

    def _run_function(
        self, dag, invocation_id, function, state, remaining, all_done
    ) -> Generator:
        node_meta = dag.node(function)
        spans = self.spans
        if not node_meta.is_virtual:
            instances = max(1, int(round(node_meta.map_factor)))
            fn_span = None
            if spans.enabled:
                fn_span = spans.start(
                    SpanKind.FUNCTION,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=self.host.name,
                    parent=spans.root_of(invocation_id),
                    instances=instances,
                )
                spans.set_context(invocation_id, function, fn_span)
            workers = [
                self.env.process(
                    self._run_thread(
                        dag.name, invocation_id, function,
                        node_meta.service_time, i,
                    ),
                    name=f"mono-thread:{function}#{i}",
                )
                for i in range(instances)
            ]
            yield self.env.all_of(workers)
            if node_meta.output_size > 0 and dag.data_consumers(function):
                # Direct inter-call: consumed intermediate data is
                # materialized in process memory exactly once; terminal
                # outputs go straight to the user and are not
                # inter-function movement.
                rate = self.cluster.network.config.local_copy_rate
                duration = node_meta.output_size / rate
                yield self.env.timeout(duration)
                self.metrics.record_transfer(
                    TransferEvent(
                        workflow=dag.name,
                        invocation_id=invocation_id,
                        producer=function,
                        consumer="",
                        size=node_meta.output_size,
                        duration=duration,
                        phase="put",
                        local=True,
                    )
                )
                if spans.enabled:
                    spans.record(
                        SpanKind.PUT,
                        self.env.now - duration,
                        self.env.now,
                        workflow=dag.name,
                        invocation_id=invocation_id,
                        function=function,
                        node=self.host.name,
                        parent=fn_span,
                        producer=function,
                        size=node_meta.output_size,
                        local=True,
                    )
            if fn_span is not None:
                spans.end(fn_span)
                spans.clear_context(invocation_id, function)
        state.state_of(function).executed = True
        self.trace(
            Kind.FUNCTION_EXECUTED, dag.name, invocation_id,
            function=function,
            node="" if node_meta.is_virtual else self.host.name,
        )
        remaining["count"] -= 1
        if remaining["count"] == 0 and not all_done.triggered:
            all_done.succeed()
            return
        for successor in dag.successors(function):
            successor_state = state.state_of(successor)
            successor_state.mark_predecessor_done()
            if successor_state.ready(len(dag.predecessors(successor))):
                successor_state.triggered = True
                self.env.process(
                    self._run_function(
                        dag, invocation_id, successor, state, remaining, all_done
                    ),
                    name=f"mono:{dag.name}:{successor}",
                )

    def _run_thread(
        self,
        workflow: str,
        invocation_id: str,
        function: str,
        service_time: float,
        index: int,
    ) -> Generator:
        spans = self.spans
        wait_start = self.env.now
        request = self.host.cpu.request(1)
        yield request
        if spans.enabled and self.env.now - wait_start > 1e-12:
            spans.record(
                SpanKind.QUEUE_WAIT,
                wait_start,
                self.env.now,
                workflow=workflow,
                invocation_id=invocation_id,
                function=function,
                node=self.host.name,
                parent=spans.context_of(invocation_id, function),
                resource="cpu",
                instance=index,
            )
        exec_start = self.env.now
        try:
            yield self.env.timeout(service_time)
        finally:
            self.host.cpu.release(request)
            if spans.enabled:
                spans.record(
                    SpanKind.EXECUTE,
                    exec_start,
                    self.env.now,
                    workflow=workflow,
                    invocation_id=invocation_id,
                    function=function,
                    node=self.host.name,
                    parent=spans.context_of(invocation_id, function),
                    instance=index,
                )

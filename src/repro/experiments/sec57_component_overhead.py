"""§5.7 — per-worker engine overhead and cluster scaling.

Two measurements:

1. **Engine overhead under load** — the per-worker workflow engine's
   CPU occupancy (busy seconds of its serialized event loop divided by
   elapsed time) and the size of its live *Workflow* bookkeeping
   structures.  The paper reports ≈ 0.12 core and ≈ 47 MB per worker
   (process RSS; our structure-size figure excludes the interpreter
   baseline, so it is smaller in absolute terms).

2. **Cluster scaling** — the same measurement on clusters of 1 to 100
   workers with a proportional workflow load: per-worker usage must
   stay flat (total scales linearly), i.e. WorkerSP adds no
   super-linear overhead as the cluster grows.
"""

from __future__ import annotations

import sys

from ..clients import ClosedLoopClient
from ..workloads import build
from .common import ExperimentResult, deploy_with_feedback, make_cluster, make_faasflow

__all__ = ["run"]

DEFAULT_WORKER_COUNTS = (1, 5, 10, 25, 50, 100)


def _deep_size(obj, seen=None) -> int:
    """Approximate recursive in-memory size of the engine structures."""
    seen = seen if seen is not None else set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            _deep_size(k, seen) + _deep_size(v, seen) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(_deep_size(item, seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += _deep_size(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        size += sum(
            _deep_size(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size


def _run_load(workers: int, workflows_per_worker: float, invocations: int):
    """A cluster under proportional closed-loop load; returns stats."""
    cluster = make_cluster(workers=workers)
    system, scheduler = make_faasflow(cluster, ship_data=True)
    count = max(1, int(workers * workflows_per_worker))
    names = []
    for index in range(count):
        dag = build("file-processing")
        dag.name = f"file-processing-{index}"
        deploy_with_feedback(system, scheduler, dag, warmup_invocations=0)
        names.append(dag.name)
    env = cluster.env
    start = env.now
    processes = [
        env.process(ClosedLoopClient(system, name, invocations).run())
        for name in names
    ]
    env.run(until=env.all_of(processes))
    elapsed = env.now - start
    engines = list(system.engines.values())
    busy = sum(e.busy_time for e in engines)
    events = sum(e.events_handled for e in engines)
    structures = sum(
        _deep_size(e._structures) for e in engines
    )
    return {
        "workers": workers,
        "elapsed": elapsed,
        "cpu_per_worker": busy / elapsed / workers if elapsed else 0.0,
        "events": events,
        "structure_kb_per_worker": structures / 1024 / workers,
    }


def run(
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    invocations: int = 10,
    workflows_per_worker: float = 1.0,
) -> ExperimentResult:
    rows = []
    per_worker_cpu = []
    for workers in worker_counts:
        stats = _run_load(workers, workflows_per_worker, invocations)
        per_worker_cpu.append(stats["cpu_per_worker"])
        rows.append(
            [
                workers,
                round(stats["cpu_per_worker"], 4),
                round(stats["structure_kb_per_worker"], 1),
                stats["events"],
                round(stats["elapsed"], 1),
            ]
        )
    spread = (
        max(per_worker_cpu) / min(per_worker_cpu)
        if min(per_worker_cpu) > 0
        else float("inf")
    )
    notes = [
        f"per-worker engine CPU varies only {spread:.1f}x across 1-"
        f"{max(worker_counts)} workers (flat = linear total scaling)",
        "paper: ~0.12 core and ~47 MB per worker engine (process RSS "
        "including interpreter; the structure sizes above exclude it)",
    ]
    return ExperimentResult(
        experiment="sec57",
        title="Per-worker engine overhead while the cluster scales",
        headers=[
            "workers",
            "engine CPU (cores/worker)",
            "structures (KB/worker)",
            "engine events",
            "elapsed (s)",
        ],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

"""Tests for cross-workflow capacity reservations in the scheduler."""

import pytest

from repro.core import GraphScheduler
from repro.dag import WorkflowDAG, estimate_edge_weights
from repro.sim import MB


def heavy_dag(name, functions=12, scale=1.0):
    dag = WorkflowDAG(name)
    previous = None
    for i in range(functions):
        dag.add_function(
            f"{name}-f{i}",
            service_time=0.1,
            output_size=1 * MB,
            scale=scale,
        )
        if previous:
            dag.add_edge(previous, f"{name}-f{i}", data_size=1 * MB, weight=0.5)
        previous = f"{name}-f{i}"
    return dag


class TestReservations:
    def test_first_workflow_sees_full_capacity(self, cluster):
        scheduler = GraphScheduler(cluster)
        capacities = scheduler.worker_capacities()
        assert all(c > 100 for c in capacities.values())

    def test_deployed_workflow_reserves_capacity(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = heavy_dag("a")
        scheduler.schedule(dag, force_grouping=True)
        before = scheduler.worker_capacities()
        after = scheduler.worker_capacities(exclude="a")
        # Excluding "a" gives back exactly its reservation.
        total_diff = sum(after.values()) - sum(before.values())
        assert total_diff == pytest.approx(len(dag.real_nodes()))

    def test_rescheduling_replaces_own_reservation(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = heavy_dag("a")
        scheduler.schedule(dag, force_grouping=True)
        first_total = sum(scheduler.worker_capacities().values())
        scheduler.schedule(dag, force_grouping=True)
        second_total = sum(scheduler.worker_capacities().values())
        # No double counting across iterations.
        assert second_total == pytest.approx(first_total)

    def test_scale_feedback_grows_reservation(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = heavy_dag("a")
        scheduler.schedule(dag, force_grouping=True)
        lean_capacity = sum(scheduler.worker_capacities(exclude="b").values())
        for node in dag.real_nodes():
            scheduler.observe_scale(node.name, 3.0)
        scheduler.absorb_feedback(dag, _empty_metrics())
        scheduler.schedule(dag, force_grouping=True)
        scaled_capacity = sum(
            scheduler.worker_capacities(exclude="b").values()
        )
        assert scaled_capacity < lean_capacity

    def test_two_workflows_pack_around_each_other(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag_a = heavy_dag("a")
        dag_b = heavy_dag("b")
        placement_a, _, _ = scheduler.schedule(dag_a, force_grouping=True)
        placement_b, _, _ = scheduler.schedule(dag_b, force_grouping=True)
        # With worst-fit balancing and reservations, the two workflows'
        # primary workers differ.
        from collections import Counter

        top_a = Counter(placement_a.assignment.values()).most_common(1)[0][0]
        top_b = Counter(placement_b.assignment.values()).most_common(1)[0][0]
        assert top_a != top_b

    def test_capacity_never_negative(self, cluster):
        scheduler = GraphScheduler(cluster)
        for index in range(12):
            dag = heavy_dag(f"wf{index}", functions=10)
            scheduler.schedule(dag, force_grouping=True)
        capacities = scheduler.worker_capacities()
        assert all(c >= 0 for c in capacities.values())


class TestGroupInstanceCap:
    def test_cap_limits_group_size(self, cluster):
        scheduler = GraphScheduler(cluster)
        assert scheduler.max_group_instances() == pytest.approx(10.0)
        dag = heavy_dag("big", functions=30)
        estimate_edge_weights(dag, bandwidth=50 * MB)
        _, _, report = scheduler.schedule(dag, force_grouping=True)
        for group in report.grouping.groups:
            instances = sum(
                dag.node(f).effective_instances for f in group
            )
            assert instances <= scheduler.max_group_instances() + 1e-9


def _empty_metrics():
    from repro.metrics import MetricsCollector

    return MetricsCollector()

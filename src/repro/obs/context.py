"""Ambient trace collection for the experiment harness.

The paper-reproduction experiments build their own clusters and systems
internally (one fresh cluster per cell), so a caller-supplied tracer
cannot reach them through arguments without threading a parameter
through every experiment.  Instead, ``faasflow-experiment --trace-out``
activates a :class:`TraceCollector`; ``make_cluster`` (the shared
cluster factory every experiment uses) asks the active collector to
instrument each cluster it builds — a span tracer is installed on the
cluster's producers and a resource sampler starts ticking — and the CLI
flushes one trace bundle per instrumented run at the end.

Worker processes spawned by ``--jobs`` never inherit the collector, so
parallel sweeps simply emit no spans from their children; run tracing
with ``--jobs 1`` (the default) to capture everything.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .export import export_trace
from .sampler import ResourceSampler
from .spans import SpanTracer
from .telemetry import MetricsRegistry

__all__ = ["TraceCollector", "activate", "deactivate", "active_collector"]

_active: Optional["TraceCollector"] = None


class TraceCollector:
    """Accumulates per-run tracers/samplers/registries for later export."""

    def __init__(
        self,
        directory: Union[str, Path],
        sample_interval: float = 0.25,
        span_limit: int = 1_000_000,
        spans: bool = True,
        telemetry: bool = False,
        telemetry_directory: Union[str, Path, None] = None,
    ):
        self.directory = Path(directory)
        self.sample_interval = sample_interval
        self.span_limit = span_limit
        self.spans = spans
        self.telemetry = telemetry
        self.telemetry_directory = (
            Path(telemetry_directory)
            if telemetry_directory is not None
            else self.directory
        )
        self.label = "run"
        self._runs: list[tuple] = []

    def set_label(self, label: str) -> None:
        """Name the bundles of subsequently instrumented clusters."""
        self.label = label

    def instrument(self, cluster) -> Optional[SpanTracer]:
        """Attach fresh instruments to a newly built cluster."""
        tracer = None
        sampler = None
        if self.spans:
            tracer = SpanTracer(cluster.env, limit=self.span_limit)
            cluster.install_spans(tracer)
            sampler = ResourceSampler(cluster, interval=self.sample_interval)
            sampler.start()
        registry = None
        if self.telemetry:
            env = cluster.env
            registry = MetricsRegistry(clock=lambda: env.now)
            cluster.install_telemetry(registry)
        self._runs.append((self.label, tracer, sampler, registry))
        return tracer

    def flush(self) -> list[Path]:
        """Write one bundle per instrumented run; returns all paths."""
        from .telemetry import write_telemetry_json

        paths: list[Path] = []
        counters: dict[str, int] = {}
        for label, tracer, sampler, registry in self._runs:
            counters[label] = counters.get(label, 0) + 1
            prefix = f"{label}-{counters[label]:03d}"
            if tracer is not None:
                bundle = export_trace(
                    self.directory, tracer, sampler=sampler, prefix=prefix
                )
                paths.extend(bundle.values())
            if registry is not None:
                self.telemetry_directory.mkdir(parents=True, exist_ok=True)
                paths.append(
                    write_telemetry_json(
                        self.telemetry_directory
                        / f"{prefix}-telemetry.json",
                        registry,
                    )
                )
        self._runs.clear()
        return paths

    @property
    def run_count(self) -> int:
        return len(self._runs)


def activate(collector: TraceCollector) -> None:
    global _active
    _active = collector


def deactivate() -> None:
    global _active
    _active = None


def active_collector() -> Optional[TraceCollector]:
    return _active

"""Resource-sampler cadence, content, and CSV round-trip tests."""

import pytest

from repro.clients import run_closed_loop
from repro.core import EngineConfig, FaaSFlowSystem
from repro.obs import ResourceSampler, read_samples_csv, write_samples_csv

from ..core.conftest import linear_dag, round_robin

# 3 workers + the remote-storage node
NODES = 4


class TestCadence:
    def test_initial_sample_at_start(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=10.0)
        sampler.start()
        assert len(sampler.samples) == NODES
        assert all(s.time == 0.0 for s in sampler.samples)

    def test_interval_longer_than_run_still_one_tick(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=100.0)
        sampler.start()
        env.run(until=1.0)
        assert len(sampler.samples) == NODES  # just the initial tick

    def test_tick_count_matches_interval(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.25)
        sampler.start()
        env.run(until=1.0)
        # ticks at t=0, 0.25, 0.5, 0.75, 1.0
        assert len(sampler.samples) == 5 * NODES

    def test_start_is_idempotent(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.5)
        sampler.start()
        sampler.start()
        env.run(until=1.0)
        assert len(sampler.samples) == 3 * NODES

    def test_invalid_interval_rejected(self, env, cluster):
        with pytest.raises(ValueError):
            ResourceSampler(cluster, interval=0.0)
        with pytest.raises(ValueError):
            ResourceSampler(cluster, interval=-1.0)


class TestContent:
    def test_busy_cpu_visible_during_run(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.05)
        sampler.start()
        dag = linear_dag(n=3, service_time=0.2)
        system = FaaSFlowSystem(cluster, EngineConfig())
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        run_closed_loop(system, dag.name, 2)
        worker_samples = [
            s for s in sampler.samples if s.node.startswith("worker-")
        ]
        assert any(s.cpu_busy > 0 for s in worker_samples)
        assert any(s.container_mem > 0 for s in worker_samples)
        assert any(s.containers > 0 for s in worker_samples)
        for sample in worker_samples:
            assert 0.0 <= sample.cpu_util <= 1.0
            assert 0.0 <= sample.egress_util <= 1.0
            assert 0.0 <= sample.ingress_util <= 1.0

    def test_node_table_one_row_per_node(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.5)
        sampler.start()
        env.run(until=1.0)
        rows = sampler.node_table()
        assert len(rows) == NODES
        assert len(rows[0]) == len(ResourceSampler.NODE_TABLE_HEADERS)
        assert {row[0] for row in rows} == {
            "worker-0", "worker-1", "worker-2", "storage"
        }

    def test_of_node_filters(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.5)
        sampler.start()
        env.run(until=1.0)
        only = sampler.of_node("worker-1")
        assert only and all(s.node == "worker-1" for s in only)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.25)
        sampler.start()
        env.run(until=0.5)
        path = tmp_path / "samples.csv"
        count = write_samples_csv(sampler.samples, path)
        assert count == len(sampler.samples)
        loaded = read_samples_csv(path)
        assert loaded == list(sampler.samples)

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_samples_csv([], path) == 0
        assert read_samples_csv(path) == []


class TestBoundedRing:
    """Satellite: samples live in a drop-oldest ring of ``max_samples``."""

    def test_default_is_generous(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.25)
        assert sampler.max_samples == 1_000_000
        assert sampler.samples.maxlen == 1_000_000

    def test_validation(self, env, cluster):
        with pytest.raises(ValueError):
            ResourceSampler(cluster, interval=0.25, max_samples=0)
        with pytest.raises(ValueError):
            ResourceSampler(cluster, interval=0.25, max_samples=-5)

    def test_oldest_dropped_newest_kept(self, env, cluster):
        # 4 nodes per tick, room for 2 ticks: older ticks fall out.
        sampler = ResourceSampler(
            cluster, interval=0.5, max_samples=2 * NODES
        )
        sampler.start()
        env.run(until=2.1)  # ticks at 0, 0.5, 1.0, 1.5, 2.0
        assert len(sampler.samples) == 2 * NODES
        times = sorted({s.time for s in sampler.samples})
        assert times == [1.5, 2.0]  # newest survive

    def test_dropped_counter(self, env, cluster):
        sampler = ResourceSampler(
            cluster, interval=0.5, max_samples=2 * NODES
        )
        sampler.start()
        env.run(until=2.1)
        # 5 ticks x 4 nodes = 20 taken, 8 retained, 12 dropped.
        assert sampler.dropped == 3 * NODES
        assert sampler.dropped + len(sampler.samples) == 5 * NODES

    def test_no_drops_below_capacity(self, env, cluster):
        sampler = ResourceSampler(cluster, interval=0.5, max_samples=1000)
        sampler.start()
        env.run(until=2.1)
        assert sampler.dropped == 0

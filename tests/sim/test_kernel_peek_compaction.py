"""peek() vs lazily-cancelled timeouts, and the compaction threshold.

``Timeout.cancel()`` drops timers lazily (the heap entry stays until it
surfaces or compaction sweeps it), which used to let ``peek()`` report a
time that would never fire.  That is fatal for the shard barrier
protocol: the coordinator sizes conservative windows from each shard's
``peek()``, and termination detection treats ``peek() == inf`` as
"drained".  These tests pin the repaired contract, plus the
``timer_compaction_threshold`` knob and its behavior under container
keep-alive churn (the workload that generates cancelled timers by the
hundreds).
"""

import random

import pytest

from repro.sim.container import ContainerPool, ContainerSpec
from repro.sim.kernel import Environment, SimulationError
from repro.sim.resources import CPUAllocator, MemoryAccount

MB = 1024.0 * 1024.0
INF = float("inf")


class TestPeekSkipsCancelled:
    def test_cancelled_head_is_skipped(self):
        env = Environment()
        first = env.timeout(1.0)
        env.timeout(2.0)
        first.cancel()
        assert env.peek() == 2.0

    def test_run_of_cancelled_heads_is_skipped(self):
        env = Environment()
        doomed = [env.timeout(t) for t in (1.0, 1.5, 2.0)]
        env.timeout(3.0)
        for timer in doomed:
            timer.cancel()
        assert env.peek() == 3.0

    def test_all_cancelled_reports_inf(self):
        env = Environment()
        timers = [env.timeout(t) for t in (1.0, 2.0, 3.0)]
        for timer in timers:
            timer.cancel()
        assert env.peek() == INF
        # The retired entries are really gone, not just skipped over.
        assert env.queued_events == 0
        assert env._cancelled_timers == 0

    def test_live_head_untouched(self):
        env = Environment()
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.peek() == 1.0
        assert env.queued_events == 2

    def test_peek_matches_next_fire_time(self):
        """Property: after arbitrary cancels, peek() == time of the next
        event that actually fires."""
        rng = random.Random(7)
        for _ in range(30):
            env = Environment()
            timers = [env.timeout(rng.uniform(0.1, 10.0)) for _ in range(20)]
            for timer in rng.sample(timers, rng.randrange(1, 20)):
                timer.cancel()
            predicted = env.peek()
            fired = []
            for timer in timers:
                if not timer._cancelled:
                    timer.callbacks.append(
                        lambda _e, t=timer: fired.append(env.now)
                    )
            env.run()
            if fired:
                assert predicted == fired[0]
            else:
                assert predicted == INF

    def test_peek_then_run_still_fires_survivors(self):
        env = Environment()
        doomed = env.timeout(1.0)
        keeper = env.timeout(2.0)
        doomed.cancel()
        assert env.peek() == 2.0
        hits = []
        keeper.callbacks.append(lambda _e: hits.append(env.now))
        env.run()
        assert hits == [2.0]
        assert env.now == 2.0


class TestCompactionThreshold:
    """The ``timer_compaction_threshold`` knob is heap-only: the wheel
    scheduler drops tombstones bucket-locally and never compacts, so
    these tests pin ``scheduler="heap"`` explicitly."""

    def test_default_threshold(self):
        assert Environment().timer_compaction_threshold == 64

    def test_threshold_validated(self):
        with pytest.raises(SimulationError):
            Environment(timer_compaction_threshold=0)
        with pytest.raises(SimulationError):
            Environment(timer_compaction_threshold=-3)

    def test_low_threshold_compacts_early(self):
        env = Environment(timer_compaction_threshold=1, scheduler="heap")
        timers = [env.timeout(float(t + 1)) for t in range(4)]
        timers[0].cancel()
        # 1 cancelled out of 4 queued: below the half-queue rule.
        assert env.queued_events == 4
        timers[1].cancel()
        # 2 out of 4 >= half the queue and >= threshold: swept eagerly.
        assert env.queued_events == 2
        assert env._cancelled_timers == 0

    def test_high_threshold_defers_compaction(self):
        env = Environment(timer_compaction_threshold=64, scheduler="heap")
        timers = [env.timeout(float(t + 1)) for t in range(4)]
        timers[0].cancel()
        timers[1].cancel()
        # Below the count threshold: the heap keeps the dead entries
        # (until they surface at the head or the run loop pops them).
        assert env.queued_events == 4
        assert env._cancelled_timers == 2


def _make_pool(env, **spec_kwargs):
    defaults = dict(cold_start_time=0.1, keepalive=600.0, max_per_function=10)
    defaults.update(spec_kwargs)
    return ContainerPool(
        env,
        "worker-0",
        CPUAllocator(env, cores=8),
        MemoryAccount(env, capacity=32 * 1024 * MB),
        ContainerSpec(**defaults),
    )


class TestKeepAliveChurn:
    """Heavy warm-reuse churn: every release schedules a keep-alive
    expiry timer, every warm acquire cancels it.  Compaction must keep
    the heap bounded instead of letting dead entries pile up one per
    invocation."""

    CYCLES = 400

    def _churn(self, env, pool, max_queue):
        def driver():
            for _ in range(self.CYCLES):
                container = yield pool.acquire("fn")
                yield env.timeout(0.001)
                pool.release(container)
                yield env.timeout(0.001)
                max_queue[0] = max(max_queue[0], env.queued_events)

        env.process(driver())
        env.run()

    def test_queue_stays_bounded_default_threshold(self):
        # Heap-specific bound: the wheel parks tombstones in far-future
        # buckets (dropped in bulk at load) instead of sweeping early.
        env = Environment(scheduler="heap")
        pool = _make_pool(env)
        max_queue = [0]
        self._churn(env, pool, max_queue)
        assert pool.warm_reuses == self.CYCLES - 1
        # ~400 cancels happened; without compaction the heap would peak
        # near CYCLES entries.  With it, the peak stays around the
        # threshold plus the handful of live events.
        assert max_queue[0] <= 2 * env.timer_compaction_threshold + 8
        assert env.peek() == INF or env.peek() > env.now

    def test_tighter_threshold_means_tighter_bound(self):
        env = Environment(timer_compaction_threshold=8, scheduler="heap")
        pool = _make_pool(env)
        max_queue = [0]
        self._churn(env, pool, max_queue)
        assert pool.warm_reuses == self.CYCLES - 1
        assert max_queue[0] <= 2 * 8 + 8

    def test_churn_result_independent_of_threshold(self):
        """The knob is pure mechanism: simulated outcomes are identical
        whatever the sweep cadence."""
        finals = []
        for threshold in (1, 8, 64, 10_000):
            env = Environment(timer_compaction_threshold=threshold)
            pool = _make_pool(env)
            self._churn(env, pool, [0])
            finals.append(
                (env.now, pool.cold_starts, pool.warm_reuses)
            )
        assert len(set(finals)) == 1

"""Tests for the process-pool experiment harness (``repro.parallel``)."""

import pytest

import repro.parallel as parallel_mod
from repro.parallel import ParallelRunner, derive_seed, resolve_jobs
from repro.runner import run_trials
from repro.experiments import fig12_bandwidth_sweep, fig13_tail_latency

MB = 1024 * 1024


# Task functions must be module-level so the pool can pickle them.
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("task three exploded")
    return x


def _add(a, b):
    return a + b


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(13, "genome", 25.0, 4.0) == derive_seed(
            13, "genome", 25.0, 4.0
        )

    def test_pinned_value_is_stable_across_interpreters(self):
        # sha256 over repr of primitives: immune to PYTHONHASHSEED and
        # process boundaries.  Pin one value so any change to the
        # derivation (which would silently break serial/parallel
        # equality of recorded results) fails loudly.
        assert derive_seed(13, "trial", 0) == 3116808528567431905

    def test_distinct_keys_give_distinct_seeds(self):
        seeds = {
            derive_seed(13, name, rate)
            for name in ("genome", "video", "cycles")
            for rate in (2.0, 4.0, 6.0)
        }
        assert len(seeds) == 9

    def test_base_seed_matters(self):
        assert derive_seed(13, "x") != derive_seed(14, "x")

    def test_fits_in_63_bits(self):
        seed = derive_seed(13, "anything")
        assert 0 <= seed < 2**63


class TestResolveJobs:
    def test_one_is_one(self):
        assert resolve_jobs(1) == 1

    def test_none_and_zero_mean_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_jobs(None) == cores
        assert resolve_jobs(0) == cores

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestParallelRunnerMap:
    def test_serial_preserves_task_order(self):
        assert ParallelRunner(jobs=1).map(_square, range(8)) == [
            x * x for x in range(8)
        ]

    def test_pool_results_match_serial_in_order(self):
        tasks = list(range(10))
        serial = ParallelRunner(jobs=1).map(_square, tasks)
        pooled = ParallelRunner(jobs=2).map(_square, tasks)
        assert pooled == serial

    def test_single_task_skips_the_pool(self):
        # workers = min(jobs, len(tasks)) <= 1 stays in-process: a
        # locally-defined (unpicklable) fn must still work.
        assert ParallelRunner(jobs=4).map(lambda x: x + 1, [41]) == [42]

    def test_empty_task_list(self):
        assert ParallelRunner(jobs=4).map(_square, []) == []

    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="task three"):
            ParallelRunner(jobs=1).map(_fail_on_three, [1, 2, 3, 4])

    def test_task_exception_propagates_pooled(self):
        # A *task* error is never swallowed by the serial fallback...
        with pytest.raises(ValueError, match="task three"):
            ParallelRunner(jobs=2).map(_fail_on_three, [1, 2, 3, 4])

    def test_starmap_unpacks_positional_args(self):
        assert ParallelRunner(jobs=2).starmap(_add, [(1, 2), (3, 4)]) == [3, 7]


class TestPoolFallback:
    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        # ...but an *infrastructure* error (fork forbidden, fd
        # exhaustion) degrades to the identical in-process path.
        def broken_pool(*args, **kwargs):
            raise OSError("fork unavailable")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", broken_pool)
        assert ParallelRunner(jobs=2).map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_fallback_can_be_disabled(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("fork unavailable")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", broken_pool)
        with pytest.raises(OSError):
            ParallelRunner(jobs=2, fallback_serial=False).map(
                _square, [1, 2, 3]
            )


class TestSerialParallelEquality:
    """The ISSUE's core acceptance: parallel mode is byte-identical to
    serial mode for the sweep experiments."""

    def test_fig12_rows_identical(self):
        kwargs = dict(
            invocations=4,
            benchmarks=("genome",),
            bandwidths=(25 * MB,),
            rates=(2.0, 6.0),
        )
        serial = fig12_bandwidth_sweep.run(jobs=1, **kwargs)
        pooled = fig12_bandwidth_sweep.run(jobs=2, **kwargs)
        assert serial.rows == pooled.rows
        assert serial.data == pooled.data
        assert serial.notes == pooled.notes

    def test_fig13_rows_identical(self):
        kwargs = dict(invocations=5, benchmarks=["genome", "word-count"])
        serial = fig13_tail_latency.run(jobs=1, **kwargs)
        pooled = fig13_tail_latency.run(jobs=2, **kwargs)
        assert serial.rows == pooled.rows
        assert serial.data == pooled.data

    def test_run_trials_identical_and_trial_seeds_differ(self):
        kwargs = dict(
            trials=2,
            invocations=2,
            workers=3,
            feedback=False,
            ship_data=False,
        )
        serial = run_trials("genome", jobs=1, **kwargs)
        pooled = run_trials("genome", jobs=2, **kwargs)
        assert serial == pooled
        assert all(s["workflow"] == "genome" for s in serial)

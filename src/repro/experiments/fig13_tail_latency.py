"""Fig. 13 — 99%-ile end-to-end latency at 50 MB/s, 6 invocations/min.

Open-loop load (§5.4): invocations arrive whether or not earlier ones
finished, exposing queueing, cold starts, and storage-NIC contention.
Invocations that exceed 60 s are marked timed-out and counted at 60 s.
The paper observes Gen and Cyc timing out under HyperFlow-serverless at
this bandwidth while FaaSFlow-FaaStore keeps them under the cap, and an
average 23.3 % tail reduction for the other six benchmarks.
"""

from __future__ import annotations

from ..clients import run_open_loop
from ..workloads import ALL_BENCHMARKS, BENCHMARKS, build
from .common import (
    ExperimentResult,
    MB,
    ParallelRunner,
    deploy_with_feedback,
    derive_seed,
    make_cluster,
    make_dataflow,
    make_faasflow,
    make_hyperflow,
    register_hyperflow,
)

__all__ = ["run"]


def _p99(system, name: str) -> float:
    return system.metrics.tail_latency(name, q=99)


def _benchmark_cell(task: tuple) -> tuple[float, int, float, int, float, int]:
    """All three systems on one benchmark — independent, pool-shippable."""
    name, invocations, rate_per_minute, bandwidth, seed = task
    cluster_m = make_cluster(storage_bandwidth=bandwidth)
    hyper = make_hyperflow(cluster_m, ship_data=True)
    dag_m = build(name)
    register_hyperflow(hyper, dag_m)
    run_open_loop(hyper, name, invocations, rate_per_minute, seed=seed)
    hyper_p99 = _p99(hyper, name)
    hyper_timeouts = len(hyper.metrics.timeouts(name))

    cluster_w = make_cluster(storage_bandwidth=bandwidth)
    faasflow, scheduler = make_faasflow(cluster_w, ship_data=True)
    dag_w = build(name)
    deploy_with_feedback(faasflow, scheduler, dag_w, warmup_invocations=1)
    faasflow.metrics.clear()
    run_open_loop(faasflow, name, invocations, rate_per_minute, seed=seed)
    faas_p99 = _p99(faasflow, name)
    faas_timeouts = len(faasflow.metrics.timeouts(name))

    cluster_d = make_cluster(storage_bandwidth=bandwidth)
    dataflow, d_scheduler = make_dataflow(cluster_d, ship_data=True)
    dag_d = build(name)
    deploy_with_feedback(dataflow, d_scheduler, dag_d, warmup_invocations=1)
    dataflow.metrics.clear()
    run_open_loop(dataflow, name, invocations, rate_per_minute, seed=seed)
    dataflow_p99 = _p99(dataflow, name)
    dataflow_timeouts = len(dataflow.metrics.timeouts(name))
    return (
        hyper_p99, hyper_timeouts, faas_p99, faas_timeouts,
        dataflow_p99, dataflow_timeouts,
    )


def run(
    invocations: int = 40,
    rate_per_minute: float = 6.0,
    bandwidth: float = 50 * MB,
    benchmarks: list[str] | None = None,
    jobs: int = 1,
    seed: int = 13,
) -> ExperimentResult:
    names = benchmarks or ALL_BENCHMARKS
    tasks = [
        (
            name,
            invocations,
            rate_per_minute,
            bandwidth,
            derive_seed(seed, name, bandwidth / MB, rate_per_minute),
        )
        for name in names
    ]
    results = ParallelRunner(jobs).map(_benchmark_cell, tasks)
    rows = []
    dataflow_vs_faas = []
    for name, (
        hyper_p99, hyper_timeouts, faas_p99, faas_timeouts,
        dataflow_p99, dataflow_timeouts,
    ) in zip(names, results):
        reduction = 100 * (1 - faas_p99 / hyper_p99) if hyper_p99 else 0.0
        if faas_p99:
            dataflow_vs_faas.append(dataflow_p99 / faas_p99)
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                round(hyper_p99, 2),
                hyper_timeouts,
                round(faas_p99, 2),
                faas_timeouts,
                round(dataflow_p99, 2),
                dataflow_timeouts,
                f"{reduction:.0f}%",
            ]
        )
    notes = [
        "paper: Gen and Cyc hit the 60 s timeout under HyperFlow-serverless; "
        "FaaSFlow-FaaStore reduces the other benchmarks' p99 by 23.3% on "
        "average and Cyc/Gen by 75.2%",
    ]
    if dataflow_vs_faas:
        geomean = 1.0
        for ratio in dataflow_vs_faas:
            geomean *= ratio
        geomean **= 1.0 / len(dataflow_vs_faas)
        notes.append(
            f"DataflowSP p99 is {geomean:.2f}x of FaaSFlow-FaaStore "
            "(geomean): function-level triggering + eager shipping "
            "overlaps transfer with compute"
        )
    return ExperimentResult(
        experiment="fig13",
        title=(
            f"p99 e2e latency, open loop {rate_per_minute}/min @ "
            f"{bandwidth / MB:.0f} MB/s"
        ),
        headers=[
            "benchmark",
            "HyperFlow p99 (s)",
            "timeouts",
            "FaaSFlow p99 (s)",
            "timeouts",
            "DataflowSP p99 (s)",
            "timeouts",
            "reduction",
        ],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

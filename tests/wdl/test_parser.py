"""Unit tests for the WDL parser (YAML -> DAG lowering)."""

import pytest

from repro.wdl import WDLError, parse_workflow

MB = 1024.0 * 1024.0

SIMPLE = """
name: simple
steps:
  - task: f1
    service_time: 200ms
    output_size: 2MB
  - task: f2
    service_time: 0.3
"""

PARALLEL = """
name: par
steps:
  - task: head
    output_size: 1MB
  - parallel: split
    branches:
      - - task: left
          output_size: 2MB
      - - task: right
          output_size: 3MB
  - task: tail
"""

SWITCH = """
name: sw
steps:
  - task: head
    output_size: 1MB
  - switch: route
    cases:
      - condition: "lang == 'en'"
        steps:
          - task: english
      - condition: default
        steps:
          - task: other
"""

FOREACH = """
name: fe
steps:
  - task: split
    output_size: 8MB
  - foreach: mapper
    items: 4
    steps:
      - task: work
        output_size: 4MB
  - task: merge
"""

NESTED = """
name: nested
defaults:
  service_time: 50ms
  memory: 32MB
steps:
  - task: start
    output_size: 1MB
  - parallel: outer
    branches:
      - - parallel: inner
          branches:
            - - task: a
            - - task: b
      - - task: c
  - task: finish
"""


class TestSequence:
    def test_chain_structure(self):
        dag = parse_workflow(SIMPLE)
        assert dag.name == "simple"
        assert dag.node_names == ["f1", "f2"]
        assert dag.has_edge("f1", "f2")

    def test_attributes_parsed(self):
        dag = parse_workflow(SIMPLE)
        f1 = dag.node("f1")
        assert f1.service_time == pytest.approx(0.2)
        assert f1.output_size == pytest.approx(2 * MB)
        assert dag.node("f2").service_time == pytest.approx(0.3)

    def test_edge_carries_producer_output(self):
        dag = parse_workflow(SIMPLE)
        assert dag.edge("f1", "f2").data_size == pytest.approx(2 * MB)

    def test_defaults_applied(self):
        dag = parse_workflow(NESTED)
        assert dag.node("a").service_time == pytest.approx(0.05)
        assert dag.node("a").memory == pytest.approx(32 * MB)


class TestParallel:
    def test_virtual_nodes_bracket_step(self):
        dag = parse_workflow(PARALLEL)
        assert dag.node("split.start").is_virtual
        assert dag.node("split.end").is_virtual
        assert dag.has_edge("head", "split.start")
        assert dag.has_edge("split.start", "left")
        assert dag.has_edge("split.start", "right")
        assert dag.has_edge("left", "split.end")
        assert dag.has_edge("right", "split.end")
        assert dag.has_edge("split.end", "tail")

    def test_virtual_forwarding_sizes(self):
        dag = parse_workflow(PARALLEL)
        # head's 1 MB forwards through split.start to each branch.
        assert dag.edge("split.start", "left").data_size == pytest.approx(1 * MB)
        # Both branch outputs aggregate at split.end -> tail.
        assert dag.edge("split.end", "tail").data_size == pytest.approx(5 * MB)

    def test_data_dependencies_through_virtuals(self):
        dag = parse_workflow(PARALLEL)
        assert dag.data_dependencies("left") == [("head", 1 * MB)]
        deps = dict(dag.data_dependencies("tail"))
        assert deps == {"left": 2 * MB, "right": 3 * MB}

    def test_single_branch_rejected(self):
        bad = """
name: bad
steps:
  - parallel: p
    branches:
      - - task: only
"""
        with pytest.raises(WDLError):
            parse_workflow(bad)


class TestSwitch:
    def test_switch_lowered_like_parallel(self):
        dag = parse_workflow(SWITCH)
        assert dag.has_edge("route.start", "english")
        assert dag.has_edge("route.start", "other")
        assert dag.node("route.start").step_type == "switch"

    def test_conditions_preserved(self):
        dag = parse_workflow(SWITCH)
        assert dag.node("route.start").metadata["conditions"] == [
            "lang == 'en'",
            "default",
        ]

    def test_case_requires_condition(self):
        bad = """
name: bad
steps:
  - switch: s
    cases:
      - steps:
          - task: x
"""
        with pytest.raises(WDLError):
            parse_workflow(bad)


class TestForeach:
    def test_body_gets_map_factor(self):
        dag = parse_workflow(FOREACH)
        work = dag.node("work")
        assert work.map_factor == 4.0
        assert work.step_type == "foreach"

    def test_items_validation(self):
        bad = FOREACH.replace("items: 4", "items: 0")
        with pytest.raises(WDLError):
            parse_workflow(bad)
        bad = FOREACH.replace("items: 4", "items: lots")
        with pytest.raises(WDLError):
            parse_workflow(bad)

    def test_nested_fanout_in_foreach_rejected(self):
        bad = """
name: bad
steps:
  - foreach: fe
    items: 2
    steps:
      - parallel: p
        branches:
          - - task: a
          - - task: b
"""
        with pytest.raises(WDLError):
            parse_workflow(bad)

    def test_virtual_brackets(self):
        dag = parse_workflow(FOREACH)
        assert dag.has_edge("split", "mapper.start")
        assert dag.has_edge("mapper.end", "merge")


class TestNesting:
    def test_nested_parallel_builds(self):
        dag = parse_workflow(NESTED)
        dag.validate()
        assert dag.has_edge("outer.start", "inner.start")
        assert dag.has_edge("inner.end", "outer.end")
        assert dag.has_edge("outer.start", "c")
        deps = dict(dag.data_dependencies("a"))
        assert deps == {"start": 1 * MB}


class TestValidation:
    def test_missing_name_rejected(self):
        with pytest.raises(WDLError):
            parse_workflow("steps:\n  - task: f\n")

    def test_missing_steps_rejected(self):
        with pytest.raises(WDLError):
            parse_workflow("name: x\n")

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(WDLError):
            parse_workflow("name: x\nsteps:\n  - task: f\nbogus: 1\n")

    def test_unknown_task_key_rejected(self):
        bad = """
name: x
steps:
  - task: f
    cpu_quota: 2
"""
        with pytest.raises(WDLError):
            parse_workflow(bad)

    def test_duplicate_step_names_rejected(self):
        bad = """
name: x
steps:
  - task: f
  - task: f
"""
        with pytest.raises(WDLError):
            parse_workflow(bad)

    def test_step_with_two_kinds_rejected(self):
        bad = """
name: x
steps:
  - task: f
    foreach: g
    items: 2
    steps:
      - task: h
"""
        with pytest.raises(WDLError):
            parse_workflow(bad)

    def test_invalid_yaml_rejected(self):
        with pytest.raises(WDLError):
            parse_workflow("name: [unclosed")

    def test_non_mapping_document_rejected(self):
        with pytest.raises(WDLError):
            parse_workflow("- just\n- a list\n")

    def test_parsed_dag_validates(self):
        for text in (SIMPLE, PARALLEL, SWITCH, FOREACH, NESTED):
            parse_workflow(text).validate()

"""Unit and property tests for the workflow DAG structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import DAGError, FunctionNode, WorkflowDAG

MB = 1024.0 * 1024.0


def diamond():
    """a -> (b, c) -> d."""
    dag = WorkflowDAG("diamond")
    dag.add_function("a", output_size=1 * MB)
    dag.add_function("b", output_size=2 * MB)
    dag.add_function("c", output_size=3 * MB)
    dag.add_function("d")
    dag.add_edge("a", "b", data_size=1 * MB)
    dag.add_edge("a", "c", data_size=1 * MB)
    dag.add_edge("b", "d", data_size=2 * MB)
    dag.add_edge("c", "d", data_size=3 * MB)
    return dag


class TestConstruction:
    def test_duplicate_node_rejected(self):
        dag = WorkflowDAG("w")
        dag.add_function("a")
        with pytest.raises(DAGError):
            dag.add_function("a")

    def test_edge_to_unknown_node_rejected(self):
        dag = WorkflowDAG("w")
        dag.add_function("a")
        with pytest.raises(DAGError):
            dag.add_edge("a", "ghost")

    def test_self_loop_rejected(self):
        dag = WorkflowDAG("w")
        dag.add_function("a")
        with pytest.raises(DAGError):
            dag.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        dag = diamond()
        with pytest.raises(DAGError):
            dag.add_edge("a", "b")

    def test_cycle_rejected_and_rolled_back(self):
        dag = WorkflowDAG("w")
        for n in "abc":
            dag.add_function(n)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        with pytest.raises(DAGError):
            dag.add_edge("c", "a")
        # Rollback: the failed edge must not linger.
        assert not dag.has_edge("c", "a")
        assert dag.successors("c") == []
        dag.validate()

    def test_empty_name_rejected(self):
        with pytest.raises(DAGError):
            WorkflowDAG("")
        with pytest.raises(DAGError):
            FunctionNode(name="")

    def test_negative_attributes_rejected(self):
        with pytest.raises(DAGError):
            FunctionNode(name="x", service_time=-1)
        with pytest.raises(DAGError):
            FunctionNode(name="x", memory=-1)
        with pytest.raises(DAGError):
            FunctionNode(name="x", output_size=-1)


class TestTopology:
    def test_sources_and_sinks(self):
        dag = diamond()
        assert dag.sources() == ["a"]
        assert dag.sinks() == ["d"]

    def test_topological_order_respects_edges(self):
        dag = diamond()
        order = dag.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for edge in dag.edges:
            assert position[edge.src] < position[edge.dst]

    def test_successors_predecessors(self):
        dag = diamond()
        assert set(dag.successors("a")) == {"b", "c"}
        assert set(dag.predecessors("d")) == {"b", "c"}

    def test_validate_empty_rejected(self):
        with pytest.raises(DAGError):
            WorkflowDAG("w").validate()

    def test_subgraph_induces_edges(self):
        dag = diamond()
        sub = dag.subgraph(["a", "b", "d"])
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_node("c")

    def test_subgraph_unknown_node_rejected(self):
        with pytest.raises(DAGError):
            diamond().subgraph(["a", "nope"])

    def test_copy_is_deep_for_structure(self):
        dag = diamond()
        clone = dag.copy()
        clone.add_function("e")
        clone.add_edge("d", "e")
        assert not dag.has_node("e")
        assert clone.node("a").output_size == dag.node("a").output_size


class TestDataPlane:
    def test_total_data_size(self):
        assert diamond().total_data_size == pytest.approx(7 * MB)

    def test_data_dependencies_direct(self):
        dag = diamond()
        deps = dag.data_dependencies("d")
        assert sorted(deps) == [("b", 2 * MB), ("c", 3 * MB)]

    def test_data_dependencies_resolve_through_virtual(self):
        dag = WorkflowDAG("w")
        dag.add_function("a", output_size=5 * MB)
        dag.add_node(FunctionNode(name="v", is_virtual=True, service_time=0))
        dag.add_function("b")
        dag.add_edge("a", "v", data_size=5 * MB)
        dag.add_edge("v", "b", data_size=5 * MB)
        assert dag.data_dependencies("b") == [("a", 5 * MB)]

    def test_data_consumers_resolve_through_virtual(self):
        dag = WorkflowDAG("w")
        dag.add_function("a", output_size=5 * MB)
        dag.add_node(FunctionNode(name="v", is_virtual=True, service_time=0))
        dag.add_function("b")
        dag.add_function("c")
        dag.add_edge("a", "v")
        dag.add_edge("v", "b")
        dag.add_edge("v", "c")
        assert set(dag.data_consumers("a")) == {"b", "c"}

    def test_effective_instances(self):
        node = FunctionNode(name="f", scale=3.0, map_factor=4.0)
        assert node.effective_instances == 12.0
        virtual = FunctionNode(name="v", is_virtual=True)
        assert virtual.effective_instances == 0.0


@st.composite
def random_dag(draw):
    """Random DAG: edges only from lower to higher index (acyclic)."""
    n = draw(st.integers(min_value=1, max_value=12))
    dag = WorkflowDAG("random")
    for i in range(n):
        dag.add_function(
            f"f{i}",
            service_time=draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            ),
            output_size=draw(st.floats(min_value=0.0, max_value=10 * MB)),
        )
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                dag.add_edge(f"f{i}", f"f{j}", data_size=dag.node(f"f{i}").output_size)
    return dag


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_dag())
    def test_topological_order_is_valid(self, dag):
        order = dag.topological_order()
        assert sorted(order) == sorted(dag.node_names)
        position = {name: i for i, name in enumerate(order)}
        for edge in dag.edges:
            assert position[edge.src] < position[edge.dst]

    @settings(max_examples=50, deadline=None)
    @given(random_dag())
    def test_copy_preserves_structure(self, dag):
        clone = dag.copy()
        assert sorted(clone.node_names) == sorted(dag.node_names)
        assert sorted(e.key for e in clone.edges) == sorted(
            e.key for e in dag.edges
        )
        assert clone.total_data_size == pytest.approx(dag.total_data_size)

    @settings(max_examples=50, deadline=None)
    @given(random_dag())
    def test_degree_sum_equals_edge_count(self, dag):
        out_degree = sum(len(dag.successors(n)) for n in dag.node_names)
        in_degree = sum(len(dag.predecessors(n)) for n in dag.node_names)
        assert out_degree == in_degree == len(dag.edges)

"""Unit tests for CPU/memory accounting and usage sampling."""

import pytest

from repro.sim.kernel import Environment, SimulationError
from repro.sim.resources import (
    CPUAllocator,
    MemoryAccount,
    OutOfMemoryError,
    UsageSampler,
)

MB = 1024.0 * 1024.0


@pytest.fixture
def env():
    return Environment()


class TestUsageSampler:
    def test_average_of_constant_signal(self, env):
        sampler = UsageSampler(env, initial=4.0)
        env.run(until=10.0)
        assert sampler.average() == pytest.approx(4.0)

    def test_average_of_step_signal(self, env):
        sampler = UsageSampler(env)

        def step(env, sampler):
            yield env.timeout(5.0)
            sampler.set(10.0)

        env.process(step(env, sampler))
        env.run(until=10.0)
        # 5 s at 0 + 5 s at 10 -> average 5.
        assert sampler.average() == pytest.approx(5.0)

    def test_average_since_midpoint(self, env):
        sampler = UsageSampler(env)

        def step(env, sampler):
            yield env.timeout(5.0)
            sampler.set(10.0)

        env.process(step(env, sampler))
        env.run(until=10.0)
        assert sampler.average(since=5.0) == pytest.approx(10.0)

    def test_peak_tracks_maximum(self, env):
        sampler = UsageSampler(env)
        sampler.set(3.0)
        sampler.set(8.0)
        sampler.set(2.0)
        assert sampler.peak == 8.0

    def test_add_accumulates(self, env):
        sampler = UsageSampler(env)
        sampler.add(2.0)
        sampler.add(3.0)
        assert sampler.value == 5.0


class TestCPUAllocator:
    def test_busy_count(self, env):
        cpu = CPUAllocator(env, cores=4)
        req = cpu.request(2)
        env.run()
        assert cpu.busy == 2
        cpu.release(req)
        assert cpu.busy == 0

    def test_contention_queues(self, env):
        cpu = CPUAllocator(env, cores=1)
        done = []

        def job(env, cpu, name):
            req = cpu.request()
            yield req
            yield env.timeout(2.0)
            cpu.release(req)
            done.append((name, env.now))

        env.process(job(env, cpu, "a"))
        env.process(job(env, cpu, "b"))
        env.run()
        assert done == [("a", 2.0), ("b", 4.0)]

    def test_average_usage_integrates(self, env):
        cpu = CPUAllocator(env, cores=4)

        def job(env, cpu):
            req = cpu.request(4)
            yield req
            yield env.timeout(5.0)
            cpu.release(req)

        env.process(job(env, cpu))
        env.run(until=10.0)
        assert cpu.average_usage() == pytest.approx(2.0)

    def test_core_validation(self, env):
        with pytest.raises(SimulationError):
            CPUAllocator(env, cores=0)


class TestMemoryAccount:
    def test_reserve_and_free(self, env):
        mem = MemoryAccount(env, capacity=1024 * MB)
        handle = mem.reserve(256 * MB, tag="container")
        assert mem.reserved == 256 * MB
        assert mem.available == 768 * MB
        mem.free(handle)
        assert mem.reserved == 0

    def test_overcommit_raises(self, env):
        mem = MemoryAccount(env, capacity=100 * MB)
        mem.reserve(80 * MB)
        with pytest.raises(OutOfMemoryError):
            mem.reserve(30 * MB)

    def test_resize_shrink_then_grow(self, env):
        mem = MemoryAccount(env, capacity=100 * MB)
        handle = mem.reserve(80 * MB)
        mem.resize(handle, 40 * MB)
        assert mem.reserved == pytest.approx(40 * MB)
        mem.resize(handle, 90 * MB)
        assert mem.reserved == pytest.approx(90 * MB)

    def test_resize_overcommit_raises(self, env):
        mem = MemoryAccount(env, capacity=100 * MB)
        handle = mem.reserve(50 * MB)
        mem.reserve(40 * MB)
        with pytest.raises(OutOfMemoryError):
            mem.resize(handle, 70 * MB)

    def test_unknown_handle_raises(self, env):
        mem = MemoryAccount(env, capacity=100 * MB)
        with pytest.raises(SimulationError):
            mem.free(123)
        with pytest.raises(SimulationError):
            mem.resize(99, 10 * MB)

    def test_double_free_raises(self, env):
        mem = MemoryAccount(env, capacity=100 * MB)
        handle = mem.reserve(10 * MB)
        mem.free(handle)
        with pytest.raises(SimulationError):
            mem.free(handle)

    def test_reserved_by_tag(self, env):
        mem = MemoryAccount(env, capacity=1024 * MB)
        mem.reserve(256 * MB, tag="container")
        mem.reserve(256 * MB, tag="container")
        mem.reserve(100 * MB, tag="faastore-pool")
        assert mem.reserved_by_tag("container") == pytest.approx(512 * MB)
        assert mem.reserved_by_tag("faastore-pool") == pytest.approx(100 * MB)

    def test_negative_reservation_rejected(self, env):
        mem = MemoryAccount(env, capacity=100 * MB)
        with pytest.raises(SimulationError):
            mem.reserve(-1)

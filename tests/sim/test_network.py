"""Unit and property tests for the max-min fair fluid network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.network import KB, MB, Network, NetworkConfig, SimulationError


def make_net(latency=0.0, threshold=0.0):
    env = Environment()
    net = Network(env, NetworkConfig(latency=latency, message_threshold=threshold))
    return env, net


class TestSingleTransfer:
    def test_duration_matches_bandwidth(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        done = net.transfer(a, b, 10 * MB)
        env.run(until=done)
        assert env.now == pytest.approx(1.0, rel=1e-6)

    def test_slower_nic_is_bottleneck(self):
        env, net = make_net()
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 10 * MB)
        done = net.transfer(a, b, 10 * MB)
        env.run(until=done)
        assert env.now == pytest.approx(1.0, rel=1e-6)

    def test_latency_added(self):
        env, net = make_net(latency=0.01)
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        done = net.transfer(a, b, 10 * MB)
        env.run(until=done)
        # tail latency after the last byte
        assert env.now == pytest.approx(1.01, rel=1e-4)

    def test_local_transfer_is_memcpy_speed(self):
        env, net = make_net(latency=0.01)
        a = net.attach("a", 10 * MB)
        done = net.transfer(a, a, 100 * MB)
        env.run(until=done)
        assert env.now < 0.1  # far faster than the NIC

    def test_zero_byte_transfer_completes(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        done = net.transfer(a, b, 0)
        env.run(until=done)
        assert done.processed

    def test_negative_size_rejected(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        with pytest.raises(SimulationError):
            net.transfer(a, b, -1)

    def test_duplicate_nic_name_rejected(self):
        _, net = make_net()
        net.attach("a", 10 * MB)
        with pytest.raises(SimulationError):
            net.attach("a", 10 * MB)


class TestFairSharing:
    def test_two_flows_share_common_destination(self):
        """Two senders into one 10 MB/s NIC each get 5 MB/s."""
        env, net = make_net()
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 100 * MB)
        c = net.attach("c", 10 * MB)
        d1 = net.transfer(a, c, 10 * MB)
        d2 = net.transfer(b, c, 10 * MB)
        env.run(until=env.all_of([d1, d2]))
        assert env.now == pytest.approx(2.0, rel=1e-6)

    def test_flow_speeds_up_when_competitor_finishes(self):
        """10 MB and 30 MB sharing 10 MB/s: short one done at 2 s,
        long one gets full bandwidth afterwards -> done at 4 s."""
        env, net = make_net()
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 100 * MB)
        c = net.attach("c", 10 * MB)
        short = net.transfer(a, c, 10 * MB)
        long = net.transfer(b, c, 30 * MB)
        env.run(until=short)
        t_short = env.now
        env.run(until=long)
        t_long = env.now
        assert t_short == pytest.approx(2.0, rel=1e-5)
        assert t_long == pytest.approx(4.0, rel=1e-5)

    def test_unrelated_flows_do_not_interfere(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        c = net.attach("c", 10 * MB)
        d = net.attach("d", 10 * MB)
        f1 = net.transfer(a, b, 10 * MB)
        f2 = net.transfer(c, d, 10 * MB)
        env.run(until=env.all_of([f1, f2]))
        assert env.now == pytest.approx(1.0, rel=1e-6)

    def test_late_arrival_slows_existing_flow(self):
        """Flow of 20 MB at 10 MB/s; at t=1 a second flow joins.
        First flow: 10 MB done + 10 MB at 5 MB/s -> finishes at t=3."""
        env, net = make_net()
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 100 * MB)
        c = net.attach("c", 10 * MB)
        first = net.transfer(a, c, 20 * MB)
        log = {}

        def late(env, net):
            yield env.timeout(1.0)
            second = net.transfer(b, c, 20 * MB)
            yield second
            log["second"] = env.now

        env.process(late(env, net))
        env.run(until=first)
        assert env.now == pytest.approx(3.0, rel=1e-5)
        env.run()
        # Second flow: 10 MB at 5 MB/s (t=1..3) + 10 MB at 10 MB/s -> t=4.
        assert log["second"] == pytest.approx(4.0, rel=1e-5)

    def test_egress_bottleneck(self):
        """One sender fanning out to two receivers splits its egress."""
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 100 * MB)
        c = net.attach("c", 100 * MB)
        d1 = net.transfer(a, b, 10 * MB)
        d2 = net.transfer(a, c, 10 * MB)
        env.run(until=env.all_of([d1, d2]))
        assert env.now == pytest.approx(2.0, rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=0.5 * MB, max_value=50 * MB),
            min_size=1,
            max_size=6,
        )
    )
    def test_total_time_bounded_by_serialization(self, sizes):
        """N concurrent flows into one link finish no later than strictly
        serial transfers would, and no earlier than the link allows."""
        env, net = make_net()
        dst = net.attach("dst", 10 * MB)
        events = []
        for i, size in enumerate(sizes):
            src = net.attach(f"src-{i}", 100 * MB)
            events.append(net.transfer(src, dst, size))
        env.run(until=env.all_of(events))
        lower = sum(sizes) / (10 * MB)
        assert env.now == pytest.approx(lower, rel=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=0.5 * MB, max_value=50 * MB),
            min_size=2,
            max_size=5,
        )
    )
    def test_conservation_of_bytes(self, sizes):
        env, net = make_net()
        dst = net.attach("dst", 10 * MB)
        events = []
        for i, size in enumerate(sizes):
            src = net.attach(f"src-{i}", 100 * MB)
            events.append(net.transfer(src, dst, size))
        env.run(until=env.all_of(events))
        assert net.total_bytes == pytest.approx(sum(sizes), rel=1e-9)
        assert dst.bytes_received == pytest.approx(sum(sizes), rel=1e-9)


class TestMessages:
    def test_message_cost_is_latency_dominated(self):
        env, net = make_net(latency=0.001)
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        done = net.message(a, b, 1 * KB)
        env.run(until=done)
        assert env.now == pytest.approx(0.001 + KB / (10 * MB), rel=1e-6)

    def test_messages_do_not_enter_flow_machinery(self):
        env, net = make_net(latency=0.001)
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        net.message(a, b, 1 * KB)
        assert net.active_flow_count == 0

    def test_small_transfer_takes_message_path(self):
        env = Environment()
        net = Network(env, NetworkConfig(message_threshold=64 * KB))
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        net.transfer(a, b, 10 * KB)
        assert net.active_flow_count == 0

    def test_loopback_message_is_fast(self):
        env, net = make_net(latency=0.001)
        a = net.attach("a", 10 * MB)
        done = net.message(a, a, 1 * KB)
        env.run(until=done)
        assert env.now < 0.001


class TestRecords:
    def test_transfer_recorded(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        done = net.transfer(a, b, 5 * MB, tag="edge:f1->f2")
        env.run(until=done)
        assert len(net.records) == 1
        record = net.records[0]
        assert record.src == "a"
        assert record.dst == "b"
        assert record.size == 5 * MB
        assert record.tag == "edge:f1->f2"
        assert record.duration == pytest.approx(0.5, rel=1e-6)

    def test_bytes_between(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        env.run(until=net.transfer(a, b, 3 * MB))
        env.run(until=net.transfer(a, b, 4 * MB))
        assert net.bytes_between("a", "b") == pytest.approx(7 * MB)
        assert net.bytes_between("b", "a") == 0.0

    def test_set_bandwidth_reconfigures(self):
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        b.set_bandwidth(5 * MB)
        done = net.transfer(a, b, 10 * MB)
        env.run(until=done)
        assert env.now == pytest.approx(2.0, rel=1e-6)

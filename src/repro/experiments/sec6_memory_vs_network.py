"""§6 — implication: larger main memory beats a network upgrade.

The paper's second implication for serverless clouds: "Deploying
servers with larger main memory is more beneficial than upgrading the
network for serverless workflows."  With more memory, containers can be
provisioned with larger limits, Eq. 1 reclaims a bigger surplus, the
FaaStore quota grows, and more intermediate data stays node-local —
multiplying effective bandwidth instead of buying more of it.

The experiment takes the quota-starved Genome benchmark on FaaSFlow and
compares three clusters under the same open-loop load:

- **baseline** — 32 GB nodes, 256 MB containers, 50 MB/s storage NIC;
- **network upgrade** — same nodes, NIC doubled to 100 MB/s;
- **memory upgrade** — 64 GB nodes with 512 MB containers, NIC still
  50 MB/s.
"""

from __future__ import annotations

from ..clients import run_open_loop
from ..core import EngineConfig, FaaSFlowSystem, GraphScheduler
from ..sim import (
    Cluster,
    ClusterConfig,
    ContainerSpec,
    Environment,
    GB,
    MB,
    NodeConfig,
)
from ..workloads import genome
from .common import ExperimentResult
from ..clients import run_closed_loop

__all__ = ["run"]


def _measure(
    storage_bandwidth: float,
    node_memory: float,
    container_memory: float,
    invocations: int,
    rate: float,
):
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(
            workers=7,
            worker=NodeConfig(cores=8, memory=node_memory),
            storage_bandwidth=storage_bandwidth,
            container=ContainerSpec(memory_limit=container_memory),
        ),
    )
    system = FaaSFlowSystem(cluster, EngineConfig(ship_data=True))
    scheduler = GraphScheduler(cluster)
    dag = genome()
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    run_closed_loop(system, dag.name, 1)
    scheduler.absorb_feedback(dag, system.metrics)
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    system.metrics.clear()
    run_open_loop(system, dag.name, invocations, rate)
    return {
        "p99": system.metrics.tail_latency(dag.name, q=99),
        "mean": system.metrics.mean_latency(dag.name),
        "timeouts": len(system.metrics.timeouts(dag.name)),
        "local": system.metrics.local_fraction(dag.name),
        "quota_gb": sum(quotas.values()) / GB,
    }


def run(invocations: int = 25, rate: float = 4.0) -> ExperimentResult:
    configurations = [
        ("baseline (32GB, 50MB/s)", 50 * MB, 32 * GB, 256 * MB),
        ("network upgrade (32GB, 100MB/s)", 100 * MB, 32 * GB, 256 * MB),
        ("memory upgrade (64GB, 50MB/s)", 50 * MB, 64 * GB, 512 * MB),
    ]
    rows = []
    results = {}
    for label, bandwidth, node_memory, container_memory in configurations:
        stats = _measure(
            bandwidth, node_memory, container_memory, invocations, rate
        )
        results[label] = stats
        rows.append(
            [
                label,
                round(stats["p99"], 2),
                round(stats["mean"], 2),
                stats["timeouts"],
                f"{100 * stats['local']:.0f}%",
                round(stats["quota_gb"], 1),
            ]
        )
    baseline = results[configurations[0][0]]["p99"]
    network = results[configurations[1][0]]["p99"]
    memory = results[configurations[2][0]]["p99"]
    notes = [
        f"network upgrade cuts p99 by {100 * (1 - network / baseline):.0f}%, "
        f"memory upgrade by {100 * (1 - memory / baseline):.0f}% "
        "(paper: larger memory is the better investment)",
    ]
    return ExperimentResult(
        experiment="sec6",
        title="Upgrade paths for Genome under load: more memory vs more network",
        headers=[
            "configuration",
            "p99 (s)",
            "mean (s)",
            "timeouts",
            "local bytes",
            "FaaStore quota (GB)",
        ],
        rows=rows,
        notes=notes,
        data={"results": results},
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

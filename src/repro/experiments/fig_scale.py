"""fig_scale — cluster-scale throughput sweep of the fluid network model.

Not a figure from the paper: the paper's testbed stops at 8 nodes, while
related DAG engines (DFlow; Wukong, "In Search of a Fast and Efficient
Serverless DAG Engine") evaluate at hundreds of concurrent invocations.
This sweep drives the fluid network model alone — no engines, no
containers — across cluster sizes and concurrent-flow counts and reports
how fast the simulator itself processes flow events.  It is the
experiment-harness face of ``benchmarks/test_bench_network.py``, which
additionally A/B-compares against the frozen pre-optimization model.

The workload models FaaSFlow's locality structure: the cluster is
partitioned into worker groups of ``group_size`` nodes (one deployed
workflow per group, paper §4.1), each flow moves data between two nodes
of one group, and a configurable fraction of each group's traffic aims
at the group's first node — the per-workflow collector/storage hotspot
of the paper's Figs. 12-14 regime.  ``group_size >= nodes`` collapses
the partitioning and yields uniform all-to-all traffic, the worst case
for the incremental allocator (one connected component, no route
repetition).
"""

from __future__ import annotations

import random
import time

from ..sim import Environment, MB
from .common import ExperimentResult, ParallelRunner

__all__ = ["run", "drive_network", "DEFAULT_NODES", "DEFAULT_FLOWS"]

DEFAULT_NODES = (8, 32, 64, 128)
DEFAULT_FLOWS = (10, 100, 500, 1000)


def drive_network(
    network_module,
    nodes: int,
    flows: int,
    seed: int = 11,
    group_size: int = 8,
    hotspot_fraction: float = 0.3,
    bandwidth: float = 100 * MB,
    collect_records: bool = False,
) -> dict:
    """Run one sweep cell against ``network_module`` and time it.

    ``network_module`` is any module exposing the ``Network`` /
    ``NetworkConfig`` API — the live ``repro.sim.network`` or the frozen
    ``benchmarks/_seed_network.py`` baseline — so the same byte-exact
    workload drives both sides of an A/B comparison.
    """
    rng = random.Random(seed)
    # Pre-generate the arrival plan so RNG consumption stays identical
    # no matter which module executes it.
    window = max(0.25, flows / 400.0)  # arrival burst, simulated seconds
    group_size = min(group_size, nodes)
    groups = [
        range(base, min(base + group_size, nodes))
        for base in range(0, nodes, group_size)
    ]
    plan = []
    for _ in range(flows):
        group = groups[rng.randrange(len(groups))]
        src, dst = rng.sample(group, 2)
        if rng.random() < hotspot_fraction and src != group[0]:
            dst = group[0]
        size = rng.uniform(4.0, 40.0) * MB
        gap = rng.uniform(0.0, window / flows)
        plan.append((gap, src, dst, size))

    env = Environment()
    net = network_module.Network(env, network_module.NetworkConfig())
    nics = [net.attach(f"n{i}", bandwidth) for i in range(nodes)]

    def starter(env):
        for gap, src, dst, size in plan:
            yield env.timeout(gap)
            net.transfer(nics[src], nics[dst], size)

    start = time.perf_counter()
    env.process(starter(env))
    env.run()
    wall = time.perf_counter() - start
    events = 2 * flows  # one arrival + one completion rebalance each
    out = {
        "nodes": nodes,
        "flows": flows,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else float("inf"),
        "sim_makespan": env.now,
    }
    if collect_records:
        out["records"] = [
            (r.src, r.dst, r.size, r.started_at, r.finished_at, r.kind, r.tag)
            for r in net.records
        ]
    return out


def _cell(task: tuple) -> dict:
    """One sweep cell against the live network model (pool-shippable)."""
    nodes, flows, seed = task
    from ..sim import network as live

    return drive_network(live, nodes, flows, seed=seed)


def run(
    nodes: tuple[int, ...] = DEFAULT_NODES,
    flows: tuple[int, ...] = DEFAULT_FLOWS,
    seed: int = 11,
    jobs: int = 1,
) -> ExperimentResult:
    cells = [
        (n, f, seed + index)
        for index, (n, f) in enumerate(
            (n, f) for n in nodes for f in flows
        )
    ]
    results = ParallelRunner(jobs).map(_cell, cells)
    rows = []
    for stats in results:
        rows.append(
            [
                stats["nodes"],
                stats["flows"],
                round(stats["wall_seconds"] * 1000, 2),
                round(stats["events_per_sec"]),
                round(stats["sim_makespan"], 3),
            ]
        )
    return ExperimentResult(
        experiment="fig_scale",
        title="Fluid network model throughput vs cluster size x concurrent flows",
        headers=[
            "nodes",
            "flows",
            "wall (ms)",
            "events/sec",
            "sim makespan (s)",
        ],
        rows=rows,
        notes=[
            "events/sec = flow arrivals + completions over real wall time; "
            "simulated results are wall-time independent",
            "A/B speedup vs the frozen pre-optimization model lives in "
            "BENCH_network.json (benchmarks/test_bench_network.py)",
        ],
        data={"cells": list(results)},
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

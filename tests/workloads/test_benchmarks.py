"""Unit tests for the 8 benchmark workloads."""

import pytest

from repro.workloads import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    REAL_WORLD,
    SCIENTIFIC,
    build,
    build_all,
    genome,
)

MB = 1024.0 * 1024.0


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 8
        assert len(SCIENTIFIC) == 4
        assert len(REAL_WORLD) == 4

    def test_build_by_name_and_abbrev(self):
        assert build("cycles").name == "cycles"
        assert build("Cyc").name == "cycles"
        assert build("vid").name == "video-ffmpeg"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build("nope")

    def test_build_all(self):
        dags = build_all()
        assert set(dags) == set(ALL_BENCHMARKS)


class TestStructure:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_every_benchmark_validates(self, name):
        build(name).validate()

    @pytest.mark.parametrize("name", SCIENTIFIC)
    def test_scientific_workflows_have_about_50_nodes(self, name):
        dag = build(name)
        assert 45 <= len(dag.real_nodes()) <= 52

    @pytest.mark.parametrize("name", REAL_WORLD)
    def test_real_world_apps_are_small(self, name):
        dag = build(name)
        assert len(dag.real_nodes()) <= 12

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_single_entry_point(self, name):
        dag = build(name)
        real_sources = [
            s for s in dag.sources() if not dag.node(s).is_virtual
        ]
        assert len(real_sources) == 1

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_not_a_simple_sequence(self, name):
        """The paper studies complex DAGs, not function sequences —
        every benchmark has some node with fan-out or fan-in (or a
        mapped foreach step)."""
        dag = build(name)
        has_fanout = any(len(dag.successors(n)) > 1 for n in dag.node_names)
        has_fanin = any(len(dag.predecessors(n)) > 1 for n in dag.node_names)
        has_map = any(n.map_factor > 1 for n in dag.nodes)
        assert has_fanout or has_fanin or has_map


class TestCalibration:
    """Fig. 5 anchor points from the paper."""

    @staticmethod
    def movement(dag):
        mono = sum(
            n.output_size
            for n in dag.real_nodes()
            if dag.data_consumers(n.name)
        )
        faas = sum(
            n.output_size * (1 + len(dag.data_consumers(n.name)))
            for n in dag.real_nodes()
        )
        return mono, faas

    def test_cycles_calibration(self):
        mono, faas = self.movement(build("cycles"))
        assert mono / MB == pytest.approx(23.95, rel=0.1)
        assert faas / MB == pytest.approx(1182.3, rel=0.25)

    def test_video_calibration(self):
        mono, faas = self.movement(build("video-ffmpeg"))
        assert mono / MB == pytest.approx(4.23, rel=0.01)
        assert faas / MB == pytest.approx(96.82, rel=0.05)

    def test_faas_ordering_matches_paper(self):
        """Table 4 orders HyperFlow transfer latency: Cyc >> Gen > Soy >
        Vid > Epi-ish; the byte totals must preserve the big relations."""
        faas = {
            name: self.movement(build(name))[1]
            for name in ALL_BENCHMARKS
        }
        assert faas["cycles"] > 2 * faas["genome"]
        assert faas["genome"] > 2 * faas["soykb"]
        assert faas["video-ffmpeg"] > faas["word-count"]
        assert faas["word-count"] > faas["file-processing"]
        assert faas["file-processing"] > faas["illegal-recognizer"]

    def test_memory_hunger_ordering(self):
        """SoyKB must be near-unreclaimable, Cycles lean (drives the
        Table 4 reduction asymmetry through Eq. 1-2)."""
        from repro.core import ReclamationConfig, workflow_quota

        config = ReclamationConfig()
        quota = {
            name: workflow_quota(build(name), config)
            for name in ("cycles", "soykb", "genome")
        }
        assert quota["soykb"] < 0.05 * quota["cycles"]
        assert quota["genome"] < 0.1 * quota["cycles"]
        assert quota["soykb"] < quota["genome"]


class TestGenomeScaling:
    @pytest.mark.parametrize("n", [10, 25, 50, 100, 200])
    def test_scales_to_requested_node_count(self, n):
        dag = genome(nodes=n)
        dag.validate()
        assert abs(len(dag.real_nodes()) - n) <= 3

    def test_structure_preserved_at_scale(self):
        """Scaling adds chromosome lanes (like real 1000-genome runs)."""
        dag = genome(nodes=100)
        assert dag.has_node("c0-fetch-chromosome")
        assert dag.has_node("c1-individuals-merge")
        individuals = [
            n for n in dag.node_names
            if "individuals-" in n and "merge" not in n
        ]
        assert len(individuals) > 50

    def test_default_size_is_single_lane(self):
        dag = genome(nodes=50)
        assert dag.has_node("fetch-chromosome")
        assert len(dag.sources()) == 1

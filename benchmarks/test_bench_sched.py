"""Kernel scheduler A/B bench: calendar-queue wheel vs binary heap.

Runs the same frozen-seed timer workloads against ``scheduler="heap"``
and ``scheduler="wheel"`` environments, interleaved, and reports the
events/sec ratio per workload:

- **keepalive_standing** — a large standing population of far-future
  container keep-alive timers while invocation-scale short timers churn
  underneath.  The heap's worst case: every push/pop of a short timer
  sifts through the standing population (O(log n) with cache-hostile
  access); the wheel parks the standing timers in its overflow tier and
  never touches them.
- **watchdog_churn** — per-invocation execution watchdogs, 90%
  cancelled on completion, over a standing keep-alive population.  The
  wheel drops tombstones bucket-locally at C speed; the heap either
  carries them to their nominal deadline or pays global compaction
  passes over the standing population.
- **small_run** — a few thousand timers, no standing population: the
  no-regression guard for workloads where the heap is already tiny.

**Bit-identity is asserted before any timing**: firing order on a
frozen-seed mixed timeout/schedule_at spec, engine records + telemetry
snapshots from a real workflow run, and a sharded network run under the
wheel against the single-process heap reference.  A single bit of drift
invalidates the bench.

Run directly (``python benchmarks/test_bench_sched.py``) to refresh the
committed ``BENCH_sched.json``; pass ``--quick`` for the small sweep the
CI smoke job uses (identity asserted, speedups recorded but not gated —
small populations are exactly where the wheel has nothing to win).
"""

from __future__ import annotations

import gc
import json
import math
import os
import random
import sys
import time
from pathlib import Path

import pytest

from repro.sim import Environment

_HERE = Path(__file__).resolve().parent
_ROUNDS = 3
# Acceptance gate (full mode only): geomean events/sec ratio of the
# timer-churn workloads (small_run is a no-regression guard, not part
# of the geomean).
_TARGET_GEOMEAN = 1.5
_SMALL_FLOOR = 0.85

_FULL_SIZES = {
    "keepalive_standing": dict(n_standing=400_000, n_churn=300_000),
    "watchdog_churn": dict(n_standing=200_000, n_watchdog=250_000),
    "small_run": dict(n=5_000),
}
_QUICK_SIZES = {
    "keepalive_standing": dict(n_standing=20_000, n_churn=15_000),
    "watchdog_churn": dict(n_standing=10_000, n_watchdog=12_000),
    "small_run": dict(n=2_000),
}


# -- workloads -----------------------------------------------------------
# Each builds its standing state untimed, then returns (timed_seconds,
# events_dispatched) for the churn phase.

def keepalive_standing(env, n_standing, n_churn):
    rng = random.Random(23)
    to = env.timeout
    for _ in range(n_standing):
        to(3600.0 + rng.random())  # warm-container keep-alives
    start = time.perf_counter()
    for _ in range(n_churn):
        to(rng.random() * 60.0)  # invocation-scale events
    env.run(until=61.0)
    return time.perf_counter() - start, n_churn


def watchdog_churn(env, n_standing, n_watchdog):
    rng = random.Random(7)
    to = env.timeout
    for _ in range(n_standing):
        to(3600.0 + rng.random())
    start = time.perf_counter()
    batch = []
    for i in range(n_watchdog):
        watchdog = to(60.0 + rng.random())
        if i % 10:  # 90% of invocations finish before their watchdog
            batch.append(watchdog)
        to(rng.random() * 0.5)  # the invocation's own completion event
        if len(batch) >= 64:
            for cancelled in batch:
                cancelled.cancel()
            del batch[:]
    for cancelled in batch:
        cancelled.cancel()
    env.run(until=62.0)
    return time.perf_counter() - start, 2 * n_watchdog


def small_run(env, n):
    rng = random.Random(3)
    to = env.timeout
    start = time.perf_counter()
    for _ in range(n):
        to(rng.random() * 5.0)
    env.run()
    return time.perf_counter() - start, n


WORKLOADS = {
    "keepalive_standing": keepalive_standing,
    "watchdog_churn": watchdog_churn,
    "small_run": small_run,
}
_CHURN_WORKLOADS = ("keepalive_standing", "watchdog_churn")


# -- bit-identity preflight ----------------------------------------------

def _firing_order(scheduler, spec):
    env = Environment(scheduler=scheduler)
    fired = []
    for tag, (kind, when) in enumerate(spec):
        event = env.schedule_at(when) if kind == "at" else env.timeout(when)
        event.callbacks.append(lambda _e, t=tag: fired.append(t))
    env.run()
    return fired, env.now


def assert_bit_identity(quick: bool) -> dict:
    """Heap-vs-wheel identity on order, records, telemetry, shards."""
    checks = {}

    # 1. Firing order on a frozen-seed mixed spec with heavy ties,
    # including absolute-time (cross-shard style) injection.
    rng = random.Random(99)
    times = [round(rng.random() * 50.0, 2) for _ in range(2_000)]
    times += times[:1_000]  # guaranteed ties
    spec = [("at" if rng.random() < 0.3 else "rel", t) for t in times]
    heap_order, heap_now = _firing_order("heap", spec)
    wheel_order, wheel_now = _firing_order("wheel", spec)
    assert heap_order == wheel_order, "firing order diverged"
    assert heap_now == wheel_now, "final drain time diverged"
    checks["firing_order_events"] = len(spec)

    # 2. Engine records + telemetry snapshot from a real workflow run.
    from repro.runner import run_workflow
    from repro.workloads import build

    invocations = 2 if quick else 4
    runs = {
        scheduler: run_workflow(
            build("genome"),
            invocations=invocations,
            workers=3,
            kernel_scheduler=scheduler,
            collect_telemetry=True,
        )
        for scheduler in ("heap", "wheel")
    }
    key = lambda r: (
        r.started_at, r.finished_at, r.status, r.cold_starts, r.retries
    )
    assert [key(r) for r in runs["heap"].records] == [
        key(r) for r in runs["wheel"].records
    ], "engine records diverged"
    assert runs["heap"].telemetry == runs["wheel"].telemetry, (
        "telemetry snapshots diverged"
    )
    checks["engine_invocations"] = invocations

    # 3. Sharded network run under the wheel vs single-process heap.
    from repro.experiments.fig_scale import make_plan
    from repro.sim.shard import run_network_sharded, run_network_single

    nodes, flows = (16, 80) if quick else (32, 200)
    plan = make_plan(nodes, flows, seed=11)
    abs_plan = [(at, f"n{s}", f"n{d}", z) for _g, at, s, d, z in plan]
    names = [f"n{i}" for i in range(nodes)]
    reference = run_network_single(abs_plan, names, scheduler="heap")
    sharded = run_network_sharded(
        abs_plan, names, 2, group_size=8, processes=False, strict=True,
        scheduler="wheel",
    )
    assert sharded["records"] == reference["records"], (
        "sharded wheel records diverged from single-process heap run"
    )
    assert sharded["makespan"] == reference["makespan"]
    checks["sharded_flows"] = flows
    return checks


# -- measurement ---------------------------------------------------------

def _measure(sizes, rounds: int = _ROUNDS):
    """Best-of-``rounds`` events/sec under both schedulers, interleaved
    A/B so thermal/scheduler drift hits both sides equally.  The garbage
    collector is paused during timing (the standing populations are
    stable object graphs; collector passes add identical,
    scheduler-independent noise)."""
    results = {}
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name, fn in WORKLOADS.items():
            kwargs = sizes[name]
            best = {"heap": 0.0, "wheel": 0.0}
            for _ in range(rounds):
                for scheduler in ("heap", "wheel"):
                    gc.collect()
                    env = Environment(scheduler=scheduler)
                    seconds, events = fn(env, **kwargs)
                    best[scheduler] = max(best[scheduler], events / seconds)
            results[name] = {
                **kwargs,
                "heap_events_per_sec": round(best["heap"]),
                "wheel_events_per_sec": round(best["wheel"]),
                "speedup": round(best["wheel"] / best["heap"], 3),
            }
    finally:
        if was_enabled:
            gc.enable()
    geomean = math.exp(
        sum(math.log(results[n]["speedup"]) for n in _CHURN_WORKLOADS)
        / len(_CHURN_WORKLOADS)
    )
    return results, round(geomean, 3)


def test_sched_speedup_and_identity(benchmark):
    """Full A/B: identity preflight, then the gated churn geomean."""
    def run_ab():
        checks = assert_bit_identity(quick=False)
        results, geomean = _measure(_FULL_SIZES)
        return checks, results, geomean

    checks, results, geomean = benchmark(run_ab)
    benchmark.extra_info["identity_checks"] = checks
    benchmark.extra_info["workloads"] = results
    benchmark.extra_info["geomean_churn_speedup"] = geomean
    assert geomean >= _TARGET_GEOMEAN, (
        f"wheel churn geomean {geomean:.2f}x below target "
        f"{_TARGET_GEOMEAN}x: {results}"
    )
    assert results["small_run"]["speedup"] >= _SMALL_FLOOR, (
        f"wheel regressed small runs: {results['small_run']}"
    )


def main(argv: list[str] | None = None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    sizes = _QUICK_SIZES if quick else _FULL_SIZES
    checks = assert_bit_identity(quick=quick)
    results, geomean = _measure(sizes, rounds=2 if quick else _ROUNDS)
    payload = {
        "bench": "kernel scheduler A/B: calendar-queue wheel vs binary "
        f"heap (events/sec, best of {2 if quick else _ROUNDS} "
        "interleaved rounds, gc paused during timing)",
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "identity_checks": {
            **checks,
            "note": "firing order, engine records, telemetry snapshots, "
            "and sharded-vs-single records asserted bit-identical "
            "heap vs wheel before timing",
        },
        "workloads": results,
        "geomean_churn_speedup": geomean,
        "target_geomean": _TARGET_GEOMEAN,
        "gated": not quick,
    }
    if not quick and geomean < _TARGET_GEOMEAN:
        print(json.dumps(payload, indent=2))
        print(
            f"\nFAIL: churn geomean {geomean}x below {_TARGET_GEOMEAN}x",
            file=sys.stderr,
        )
        return 1
    out = _HERE.parent / "BENCH_sched.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Pluggable kernel schedulers: determinism, wheel internals, pooling.

The hard contract under test: the heap and the wheel realize the exact
same ``(when, eid)`` total order, so every observable simulation —
firing order, clock trajectory, engine records, telemetry, sharded
runs — is bit-identical under either scheduler.  The wheel-internal
tests pin the three-tier structure (near heap, rotation array, overflow
tier) through behavior visible at the ``Environment`` surface.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fig_scale import make_plan
from repro.sim import (
    SCHEDULERS,
    Environment,
    HeapScheduler,
    SimulationError,
    WheelScheduler,
    make_scheduler,
    resolve_scheduler_name,
    set_default_scheduler,
)
from repro.sim.sched import DEFAULT_SCHEDULER_ENV
from repro.sim.shard import run_network_single, run_network_sharded

BOTH = pytest.mark.parametrize("scheduler", ["heap", "wheel"])


def _abs_plan(nodes, flows, seed):
    plan = make_plan(nodes, flows, seed=seed)
    names = [f"n{i}" for i in range(nodes)]
    return (
        [(at, f"n{s}", f"n{d}", size) for _gap, at, s, d, size in plan],
        names,
    )


def _firing_order(scheduler, spec):
    """Schedule ``spec`` (list of (kind, time) entries), return the order
    tags fire in.  ``schedule_at`` entries model cross-shard barrier
    injection: absolute timestamps, scheduled exactly as named."""
    env = Environment(scheduler=scheduler)
    fired = []
    for tag, (kind, when) in enumerate(spec):
        if kind == "at":
            event = env.schedule_at(when)
        else:
            event = env.timeout(when)
        event.callbacks.append(lambda _e, t=tag: fired.append(t))
    env.run()
    return fired


class TestTotalOrderParity:
    """Same (when, eid) total order under both schedulers."""

    @settings(max_examples=50, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=120,
        ),
        at_mask=st.lists(st.booleans(), min_size=1, max_size=120),
    )
    def test_same_timestamp_events_fire_in_eid_order(self, times, at_mask):
        # Duplicate roughly half the times so ties are common, and mix
        # relative (timeout) with absolute (schedule_at, the cross-shard
        # injection primitive) scheduling.
        times = times + times[: len(times) // 2]
        spec = [
            ("at" if at_mask[i % len(at_mask)] else "rel", when)
            for i, when in enumerate(times)
        ]
        heap_order = _firing_order("heap", spec)
        wheel_order = _firing_order("wheel", spec)
        assert heap_order == wheel_order
        # Ties fire in eid (creation) order: the order restricted to any
        # equal-time group is increasing.
        by_time = {}
        for tag in heap_order:
            by_time.setdefault(times[tag], []).append(tag)
        for group in by_time.values():
            assert group == sorted(group)

    @BOTH
    def test_schedule_at_cross_shard_style_injection(self, scheduler):
        """Events injected at exact absolute timestamps (the barrier
        protocol's delivery primitive) interleave correctly with local
        timers scheduled before and after them."""
        env = Environment(scheduler=scheduler)
        fired = []
        env.timeout(2.0).callbacks.append(lambda _e: fired.append("local-2"))
        env.schedule_at(1.5).callbacks.append(lambda _e: fired.append("inj-1.5"))
        env.schedule_at(2.0).callbacks.append(lambda _e: fired.append("inj-2a"))
        env.timeout(2.0).callbacks.append(lambda _e: fired.append("local-2b"))
        env.schedule_at(2.0).callbacks.append(lambda _e: fired.append("inj-2c"))
        env.run()
        # t=2.0 ties resolve strictly by creation (eid) order.
        assert fired == ["inj-1.5", "local-2", "inj-2a", "local-2b", "inj-2c"]
        assert env.now == 2.0

    @BOTH
    def test_final_drain_time_ignores_tombstones(self, scheduler):
        env = Environment(scheduler=scheduler)
        env.timeout(1.0)
        late = env.timeout(50.0)
        late.cancel()
        env.run()
        assert env.now == 1.0

    def test_workflow_run_bit_identical(self):
        from repro.runner import run_workflow
        from repro.workloads import build

        summaries = {}
        for scheduler in ("heap", "wheel"):
            s = run_workflow(
                build("genome"),
                invocations=3,
                workers=3,
                kernel_scheduler=scheduler,
                collect_telemetry=True,
            )
            summaries[scheduler] = s
        heap_s, wheel_s = summaries["heap"], summaries["wheel"]
        # invocation_id is a process-global counter (advances across the
        # two runs in this test); everything observable must match.
        key = lambda r: (
            r.started_at, r.finished_at, r.status, r.cold_starts, r.retries
        )
        assert [key(r) for r in heap_s.records] == [
            key(r) for r in wheel_s.records
        ]
        assert heap_s.mean_latency == wheel_s.mean_latency
        assert heap_s.p99_latency == wheel_s.p99_latency
        assert heap_s.cold_starts == wheel_s.cold_starts
        assert heap_s.telemetry == wheel_s.telemetry

    def test_network_records_bit_identical(self):
        plan, names = _abs_plan(32, 150, 11)
        heap_run = run_network_single(plan, names, scheduler="heap")
        wheel_run = run_network_single(plan, names, scheduler="wheel")
        assert wheel_run["records"] == heap_run["records"]
        assert wheel_run["makespan"] == heap_run["makespan"]
        assert wheel_run["nic_bytes"] == heap_run["nic_bytes"]

    def test_sharded_run_bit_identical_under_wheel(self):
        plan, names = _abs_plan(32, 150, 29)
        reference = run_network_single(plan, names, scheduler="heap")
        sharded = run_network_sharded(
            plan,
            names,
            2,
            group_size=8,
            processes=False,
            strict=True,
            scheduler="wheel",
        )
        assert sharded["records"] == reference["records"]
        assert sharded["makespan"] == reference["makespan"]
        assert sharded["cross_flows"] == 0


class TestPeekParity:
    """peek() is the scheduler-owned skip the barrier lookahead uses."""

    @BOTH
    def test_peek_skips_cancelled_head(self, scheduler):
        env = Environment(scheduler=scheduler)
        dead = env.timeout(1.0)
        env.timeout(2.0)
        dead.cancel()
        assert env.peek() == 2.0

    @BOTH
    def test_peek_empty_is_inf(self, scheduler):
        env = Environment(scheduler=scheduler)
        assert env.peek() == float("inf")
        only = env.timeout(4.0)
        only.cancel()
        # Only tombstones left: peek retires them and reports drained.
        assert env.peek() == float("inf")
        assert env.queued_events == 0


class TestWheelInternals:
    def test_overflow_tier_migrates_far_future_timers(self):
        env = Environment(scheduler="wheel")
        sched = env.scheduler
        fired = []
        # Default geometry: width 0.01 x 4096 buckets ~ 41s rotation.
        # 3600s is far beyond it -> overflow tier.
        env.timeout(3600.0).callbacks.append(lambda _e: fired.append("far"))
        env.timeout(0.5).callbacks.append(lambda _e: fired.append("near"))
        assert sched._ocount == 1
        env.run()
        assert fired == ["near", "far"]
        assert env.now == 3600.0
        assert sched._ocount == 0

    def test_rotation_wraps_across_many_revolutions(self):
        env = Environment(scheduler="wheel")
        fired = []
        # Spread across ~5 rotations of the default 41s window.
        for i in range(40):
            env.timeout(i * 5.0 + 0.25, value=i).callbacks.append(
                lambda ev: fired.append(ev.value)
            )
        env.run()
        assert fired == list(range(40))

    def test_same_timestep_resumes_go_through_near_heap(self):
        """Timers scheduled at (or before the end of) the active bucket
        by the very callbacks that bucket is firing still fire in key
        order — they merge through the near heap."""
        env = Environment(scheduler="wheel")
        fired = []

        def chain(ev):
            fired.append(ev.value)
            if ev.value < 5:
                env.timeout(0.0, value=ev.value + 1).callbacks.append(chain)

        env.timeout(1.0, value=0).callbacks.append(chain)
        env.timeout(1.0, value=100).callbacks.append(
            lambda ev: fired.append(ev.value)
        )
        env.run()
        # The zero-delay chain at t=1.0 interleaves after the value-100
        # timer created earlier (lower eid fires first at equal time).
        assert fired == [0, 100, 1, 2, 3, 4, 5]

    def test_bucket_local_tombstone_drop(self):
        env = Environment(scheduler="wheel")
        keep = env.timeout(10.0)
        for _ in range(50):
            env.timeout(10.0).cancel()
        assert env.queued_events == 51  # tombstones parked in their bucket
        env.run()
        assert env.queued_events == 0
        assert keep.processed and not keep.cancelled
        assert env._cancelled_timers == 0

    def test_len_counts_all_tiers(self):
        env = Environment(scheduler="wheel")
        env.timeout(0.0)  # near heap (at/below active bucket)
        env.timeout(1.0)  # rotation array
        env.timeout(9999.0)  # overflow tier
        assert env.queued_events == 3
        env.run(until=2.0)
        assert env.queued_events == 1

    def test_compaction_threshold_is_a_noop_under_wheel(self):
        env = Environment(scheduler="wheel", timer_compaction_threshold=1)
        for _ in range(20):
            env.timeout(30.0).cancel()
        # The heap would have compacted at threshold 1; the wheel leaves
        # tombstones parked for their bucket's local drop.
        assert env.queued_events == 20
        assert env._cancelled_timers == 20
        env.run()
        assert env.queued_events == 0
        assert env._cancelled_timers == 0

    def test_negative_initial_time_rejected(self):
        with pytest.raises(SimulationError, match="non-negative"):
            Environment(initial_time=-5.0, scheduler="wheel")

    def test_unschedulable_time_rejected(self):
        env = Environment(scheduler="wheel")
        with pytest.raises(SimulationError, match="cannot schedule"):
            env.timeout(float("inf"))

    def test_step_and_until_event_paths(self):
        env = Environment(scheduler="wheel")
        fired = []
        env.timeout(1.0).callbacks.append(lambda _e: fired.append("a"))
        target = env.timeout(2.0)
        env.timeout(3.0).callbacks.append(lambda _e: fired.append("late"))
        env.step()
        assert fired == ["a"] and env.now == 1.0
        env.run(until=target)
        assert env.now == 2.0 and fired == ["a"]
        with pytest.raises(SimulationError, match="drained"):
            env.run(until=env.event())


class TestTimeoutPooling:
    """_POOL_CAP recycling proves sole ownership with events in buckets."""

    @BOTH
    def test_referenced_timeout_never_recycled(self, scheduler):
        env = Environment(scheduler=scheduler)
        held = env.timeout(1.0)  # the test keeps this reference
        env.run()
        assert not env._timeout_pool or env._timeout_pool[0] is not held
        # A later timeout must be a fresh object, not `held` reused.
        fresh = env.timeout(1.0)
        assert fresh is not held

    @BOTH
    def test_unreferenced_timeouts_are_pooled_and_reused(self, scheduler):
        env = Environment(scheduler=scheduler)
        for _ in range(10):
            env.timeout(0.5)
        env.run()
        assert len(env._timeout_pool) == 10
        before = list(env._timeout_pool)
        again = env.timeout(0.5)
        assert again is before[-1]  # LIFO reuse from the free-list

    @BOTH
    def test_cancelled_unreferenced_timeouts_are_pooled(self, scheduler):
        env = Environment(scheduler=scheduler)
        for _ in range(8):
            env.timeout(5.0).cancel()
        env.timeout(6.0)
        env.run()
        # Tombstones dropped (bucket-locally under the wheel, at pop or
        # compaction under the heap) still reach the free-list.
        assert len(env._timeout_pool) == 9

    @BOTH
    def test_held_cancelled_timeout_not_pooled(self, scheduler):
        env = Environment(scheduler=scheduler)
        held = env.timeout(5.0)
        held.cancel()
        env.timeout(6.0)
        env.run()
        assert held not in env._timeout_pool
        assert held.processed and not held.cancelled


class TestSelection:
    def test_default_is_heap(self, monkeypatch):
        # Isolate from any ambient FAASFLOW_SCHEDULER (e.g. a wheel-mode
        # full-suite run); the built-in default must stay the heap.
        monkeypatch.delenv(DEFAULT_SCHEDULER_ENV, raising=False)
        env = Environment()
        assert env.scheduler_name == "heap"
        assert isinstance(env.scheduler, HeapScheduler)

    def test_explicit_wheel(self):
        env = Environment(scheduler="wheel")
        assert env.scheduler_name == "wheel"
        assert isinstance(env.scheduler, WheelScheduler)
        assert env._queue is None  # heap fast path disabled

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            Environment(scheduler="splay")

    def test_env_var_default_and_reset(self):
        saved = os.environ.get(DEFAULT_SCHEDULER_ENV)
        try:
            set_default_scheduler("wheel")
            assert resolve_scheduler_name() == "wheel"
            assert Environment().scheduler_name == "wheel"
            # Explicit beats the process default.
            assert Environment(scheduler="heap").scheduler_name == "heap"
            set_default_scheduler(None)
            assert resolve_scheduler_name() == "heap"
        finally:
            if saved is None:
                os.environ.pop(DEFAULT_SCHEDULER_ENV, None)
            else:
                os.environ[DEFAULT_SCHEDULER_ENV] = saved

    def test_set_default_validates(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            set_default_scheduler("fibheap")

    def test_factory_callable(self):
        env = Environment(scheduler=lambda e: WheelScheduler(e, width=0.5))
        assert isinstance(env.scheduler, WheelScheduler)
        fired = []
        env.timeout(1.0).callbacks.append(lambda _e: fired.append(1))
        env.run()
        assert fired == [1]

    def test_factory_missing_methods_rejected(self):
        with pytest.raises(SimulationError, match="without a callable"):
            Environment(scheduler=lambda e: object())

    def test_registry_names(self):
        assert set(SCHEDULERS) >= {"heap", "wheel"}
        env = Environment()
        assert make_scheduler(env, "wheel").name == "wheel"

    def test_wheel_geometry_validation(self):
        env = Environment()
        with pytest.raises(SimulationError, match="width"):
            WheelScheduler(env, width=0.0)
        with pytest.raises(SimulationError, match="power of two"):
            WheelScheduler(env, buckets=100)

"""Exporter tests: Chrome trace structure, validation, JSONL round-trip."""

import json

import pytest

from repro.clients import run_closed_loop
from repro.core import EngineConfig, FaaSFlowSystem, FaultInjector
from repro.obs import (
    ResourceSampler,
    SpanKind,
    SpanTracer,
    chrome_trace,
    export_trace,
    read_spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)

from ..core.conftest import linear_dag, round_robin


@pytest.fixture
def traced_run(env, cluster):
    """A short traced run with at least one failed invocation."""
    tracer = SpanTracer(env)
    cluster.install_spans(tracer)
    dag = linear_dag(n=3)
    system = FaaSFlowSystem(
        cluster,
        EngineConfig(max_retries=0),
        faults=FaultInjector(default_rate=0.25, seed=11),
    )
    system.deploy(dag, round_robin(dag, cluster.worker_names()))
    records = run_closed_loop(system, dag.name, 6)
    return tracer, records


class TestChromeTrace:
    def test_document_structure(self, traced_run):
        tracer, _ = traced_run
        tracer.finalize()
        document = chrome_trace(tracer.all_spans(), dropped=tracer.dropped)
        events = document["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas}
        assert "client" in names
        assert {"worker-0", "worker-1", "worker-2"} <= names
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(tracer.all_spans())
        assert all(e["dur"] >= 0 for e in xs)
        assert document["metadata"]["dropped_spans"] == 0

    def test_counter_events_from_samples(self, env, cluster, traced_run):
        tracer, _ = traced_run
        sampler = ResourceSampler(cluster, interval=0.1)
        sampler.take_sample()
        document = chrome_trace(tracer.all_spans(), samples=sampler.samples)
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "cpu (busy cores)" in names
        assert "memory (MB)" in names

    def test_validate_passes_real_trace(self, traced_run):
        tracer, _ = traced_run
        document = chrome_trace(tracer.all_spans())
        assert validate_chrome_trace(document) == []

    def test_validate_catches_missing_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]

    def test_validate_catches_bad_ph_and_fields(self):
        document = {
            "traceEvents": [
                {"ph": "Z", "pid": 1},
                {"ph": "X", "tid": 0},  # no pid
                {"ph": "X", "pid": 1, "tid": 0, "name": "x"},  # no ts/dur
                {
                    "ph": "X", "pid": 1, "tid": 0, "name": "x",
                    "ts": 0, "dur": -5,
                },
            ]
        }
        problems = validate_chrome_trace(document)
        assert len(problems) == 4

    def test_validate_catches_lane_overlap(self):
        document = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 0, "name": "a",
                 "ts": 0.0, "dur": 10.0},
                {"ph": "X", "pid": 1, "tid": 0, "name": "b",
                 "ts": 5.0, "dur": 10.0},  # straddles a's end
            ]
        }
        problems = validate_chrome_trace(document)
        assert problems and "without nesting" in problems[0]

    def test_validate_accepts_equal_start_nesting(self):
        # The enclosing span and its first child can share a start time;
        # the validator must treat longest-first ordering as nested.
        document = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 0, "name": "parent",
                 "ts": 0.0, "dur": 10.0},
                {"ph": "X", "pid": 1, "tid": 0, "name": "child",
                 "ts": 0.0, "dur": 4.0},
            ]
        }
        assert validate_chrome_trace(document) == []

    def test_write_chrome_trace_loads_as_json(self, tmp_path, traced_run):
        tracer, _ = traced_run
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []


class TestJsonlRoundTrip:
    def test_round_trip_preserves_spans(self, tmp_path, traced_run):
        tracer, records = traced_run
        path = write_spans_jsonl(tmp_path / "spans.jsonl", tracer)
        loaded, meta = read_spans_jsonl(path)
        original = tracer.all_spans()
        assert meta["spans"] == len(original)
        assert meta["dropped"] == 0
        assert len(loaded) == len(original)
        for before, after in zip(original, loaded):
            assert after.span_id == before.span_id
            assert after.parent_id == before.parent_id
            assert after.kind == before.kind
            assert after.start == before.start
            assert after.end == before.end
            assert after.status == before.status
            assert after.attrs == before.attrs

    def test_non_ok_statuses_survive(self, tmp_path, traced_run):
        tracer, records = traced_run
        assert any(r.status != "ok" for r in records)
        path = write_spans_jsonl(tmp_path / "spans.jsonl", tracer)
        loaded, _ = read_spans_jsonl(path)
        statuses = {s.status for s in loaded}
        assert "failed" in statuses or "crashed" in statuses

    def test_dropped_count_in_meta(self, tmp_path, env):
        tracer = SpanTracer(env, limit=2)
        for i in range(5):
            tracer.record(SpanKind.EXECUTE, float(i), float(i) + 0.5)
        path = write_spans_jsonl(tmp_path / "spans.jsonl", tracer)
        loaded, meta = read_spans_jsonl(path)
        assert len(loaded) == 2
        assert meta["dropped"] == 3


class TestExportTrace:
    def test_bundle_paths(self, tmp_path, env, cluster, traced_run):
        tracer, _ = traced_run
        sampler = ResourceSampler(cluster)
        sampler.take_sample()
        paths = export_trace(
            tmp_path / "bundle", tracer, sampler=sampler, prefix="lin"
        )
        assert paths["spans"].name == "lin-spans.jsonl"
        assert paths["perfetto"].name == "lin-trace.json"
        assert paths["samples"].name == "lin-samples.csv"
        for path in paths.values():
            assert path.exists()

    def test_bundle_without_sampler(self, tmp_path, traced_run):
        tracer, _ = traced_run
        paths = export_trace(tmp_path, tracer)
        assert set(paths) == {"spans", "perfetto"}

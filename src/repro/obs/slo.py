"""SLO tracking over telemetry snapshots.

An :class:`SLOTarget` states what a (tenant, workflow) pair is owed:
a latency target at a given objective percentile ("p95 under 2.0s")
and an error budget ("at most 1% of invocations may fail or miss the
latency target").  :class:`SLOTracker` evaluates targets against the
``workflow.latency`` histograms and status-labeled
``workflow.invocations`` counters that both engines emit, producing
per-pair :class:`SLOReport` rows:

- **attainment** — fraction of invocations at or under the latency
  target, read from histogram bucket mass (deterministic, conservative
  within one bucket's width; see ``LogHistogram.fraction_below``).
- **error rate** — non-OK invocations over total, exact from counters.
- **burn rate** — combined miss rate (latency misses + errors) over
  the allowed miss rate implied by the objective and error budget.
  1.0 means the budget is being consumed exactly as provisioned;
  above 1.0 the pair is burning budget faster than it can afford.

Targets apply per (tenant, workflow); a target with ``tenant=None`` or
``workflow=None`` acts as a wildcard default for pairs without a more
specific target.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from .telemetry import LogHistogram, find_metrics

__all__ = ["SLOTarget", "SLOReport", "SLOTracker", "load_targets"]

PathLike = Union[str, Path]

OK_STATUS = "ok"


@dataclass(frozen=True)
class SLOTarget:
    """Latency + error-rate objective for a (tenant, workflow) pair."""

    latency_target: float
    objective: float = 95.0  # percent of invocations that must attain
    error_budget: float = 0.01  # allowed fraction of failed invocations
    tenant: Optional[str] = None  # None = wildcard
    workflow: Optional[str] = None  # None = wildcard

    def __post_init__(self):
        if self.latency_target <= 0:
            raise ValueError(
                f"latency_target must be > 0, got {self.latency_target}"
            )
        if not 0 < self.objective <= 100:
            raise ValueError(
                f"objective must be in (0, 100], got {self.objective}"
            )
        if not 0 <= self.error_budget < 1:
            raise ValueError(
                f"error_budget must be in [0, 1), got {self.error_budget}"
            )

    def specificity(self) -> int:
        return (self.tenant is not None) + (self.workflow is not None)

    def matches(self, tenant: str, workflow: str) -> bool:
        return (self.tenant is None or self.tenant == tenant) and (
            self.workflow is None or self.workflow == workflow
        )

    @property
    def allowed_miss_rate(self) -> float:
        """Total miss budget: latency slack plus the error budget."""
        return (100.0 - self.objective) / 100.0 + self.error_budget


@dataclass
class SLOReport:
    """Evaluated SLO state for one (tenant, workflow) pair."""

    tenant: str
    workflow: str
    target: SLOTarget
    invocations: int
    errors: int
    attainment: float  # fraction of invocations meeting latency target
    p50: float
    p99: float

    @property
    def error_rate(self) -> float:
        return self.errors / self.invocations if self.invocations else 0.0

    @property
    def miss_rate(self) -> float:
        """Combined miss fraction: latency misses plus errors.

        Errors are excluded from the latency histogram's attainment
        denominator only if the engine skipped recording them — both
        engines record every invocation's latency, so a failed slow
        invocation counts once here (whichever clause catches it
        first: the latency miss already includes it).
        """
        latency_misses = (1.0 - self.attainment) * self.invocations
        misses = max(latency_misses, float(self.errors))
        return misses / self.invocations if self.invocations else 0.0

    @property
    def burn_rate(self) -> float:
        allowed = self.target.allowed_miss_rate
        if allowed <= 0:
            return 0.0 if self.miss_rate == 0 else float("inf")
        return self.miss_rate / allowed

    @property
    def met(self) -> bool:
        return self.burn_rate <= 1.0

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "workflow": self.workflow,
            "latency_target": self.target.latency_target,
            "objective": self.target.objective,
            "error_budget": self.target.error_budget,
            "invocations": self.invocations,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "attainment": self.attainment,
            "miss_rate": self.miss_rate,
            "burn_rate": self.burn_rate,
            "met": self.met,
            "p50": self.p50,
            "p99": self.p99,
        }


class SLOTracker:
    """Evaluate SLO targets against a telemetry snapshot."""

    def __init__(self, targets: Iterable[SLOTarget] = ()):
        self.targets: list[SLOTarget] = list(targets)

    def add_target(self, target: SLOTarget) -> None:
        self.targets.append(target)

    def target_for(self, tenant: str, workflow: str) -> Optional[SLOTarget]:
        """Most specific matching target (exact pair beats wildcard).

        Ties are deterministic: at equal specificity a tenant-scoped
        target beats a workflow-scoped one (the tenant is who the SLO
        is owed to), and remaining ties keep the earliest-declared
        target — so the answer never depends on registration order
        beyond the documented first-declared-wins rule.
        """
        best: Optional[SLOTarget] = None
        best_score = (-1, False)
        for target in self.targets:
            if not target.matches(tenant, workflow):
                continue
            score = (target.specificity(), target.tenant is not None)
            if score > best_score:
                best = target
                best_score = score
        return best

    @staticmethod
    def pairs(snapshot: dict) -> list[tuple[str, str]]:
        """Distinct (tenant, workflow) pairs with latency data."""
        seen = []
        for entry in find_metrics(snapshot, "workflow.latency"):
            labels = entry["labels"]
            pair = (labels.get("tenant", "default"), labels.get("workflow", ""))
            if pair not in seen:
                seen.append(pair)
        return sorted(seen)

    def evaluate(self, snapshot: dict) -> list[SLOReport]:
        """One report per (tenant, workflow) pair that has a target."""
        reports = []
        for tenant, workflow in self.pairs(snapshot):
            target = self.target_for(tenant, workflow)
            if target is None:
                continue
            # Latency histograms may split further (e.g. by engine);
            # merge every matching entry for the pair.
            hist = LogHistogram()
            for entry in find_metrics(
                snapshot, "workflow.latency", tenant=tenant, workflow=workflow
            ):
                hist.merge(LogHistogram.from_dict(entry))
            invocations = 0
            errors = 0
            for entry in find_metrics(
                snapshot,
                "workflow.invocations",
                tenant=tenant,
                workflow=workflow,
            ):
                count = int(entry["total"])
                invocations += count
                if entry["labels"].get("status", OK_STATUS) != OK_STATUS:
                    errors += count
            if invocations == 0:
                invocations = hist.count
            reports.append(
                SLOReport(
                    tenant=tenant,
                    workflow=workflow,
                    target=target,
                    invocations=invocations,
                    errors=errors,
                    attainment=hist.fraction_below(target.latency_target),
                    p50=hist.quantile(50) if hist.count else 0.0,
                    p99=hist.quantile(99) if hist.count else 0.0,
                )
            )
        return reports


def load_targets(path: PathLike) -> list[SLOTarget]:
    """Read SLO targets from a JSON file.

    The file is either a list of target objects or ``{"targets":
    [...]}``; each object takes the :class:`SLOTarget` field names,
    with ``tenant``/``workflow`` optional (omitted = wildcard).
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = data.get("targets", [])
    targets = []
    for entry in data:
        targets.append(
            SLOTarget(
                latency_target=entry["latency_target"],
                objective=entry.get("objective", 95.0),
                error_budget=entry.get("error_budget", 0.01),
                tenant=entry.get("tenant"),
                workflow=entry.get("workflow"),
            )
        )
    return targets

"""Hypothesis stateful tests: random op sequences vs pool/store invariants.

The container pool and the local memory store sit under every
experiment; these state machines hammer them with arbitrary interleaved
operations and check the invariants that must hold after every step.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim.container import ContainerPool, ContainerSpec, ContainerState
from repro.sim.kernel import Environment
from repro.sim.resources import CPUAllocator, MemoryAccount
from repro.sim.storage import LocalMemStore

MB = 1024.0 * 1024.0
FUNCTIONS = ["fa", "fb", "fc"]


class ContainerPoolMachine(RuleBasedStateMachine):
    """Acquire/release/recycle/expire in arbitrary order."""

    @initialize()
    def setup(self):
        self.env = Environment()
        self.pool = ContainerPool(
            self.env,
            "worker-0",
            CPUAllocator(self.env, cores=8),
            MemoryAccount(self.env, capacity=1024 * MB),  # 4 containers
            ContainerSpec(
                cold_start_time=0.05, keepalive=50.0, max_per_function=3
            ),
        )
        self.busy = []
        self.pending = []

    @rule(function=st.sampled_from(FUNCTIONS))
    def acquire(self, function):
        self.pending.append(self.pool.acquire(function))

    @rule()
    def settle(self):
        self.env.run(until=self.env.now + 0.2)
        still_pending = []
        for event in self.pending:
            if event.processed:
                self.busy.append(event.value)
            else:
                still_pending.append(event)
        self.pending = still_pending

    @rule(data=st.data())
    def release_one(self, data):
        alive = [c for c in self.busy if c.state == ContainerState.BUSY]
        if not alive:
            return
        container = data.draw(st.sampled_from(alive))
        self.busy.remove(container)
        self.pool.release(container)

    @rule(function=st.sampled_from(FUNCTIONS))
    def recycle(self, function):
        self.pool.recycle_version(function, version=1)

    @rule()
    def let_keepalive_expire(self):
        self.env.run(until=self.env.now + 60.0)

    @invariant()
    def memory_never_overcommitted(self):
        assert self.pool.memory.reserved <= self.pool.memory.capacity + 1e-6

    @invariant()
    def per_function_cap_respected(self):
        for function in FUNCTIONS:
            assert self.pool.count(function) <= 3

    @invariant()
    def reservations_match_live_containers(self):
        live = sum(
            1
            for containers in self.pool._all.values()
            for c in containers
            if c.state != ContainerState.DEAD
        )
        reserved = self.pool.memory.reserved_by_tag("container")
        assert reserved == pytest.approx(live * 256 * MB)

    @invariant()
    def dead_containers_not_listed(self):
        for containers in self.pool._all.values():
            assert all(c.state != ContainerState.DEAD for c in containers)


class MemStoreMachine(RuleBasedStateMachine):
    """Put/get/delete with quota changes: usage accounting must balance."""

    @initialize()
    def setup(self):
        self.env = Environment()
        self.store = LocalMemStore(self.env, "worker-0", quota=10 * MB)
        self.expected = {}

    @rule(
        key=st.sampled_from(["k1", "k2", "k3", "k4"]),
        size=st.floats(min_value=0.1 * MB, max_value=6 * MB),
    )
    def put(self, key, size):
        event = self.store.try_put(key, size)
        if event is not None:
            self.env.run(until=event)
            # Re-putting an existing key is an idempotent no-op.
            self.expected.setdefault(key, size)

    @rule(key=st.sampled_from(["k1", "k2", "k3", "k4"]))
    def delete(self, key):
        self.store.delete(key)
        self.expected.pop(key, None)

    @rule(quota=st.floats(min_value=0, max_value=20 * MB))
    def resize_quota(self, quota):
        self.store.set_quota(quota)

    @invariant()
    def usage_matches_contents(self):
        assert self.store.used == pytest.approx(
            sum(self.expected.values()), abs=1e-6
        )
        assert self.store.key_count == len(self.expected)

    @invariant()
    def membership_consistent(self):
        for key in self.expected:
            assert key in self.store


TestContainerPoolStateful = ContainerPoolMachine.TestCase
TestContainerPoolStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestMemStoreStateful = MemStoreMachine.TestCase
TestMemStoreStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)

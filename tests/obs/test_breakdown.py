"""Integration: span-tree invariants and measured latency decomposition.

The acceptance bar for the observability layer: on a fault-injection
workload, every invocation's breakdown components sum to its end-to-end
latency within 1e-6 — in all three modes — and the span trees respect
the causal invariants (roots bracket their children, data-plane spans
parent under their function span).
"""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    HyperFlowServerlessSystem,
    MonolithicSystem,
)
from repro.metrics import InvocationStatus
from repro.obs import BREAKDOWN_COMPONENTS, SpanKind, SpanTracer

from ..core.conftest import all_on, fanout_dag, linear_dag, round_robin

_EPS = 1e-9


def traced(cluster):
    tracer = SpanTracer(cluster.env)
    cluster.install_spans(tracer)
    return tracer


def run_faasflow(cluster, dag, invocations, **config_kwargs):
    from repro.core import FaultInjector

    faults = None
    if config_kwargs.pop("fault_rate", 0.0):
        faults = FaultInjector(default_rate=0.3, seed=7)
    system = FaaSFlowSystem(
        cluster, EngineConfig(**config_kwargs), faults=faults
    )
    system.deploy(dag, round_robin(dag, cluster.worker_names()))
    records = run_closed_loop(system, dag.name, invocations)
    return system, records


def assert_breakdown_sums(metrics, records):
    assert records
    for record in records:
        parts = metrics.breakdown(record.invocation_id)
        assert parts["measured"] is True
        total = sum(parts[key] for key in BREAKDOWN_COMPONENTS)
        assert total == pytest.approx(record.latency, abs=1e-6)


class TestBreakdownWorkerSP:
    def test_sums_to_e2e_with_faults(self, env, cluster):
        tracer = traced(cluster)
        dag = fanout_dag(branches=4)
        system, records = run_faasflow(
            cluster, dag, 10, fault_rate=0.3, max_retries=1
        )
        statuses = {r.status for r in records}
        assert InvocationStatus.FAILED in statuses  # faults actually fired
        assert_breakdown_sums(system.metrics, records)
        assert system.metrics.spans is tracer

    def test_components_plausible(self, env, cluster):
        traced(cluster)
        dag = linear_dag(n=3)
        system, records = run_faasflow(cluster, dag, 3)
        parts = system.metrics.breakdown(records[0].invocation_id)
        assert parts["execute"] > 0
        assert parts["cold_start"] > 0  # first invocation cold-starts
        assert parts["transfer"] > 0
        warm = system.metrics.breakdown(records[-1].invocation_id)
        assert warm["cold_start"] == 0.0

    def test_timeout_invocation_still_sums(self, env, cluster):
        traced(cluster)
        dag = linear_dag(n=3, service_time=0.5)
        system = FaaSFlowSystem(cluster, EngineConfig(execution_timeout=0.3))
        system.deploy(dag, all_on(dag, "worker-0"))
        records = run_closed_loop(system, dag.name, 2)
        assert all(r.status == InvocationStatus.TIMEOUT for r in records)
        assert_breakdown_sums(system.metrics, records)

    def test_mean_breakdown_aggregates(self, env, cluster):
        traced(cluster)
        dag = linear_dag(n=2)
        system, records = run_faasflow(cluster, dag, 4)
        mean = system.metrics.mean_breakdown(dag.name)
        total = sum(mean[key] for key in BREAKDOWN_COMPONENTS)
        assert total == pytest.approx(mean["e2e"], abs=1e-6)


class TestBreakdownMasterSP:
    def test_sums_to_e2e_with_faults(self, env, cluster):
        from repro.core import FaultInjector

        traced(cluster)
        dag = fanout_dag(branches=4)
        system = HyperFlowServerlessSystem(
            cluster,
            EngineConfig(max_retries=1),
            faults=FaultInjector(default_rate=0.3, seed=7),
        )
        system.register(dag, round_robin(dag, cluster.worker_names()))
        records = run_closed_loop(system, dag.name, 10)
        assert {r.status for r in records} & {
            InvocationStatus.FAILED, InvocationStatus.OK
        }
        assert_breakdown_sums(system.metrics, records)

    def test_sync_component_nonzero(self, env, cluster):
        traced(cluster)
        dag = linear_dag(n=3)
        system = HyperFlowServerlessSystem(cluster, EngineConfig())
        system.register(dag, all_on(dag, "worker-0"))
        records = run_closed_loop(system, dag.name, 2)
        parts = system.metrics.breakdown(records[-1].invocation_id)
        # MasterSP pays two control-plane hops per function.
        assert parts["sync"] > 0


class TestBreakdownMonolithic:
    def test_sums_to_e2e(self, env, cluster):
        traced(cluster)
        dag = fanout_dag(branches=12)  # oversubscribes 8 cores: queue-wait
        system = MonolithicSystem(cluster)
        system.register(dag)
        records = run_closed_loop(system, dag.name, 3)
        assert all(r.status == InvocationStatus.OK for r in records)
        assert_breakdown_sums(system.metrics, records)

    def test_execute_dominates(self, env, cluster):
        traced(cluster)
        dag = linear_dag(n=3, output_size=0)
        system = MonolithicSystem(cluster)
        system.register(dag)
        records = run_closed_loop(system, dag.name, 1)
        parts = system.metrics.breakdown(records[0].invocation_id)
        assert parts["execute"] == pytest.approx(
            records[0].latency, rel=0.05
        )


class TestStaticFallback:
    def test_without_spans_static_subtraction(self, env, cluster):
        dag = linear_dag(n=2)
        system, records = run_faasflow(cluster, dag, 1)
        parts = system.metrics.breakdown(records[0].invocation_id)
        assert parts["measured"] is False
        assert parts["execute"] + parts["engine"] == pytest.approx(
            records[0].latency, abs=1e-9
        )

    def test_unknown_invocation_raises(self, env, cluster):
        dag = linear_dag(n=2)
        system, _ = run_faasflow(cluster, dag, 1)
        with pytest.raises(KeyError):
            system.metrics.breakdown(999999)


class TestSpanTreeInvariants:
    def test_tree_shape(self, env, cluster):
        tracer = traced(cluster)
        dag = fanout_dag(branches=3)
        system, records = run_faasflow(cluster, dag, 2)
        for record in records:
            if record.status != InvocationStatus.OK:
                continue
            inv = record.invocation_id
            spans = tracer.spans_of(inv)
            roots = [s for s in spans if s.kind == SpanKind.INVOCATION]
            assert len(roots) == 1
            root = roots[0]
            assert root.start == pytest.approx(record.started_at)
            assert root.end == pytest.approx(record.finished_at)
            by_id = {s.span_id: s for s in spans}
            fn_spans = [s for s in spans if s.kind == SpanKind.FUNCTION]
            assert {s.function for s in fn_spans} == set(dag.node_names)
            for span in fn_spans:
                assert span.parent_id == root.span_id
                assert span.start >= root.start - _EPS
                assert span.end <= root.end + _EPS
            for span in spans:
                if span.kind in (
                    SpanKind.EXECUTE, SpanKind.PUT, SpanKind.GET
                ) and span.parent_id is not None:
                    parent = by_id[span.parent_id]
                    assert parent.kind == SpanKind.FUNCTION
                    assert span.start >= parent.start - _EPS
                    assert span.end <= parent.end + _EPS

    def test_execute_spans_cover_every_instance(self, env, cluster):
        tracer = traced(cluster)
        dag = linear_dag(n=3)
        system, records = run_faasflow(cluster, dag, 1)
        executes = tracer.of_kind(SpanKind.EXECUTE)
        assert len(executes) == 3
        assert all(s.status == "ok" for s in executes)

    def test_crashed_execute_marked(self, env, cluster):
        tracer = traced(cluster)
        dag = linear_dag(n=2)
        system, records = run_faasflow(
            cluster, dag, 4, fault_rate=0.3, max_retries=2
        )
        crashed = [
            s for s in tracer.of_kind(SpanKind.EXECUTE)
            if s.status == "crashed"
        ]
        assert crashed  # the injector fired at least once

    def test_substrate_spans_present(self, env, cluster):
        tracer = traced(cluster)
        dag = linear_dag(n=3)
        run_faasflow(cluster, dag, 1)
        assert tracer.of_kind(SpanKind.NET)
        cold = [
            s for s in tracer.of_kind(SpanKind.CONTAINER)
            if s.attrs.get("lifecycle") == "cold-start"
        ]
        assert len(cold) == 3

    def test_cold_start_spans_only_first_run(self, env, cluster):
        tracer = traced(cluster)
        dag = linear_dag(n=3)
        system, _ = run_faasflow(cluster, dag, 2)
        colds = tracer.of_kind(SpanKind.COLD_START)
        assert len(colds) == 3

"""Per-node CPU and memory accounting.

Each simulated node owns a :class:`CPUAllocator` (a counted core resource
that also integrates busy-core time, so experiments can report average
CPU usage like the paper's §5.6-5.7) and a :class:`MemoryAccount`
(non-blocking reservation ledger with a high-water mark, used both for
container provisioning and for FaaStore's reclaimed memory pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .kernel import Environment, SimulationError
from .sync import Resource

__all__ = ["CPUAllocator", "MemoryAccount", "UsageSampler", "OutOfMemoryError"]


class OutOfMemoryError(SimulationError):
    """A memory reservation exceeded the node's capacity."""


class UsageSampler:
    """Integrates a piecewise-constant usage signal over simulated time."""

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self._value = float(initial)
        self._last_change = env.now
        self._area = 0.0
        self._peak = float(initial)
        self._samples: list[tuple[float, float]] = [(env.now, float(initial))]

    @property
    def value(self) -> float:
        return self._value

    @property
    def peak(self) -> float:
        return self._peak

    @property
    def samples(self) -> list[tuple[float, float]]:
        return list(self._samples)

    def set(self, value: float) -> None:
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._last_change = now
        self._value = float(value)
        self._peak = max(self._peak, self._value)
        self._samples.append((now, self._value))

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def average(self, since: float = 0.0) -> float:
        """Time-weighted average of the signal from ``since`` to now."""
        now = self.env.now
        if now <= since:
            return self._value
        area = self._value * (now - self._last_change)
        prev_t, prev_v = None, None
        for t, v in self._samples:
            if prev_t is not None:
                lo = max(prev_t, since)
                hi = min(t, now)
                if hi > lo:
                    area += prev_v * (hi - lo)
            prev_t, prev_v = t, v
        return area / (now - since)


class CPUAllocator:
    """A node's cores: counted acquisition plus busy-time integration."""

    def __init__(self, env: Environment, cores: int):
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.env = env
        self.cores = cores
        self._resource = Resource(env, capacity=cores)
        self.usage = UsageSampler(env)

    def request(self, cores: int = 1):
        """Event granting ``cores`` cores; pair with :meth:`release`."""
        req = self._resource.request(cores)
        req.callbacks.append(lambda _: self.usage.add(cores))
        return req

    def release(self, request) -> None:
        self._resource.release(request)
        self.usage.add(-request.amount)

    def cancel(self, request) -> None:
        """Withdraw a request safely whether or not it was granted.

        Interrupted waiters must not call :meth:`release` directly: the
        usage integral is only credited by the grant callback, so
        releasing an ungranted request would drive it negative.
        """
        if self._resource.holds(request):
            self.release(request)
        else:
            request.cancel()

    @property
    def busy(self) -> int:
        return self._resource.in_use

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def average_usage(self, since: float = 0.0) -> float:
        """Average busy cores over [since, now]."""
        return self.usage.average(since)


@dataclass
class _Reservation:
    tag: str
    amount: float


class MemoryAccount:
    """Non-blocking memory reservation ledger for one node.

    Reservations are tagged so experiments can decompose usage
    (containers vs. engine vs. FaaStore pool).  Over-reserving raises
    :class:`OutOfMemoryError` — the failure mode FaaStore's pessimistic
    quota (Eq. 1-2) is designed to avoid.
    """

    def __init__(self, env: Environment, capacity: float):
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self._reservations: dict[int, _Reservation] = {}
        self._next_id = 0
        self.usage = UsageSampler(env)

    @property
    def reserved(self) -> float:
        return self.usage.value

    @property
    def available(self) -> float:
        return self.capacity - self.reserved

    def reserve(self, amount: float, tag: str = "") -> int:
        """Reserve ``amount`` bytes; returns a handle for :meth:`free`."""
        if amount < 0:
            raise SimulationError(f"negative reservation {amount}")
        if self.reserved + amount > self.capacity + 1e-6:
            raise OutOfMemoryError(
                f"reserving {amount / (1024 * 1024):.1f} MB would exceed node "
                f"capacity ({self.reserved / (1024 * 1024):.1f}"
                f"/{self.capacity / (1024 * 1024):.1f} MB reserved, tag={tag!r})"
            )
        self._next_id += 1
        handle = self._next_id
        self._reservations[handle] = _Reservation(tag, float(amount))
        self.usage.add(amount)
        return handle

    def resize(self, handle: int, new_amount: float) -> None:
        """Grow or shrink an existing reservation (cgroup limit update)."""
        reservation = self._reservations.get(handle)
        if reservation is None:
            raise SimulationError(f"unknown reservation handle {handle}")
        delta = new_amount - reservation.amount
        if delta > 0 and self.reserved + delta > self.capacity + 1e-6:
            raise OutOfMemoryError(
                f"resize by +{delta / (1024 * 1024):.1f} MB exceeds capacity"
            )
        reservation.amount = float(new_amount)
        self.usage.add(delta)

    def free(self, handle: int) -> None:
        reservation = self._reservations.pop(handle, None)
        if reservation is None:
            raise SimulationError(f"unknown reservation handle {handle}")
        self.usage.add(-reservation.amount)

    def reserved_by_tag(self, tag: str) -> float:
        return sum(
            r.amount for r in self._reservations.values() if r.tag == tag
        )

    def average_usage(self, since: float = 0.0) -> float:
        return self.usage.average(since)

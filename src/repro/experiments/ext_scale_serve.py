"""Extension — sustained serving at scale (~1M invocations, ISSUE 10).

The engine bench (``benchmarks/test_bench_engine.py``) measures *how
fast* the hot path is against the frozen pre-PR engines; this
experiment demonstrates *that it sustains*: one simulated cluster
serves on the order of a million open-loop invocations across eight
tenants without accumulating per-invocation state anywhere.

Every O(served) record sink is disabled or drained: clients run with
``keep_records=False`` (status counters only), a reaper process
periodically empties the metrics collector, and the ground truth is
the streaming telemetry registry — mergeable per-(tenant, workflow)
histograms and counters whose size is O(label sets), not O(served).
The table reports the per-tenant rollups straight from those
instruments; the notes pin the lifecycle claim with the measured peak
in-flight and peak live per-engine invocation state.

Defaults target WorkerSP (the paper's engine).  ``--quick`` in the CLI
shrinks the run to ~20k invocations for CI; the full million-scale run
takes tens of minutes of wall clock.
"""

from __future__ import annotations

import time

from ..clients import OpenLoopClient
from ..core import EngineConfig, hash_partition
from ..obs.telemetry import MetricsRegistry
from ..sim import Cluster, ClusterConfig, ContainerSpec, Environment
from ..workloads import chain, diamond, fan, tree
from .common import ExperimentResult

__all__ = ["run"]

# Paper-scale workflow shapes (FaaSFlow's benchmarks are 8-16 node
# DAGs), cycled over the tenants; service times small enough that the
# run is control-plane-bound, output sizes zero so the data plane is
# idle either way.
_SHAPES = ("chain", "fan", "diamond", "tree")


def _make_dag(shape: str, name: str):
    if shape == "chain":
        return chain(length=12, name=name, service_time=0.01, output_size=0.0)
    if shape == "fan":
        return fan(
            width=8, name=name, service_time=0.01,
            hub_output=0.0, branch_output=0.0,
        )
    if shape == "diamond":
        return diamond(width=6, name=name, service_time=0.01, output_size=0.0)
    return tree(
        depth=3, fanout=2, name=name, service_time=0.01, output_size=0.0
    )


def _reaper(env, metrics, interval: float):
    """Periodically empty the metrics collector's record list.

    At million scale the collector would otherwise retain every
    ``InvocationRecord``; telemetry (mergeable sketches) is the
    scalable account of the run, so the raw records can go.
    """
    while True:
        yield env.timeout(interval)
        metrics.invocations.clear()
        metrics.transfers.clear()


def run(
    invocations: int = 1_000_000,
    engine: str = "worker",
    tenants: int = 8,
    workers: int = 8,
    rate_per_minute: float = 1_200.0,
    batch_control: bool = False,
    seed: int = 13,
) -> ExperimentResult:
    if engine not in ("worker", "master", "dataflow"):
        raise ValueError("engine must be 'worker', 'master', or 'dataflow'")
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if engine == "master" and rate_per_minute > 300.0:
        # The central engine serializes every assignment; paper-scale
        # DAGs overload it beyond ~5 invocations/s per tenant.
        rate_per_minute = 150.0
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(
            workers=workers,
            container=ContainerSpec(cold_start_time=0.05),
        ),
    )
    telemetry = MetricsRegistry(clock=lambda: env.now)
    cluster.install_telemetry(telemetry)
    config = EngineConfig(
        ship_data=False,
        worker_process_time=0.001,
        master_process_time=0.001,
        dataflow_trigger_time=0.0005,
        local_trigger_time=0.0002,
        batch_control=batch_control,
    )
    if engine == "worker":
        from ..core import FaaSFlowSystem

        system = FaaSFlowSystem(cluster, config)
    elif engine == "dataflow":
        from ..core import DataflowSystem

        system = DataflowSystem(cluster, config)
    else:
        from ..core import HyperFlowServerlessSystem

        system = HyperFlowServerlessSystem(cluster, config)

    tenant_rows = []
    tenant_map: dict[str, str] = {}
    for index in range(tenants):
        tenant = f"tenant-{index}"
        shape = _SHAPES[index % len(_SHAPES)]
        workflow = f"{shape}-{index}"
        dag = _make_dag(shape, workflow)
        placement = hash_partition(dag, cluster.worker_names())
        if engine == "master":
            system.register(dag, placement)
        else:
            system.deploy(dag, placement, prewarm=2)
        tenant_map[workflow] = tenant
        tenant_rows.append((tenant, workflow))
    system.set_tenants(tenant_map)

    per_tenant = max(1, invocations // tenants)
    clients = [
        OpenLoopClient(
            system,
            workflow,
            per_tenant,
            rate_per_minute,
            seed=seed + index,
            keep_records=False,
        )
        for index, (_, workflow) in enumerate(tenant_rows)
    ]
    env.process(_reaper(env, system.metrics, 60.0), name="metrics-reaper")
    started = time.perf_counter()
    procs = [
        env.process(client.run(), name=f"client:{tenant}")
        for (tenant, _), client in zip(tenant_rows, clients)
    ]
    env.run(until=env.all_of(procs))
    wall = time.perf_counter() - started
    simulated = env.now

    rows = []
    total_served = 0
    total_ok = 0
    for (tenant, workflow), client in zip(tenant_rows, clients):
        served = sum(client.status_counts.values())
        ok = client.status_counts.get("ok", 0)
        total_served += served
        total_ok += ok
        latency = telemetry.histogram(
            "workflow.latency",
            tenant=tenant, workflow=workflow, engine=system.engine_label
            if hasattr(system, "engine_label") else system.mode,
        )
        rows.append(
            [
                tenant,
                workflow,
                served,
                f"{ok / served * 100:.2f}%" if served else "-",
                round(latency.mean * 1000, 1) if latency.count else "-",
                round(latency.quantile(99) * 1000, 1)
                if latency.count
                else "-",
            ]
        )
    peak_live = 0
    if engine != "master":
        for eng in system.engines.values():
            for structure in eng._structures.values():
                peak_live = max(peak_live, structure.peak_live_invocations)
    notes = [
        f"{total_served:,} invocations served ({total_ok:,} ok) over "
        f"{simulated:,.0f} simulated seconds = "
        f"{total_served / simulated:,.0f} invocations/simulated-second "
        f"sustained; {wall:,.1f}s wall = {total_served / wall:,.0f} "
        "invocations/wall-second through the simulator",
        f"state lifecycle: peak in-flight {system.peak_in_flight} "
        f"(client-side O(in-flight): records not retained), peak live "
        f"per-engine invocation state {peak_live} — both set by "
        f"concurrency, not by the {total_served:,} served",
        f"telemetry registry holds {len(telemetry)} instruments for "
        f"{tenants} tenants — O(label sets), not O(invocations)",
        f"engine={engine}, batch_control={batch_control}, "
        f"{rate_per_minute:.0f} arrivals/min/tenant",
    ]
    return ExperimentResult(
        experiment="ext-scale-serve",
        title=(
            f"Sustained serving at scale: {total_served:,} open-loop "
            f"invocations, {tenants} tenants, {engine} engine"
        ),
        headers=[
            "tenant",
            "workflow",
            "served",
            "ok",
            "mean (ms)",
            "p99 (ms)",
        ],
        rows=rows,
        notes=notes,
        data={
            "engine": engine,
            "batch_control": batch_control,
            "total_served": total_served,
            "total_ok": total_ok,
            "simulated_seconds": simulated,
            "wall_seconds": wall,
            "invocations_per_wall_second": total_served / wall,
            "peak_in_flight": system.peak_in_flight,
            "peak_live_invocations": peak_live,
            "telemetry_instruments": len(telemetry),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

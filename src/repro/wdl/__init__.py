"""Workflow Definition Language: YAML workflows -> DAGs."""

from .parser import load_workflow, parse_workflow, workflow_from_dict
from .steps import (
    ForeachStep,
    ParallelStep,
    SequenceStep,
    Step,
    SwitchCase,
    SwitchStep,
    TaskStep,
    WDLError,
)
from .units import UnitError, format_size, parse_duration, parse_size

__all__ = [
    "ForeachStep",
    "format_size",
    "load_workflow",
    "ParallelStep",
    "parse_duration",
    "parse_size",
    "parse_workflow",
    "SequenceStep",
    "Step",
    "SwitchCase",
    "SwitchStep",
    "TaskStep",
    "UnitError",
    "WDLError",
    "workflow_from_dict",
]

"""The analytic progress mode of the fluid network model.

``progress="analytic"`` settles each flow class only at its *own*
component's rebalance points and schedules completions at absolute
times, which makes byte trajectories independent of unrelated traffic's
event cadence — the property the shard runtime's exactness rests on.
``progress="stepped"`` (the default) remains the frozen-seed-pinned
behavior of BENCH_network.json.
"""

import math

import pytest

from repro.experiments.fig_scale import drive_network
from repro.sim import network
from repro.sim.kernel import Environment, SimulationError
from repro.sim.network import MB, Network, NetworkConfig


def _run(progress, nodes=16, flows=120, seed=23):
    """fig_scale's plan against a network in the given progress mode."""
    import repro.experiments.fig_scale as fig_scale

    plan = fig_scale.make_plan(nodes, flows, seed=seed)
    env = Environment()
    net = Network(env, NetworkConfig(progress=progress))
    nics = [net.attach(f"n{i}", 100 * MB) for i in range(nodes)]
    for _gap, at, src, dst, size in plan:
        event = env.schedule_at(at)
        event.callbacks.append(
            lambda _e, s=src, d=dst, z=size: net.transfer(nics[s], nics[d], z)
        )
    env.run()
    return net, env


def test_invalid_progress_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Network(env, NetworkConfig(progress="psychic"))


def test_default_is_stepped():
    assert NetworkConfig().progress == "stepped"
    env = Environment()
    assert Network(env, NetworkConfig())._analytic is False


def test_analytic_matches_stepped_closely():
    """Same plan, same flows, same sharing physics: the two modes agree
    on every record to float tolerance (they are *not* bit-identical —
    stepped accumulates advances, analytic integrates per class)."""
    stepped, _ = _run("stepped")
    analytic, _ = _run("analytic")
    assert len(stepped.records) == len(analytic.records)
    a_sorted = sorted(
        (r.src, r.dst, r.size, r.started_at, r.finished_at)
        for r in analytic.records
    )
    s_sorted = sorted(
        (r.src, r.dst, r.size, r.started_at, r.finished_at)
        for r in stepped.records
    )
    for a, s in zip(a_sorted, s_sorted):
        assert a[:3] == s[:3]
        assert math.isclose(a[3], s[3], rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(a[4], s[4], rel_tol=1e-6, abs_tol=1e-6)


def test_analytic_totals_match_stepped():
    stepped, env_s = _run("stepped")
    analytic, env_a = _run("analytic")
    assert math.isclose(
        stepped.total_bytes, analytic.total_bytes, rel_tol=1e-12
    )
    assert math.isclose(env_s.now, env_a.now, rel_tol=1e-6)


def test_analytic_single_flow_exact():
    env = Environment()
    net = Network(env, NetworkConfig(progress="analytic"))
    a = net.attach("a", 10 * MB)
    b = net.attach("b", 10 * MB)
    net.transfer(a, b, 20 * MB)
    env.run()
    (record,) = net.records
    # 20 MB over a 10 MB/s bottleneck (propagation latency applies to
    # control messages, not bulk flows).
    assert math.isclose(
        record.finished_at - record.started_at, 2.0, rel_tol=1e-12
    )


def test_analytic_bandwidth_change_applies():
    env = Environment()
    net = Network(env, NetworkConfig(progress="analytic"))
    a = net.attach("a", 10 * MB)
    b = net.attach("b", 10 * MB)
    net.transfer(a, b, 30 * MB)

    def tighten(_event):
        net.set_nic_bandwidth(b, 5 * MB)

    env.schedule_at(1.0).callbacks.append(tighten)
    env.run()
    (record,) = net.records
    # 10 MB in the first second at 10 MB/s, remaining 20 MB at 5 MB/s.
    assert math.isclose(
        record.finished_at - record.started_at, 1.0 + 4.0, rel_tol=1e-9
    )


def test_remote_nic_accounting():
    env = Environment()
    net = Network(env, NetworkConfig(progress="analytic"))
    a = net.attach("a", 10 * MB)
    proxy = net.attach_remote("far", 10 * MB)
    assert proxy.remote is True
    net.transfer(a, proxy, 5 * MB)
    env.run()
    # Completions against a remote proxy are exported for barrier
    # delivery instead of (only) being accounted locally.
    assert len(net.cross_outbox) == 1
    assert net.cross_outbox[0].dst == "far"


def test_stepped_mode_unchanged_by_refactor():
    """The frozen-seed contract: stepped mode still produces exactly the
    records the pre-shard code produced (spot check via the public
    drive path; the full pin lives in benchmarks/test_bench_network.py)."""
    out1 = drive_network(network, 16, 80, seed=5, collect_records=True)
    out2 = drive_network(network, 16, 80, seed=5, collect_records=True)
    assert out1["records"] == out2["records"]

"""FaaSFlow reproduction: worker-side serverless workflow scheduling.

A from-scratch reproduction of *"FaaSFlow: Enable Efficient Workflow
Execution for Function-as-a-Service"* (Li et al., ASPLOS 2022): the
WorkerSP schedule pattern, the FaaStore adaptive hybrid storage library,
the graph scheduler with the greedy grouping algorithm, the
HyperFlow-serverless (MasterSP) baseline, the paper's 8 workflow
benchmarks, and a discrete-event cluster substrate to run them on.

Quickstart::

    from repro import (
        Cluster, ClusterConfig, Environment,
        FaaSFlowSystem, GraphScheduler, run_closed_loop, parse_workflow,
    )

    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    dag = parse_workflow(open("workflow.yaml").read())
    scheduler = GraphScheduler(cluster)
    system = FaaSFlowSystem(cluster)
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    records = run_closed_loop(system, dag.name, 10)
"""

from .clients import (
    ClosedLoopClient,
    OpenLoopClient,
    run_closed_loop,
    run_open_loop,
)
from .core import (
    EngineConfig,
    FaaSFlowSystem,
    FaaStorePolicy,
    CancelCause,
    CancelKind,
    FaultDriver,
    FaultInjector,
    FaultPlan,
    FunctionFailure,
    NetworkDegradation,
    NodeCrash,
    ProcessRegistry,
    RetryPolicy,
    TaskCancelled,
    GraphScheduler,
    GroupingConfig,
    GroupingResult,
    group_functions,
    hash_partition,
    HyperFlowServerlessSystem,
    MemoryUsageHistory,
    MonolithicSystem,
    Placement,
    ReclamationConfig,
    RemoteStorePolicy,
    WorkerEngine,
    WorkflowStructure,
    per_node_quotas,
    workflow_quota,
)
from .dag import (
    CriticalPath,
    critical_path,
    DataEdge,
    DAGError,
    estimate_edge_weights,
    FunctionNode,
    WorkflowDAG,
)
from .metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
    percentile,
    TransferEvent,
)
from .parallel import ParallelRunner, derive_seed
from .sim import (
    Cluster,
    ClusterConfig,
    ContainerSpec,
    Environment,
    GB,
    KB,
    MB,
    NodeConfig,
)
from .wdl import load_workflow, parse_workflow, WDLError, workflow_from_dict
from .workloads import ALL_BENCHMARKS, BENCHMARKS, build, build_all

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "build",
    "build_all",
    "ClosedLoopClient",
    "Cluster",
    "ClusterConfig",
    "ContainerSpec",
    "critical_path",
    "CriticalPath",
    "DataEdge",
    "DAGError",
    "EngineConfig",
    "Environment",
    "estimate_edge_weights",
    "FaaSFlowSystem",
    "FaaStorePolicy",
    "CancelCause",
    "CancelKind",
    "FaultDriver",
    "FaultInjector",
    "FaultPlan",
    "FunctionFailure",
    "NetworkDegradation",
    "NodeCrash",
    "ProcessRegistry",
    "RetryPolicy",
    "TaskCancelled",
    "FunctionNode",
    "GB",
    "GraphScheduler",
    "GroupingConfig",
    "GroupingResult",
    "group_functions",
    "hash_partition",
    "HyperFlowServerlessSystem",
    "InvocationRecord",
    "InvocationStatus",
    "KB",
    "load_workflow",
    "MB",
    "MemoryUsageHistory",
    "MetricsCollector",
    "MonolithicSystem",
    "NodeConfig",
    "OpenLoopClient",
    "ParallelRunner",
    "derive_seed",
    "parse_workflow",
    "percentile",
    "per_node_quotas",
    "Placement",
    "ReclamationConfig",
    "RemoteStorePolicy",
    "run_closed_loop",
    "run_open_loop",
    "TransferEvent",
    "WDLError",
    "WorkerEngine",
    "WorkflowDAG",
    "workflow_from_dict",
    "workflow_quota",
    "WorkflowStructure",
]

"""Unit tests for DataflowSP: function-level triggering + eager shipping."""

from collections import Counter

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    DataflowEngine,
    DataflowSystem,
    EngineConfig,
    FaultDriver,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    Tracer,
)
from repro.metrics import InvocationStatus
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

from .conftest import MB, all_on, fanout_dag, linear_dag, round_robin


def drain(env):
    env.run(until=env.now)


def assert_no_zombies(system, cluster):
    assert system.registry.live_count == 0
    for worker in cluster.workers:
        assert worker.cpu.busy == 0


def make_system(cluster, **config_kwargs):
    config_kwargs.setdefault("ship_data", False)
    return DataflowSystem(cluster, EngineConfig(**config_kwargs))


def deploy_with_quotas(system, dag, placement, quota=64 * MB):
    """Deploy with FaaStore room on every worker (quotas default to 0,
    which would refuse both local writes and eager pushes)."""
    system.deploy(
        dag,
        placement,
        quotas={w.name: quota for w in system.cluster.workers},
    )


def transfer_phases(system):
    return Counter((t.phase, t.local) for t in system.metrics.transfers)


class TestTriggering:
    def test_end_to_end_completion(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.OK
        assert record.cold_starts == 3

    def test_cross_worker_chain(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.OK

    def test_system_identity(self, cluster):
        system = make_system(cluster)
        assert system.mode == "dataflow-sp"
        assert system.engine_label == "dataflow"
        assert all(
            isinstance(engine, DataflowEngine)
            for engine in system.engines.values()
        )

    def test_every_function_executes_exactly_once(self, env, cluster):
        tracer = Tracer()
        system = DataflowSystem(
            cluster, EngineConfig(ship_data=False), tracer=tracer
        )
        dag = fanout_dag(branches=4)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        records = run_closed_loop(system, "fan", 3)
        drain(env)
        for record in records:
            assert record.status == InvocationStatus.OK
            counts = tracer.execution_counts(record.invocation_id)
            assert counts == {name: 1 for name in dag.node_names}

    def test_join_waits_for_all_predecessors(self, env, cluster):
        """The tail of a fan-out must fire on its *last* token, never
        on the first."""
        tracer = Tracer()
        system = DataflowSystem(
            cluster, EngineConfig(ship_data=False), tracer=tracer
        )
        dag = fanout_dag(branches=3)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        record = env.run(until=env.process(system.invoke("fan")))
        assert record.status == InvocationStatus.OK
        executed_at = {}
        for event in tracer.of_invocation(record.invocation_id):
            if event.kind == "function-executed":
                executed_at[event.function] = event.time
        assert executed_at["tail"] >= max(
            executed_at[f"b{i}"] for i in range(3)
        )

    def test_tokens_flow_cross_worker(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        system.deploy(dag, round_robin(dag, ["worker-0", "worker-1"]))
        env.run(until=env.process(system.invoke("lin")))
        received = sum(e.tokens_received for e in system.engines.values())
        assert received == 3  # every edge crosses workers
        handled = sum(e.events_handled for e in system.engines.values())
        assert handled >= 4  # one token step per trigger at minimum
        busy = sum(e.busy_time for e in system.engines.values())
        assert busy == pytest.approx(
            handled * system.config.dataflow_trigger_time
        )

    def test_parallel_tokens_do_not_serialize(self):
        """The structural claim: N same-instant tokens cost one trigger
        time, not N (WorkerSP's serialized loop pays N)."""
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=1, container=ContainerSpec(cold_start_time=0.0)
            ),
        )
        trigger = 0.01
        system = DataflowSystem(
            cluster,
            EngineConfig(
                ship_data=False,
                dataflow_trigger_time=trigger,
                worker_process_time=trigger,
            ),
        )
        from repro.dag import WorkflowDAG

        dag = WorkflowDAG("fan")
        dag.add_function("head", service_time=0.0, output_size=0)
        dag.add_function("tail", service_time=0.0, output_size=0)
        for i in range(8):
            b = f"b{i}"
            dag.add_function(b, service_time=0.0, output_size=0)
            dag.add_edge("head", b, data_size=0)
            dag.add_edge(b, "tail", data_size=0)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("fan")))
        assert record.status == InvocationStatus.OK
        # head trigger + branch wave + tail wave: ~3 trigger steps of
        # engine latency, far below the ~18 a serialized loop would pay.
        assert record.latency < 8 * trigger


class TestEagerShipping:
    def _fan_system(self, workers=("worker-0", "worker-1"), **config_kwargs):
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=3,
                container=ContainerSpec(cold_start_time=0.1),
                storage_bandwidth=50 * MB,
            ),
        )
        config_kwargs.setdefault("ship_data", True)
        system = DataflowSystem(cluster, EngineConfig(**config_kwargs))
        dag = fanout_dag(branches=3)
        deploy_with_quotas(system, dag, round_robin(dag, list(workers)))
        return env, cluster, system

    def test_pushes_seed_consumer_cache(self):
        env, cluster, system = self._fan_system()
        record = env.run(until=env.process(system.invoke("fan")))
        drain(env)
        assert record.status == InvocationStatus.OK
        phases = transfer_phases(system)
        # Worker-to-worker pushes happened...
        assert phases[("push", False)] > 0
        # ...and they arrived in time: every consumer read was local.
        assert phases[("get", False)] == 0
        assert phases[("get", True)] > 0
        pushed = sum(e.pushes_started for e in system.engines.values())
        assert pushed == phases[("push", False)]

    def test_no_pushes_when_disabled(self):
        env, cluster, system = self._fan_system(eager_ship=False)
        record = env.run(until=env.process(system.invoke("fan")))
        drain(env)
        assert record.status == InvocationStatus.OK
        phases = transfer_phases(system)
        assert phases[("push", False)] == 0
        assert phases[("get", False)] > 0  # back to remote read-through
        assert sum(e.pushes_started for e in system.engines.values()) == 0

    def test_eager_shipping_no_slower(self):
        def latency(eager):
            env, cluster, system = self._fan_system(eager_ship=eager)
            record = env.run(until=env.process(system.invoke("fan")))
            drain(env)
            assert record.status == InvocationStatus.OK
            return record.latency

        assert latency(True) <= latency(False)

    def test_quota_refusal_degrades_to_remote_reads(self, env, cluster):
        """With no FaaStore quota every push is refused at try_put: the
        run must still complete, through remote gets."""
        system = make_system(cluster, ship_data=True)
        dag = fanout_dag(branches=3)
        system.deploy(dag, round_robin(dag, ["worker-0", "worker-1"]))
        record = env.run(until=env.process(system.invoke("fan")))
        drain(env)
        assert record.status == InvocationStatus.OK
        phases = transfer_phases(system)
        assert phases[("push", False)] == 0  # refused, recorded as spill
        assert phases[("get", False)] > 0
        assert_no_zombies(system, cluster)

    def test_db_marked_producer_not_pushed(self):
        """Algorithm 1 can pin a producer's output to remote storage
        (storage_type "DB"); eager shipping must respect that."""
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=3,
                container=ContainerSpec(cold_start_time=0.1),
                storage_bandwidth=50 * MB,
            ),
        )
        system = DataflowSystem(cluster, EngineConfig(ship_data=True))
        dag = fanout_dag(branches=2)
        dag.node("head").metadata["storage_type"] = "DB"
        deploy_with_quotas(
            system, dag, round_robin(dag, ["worker-0", "worker-1"])
        )
        record = env.run(until=env.process(system.invoke("fan")))
        drain(env)
        assert record.status == InvocationStatus.OK
        pushed_producers = {
            t.producer for t in system.metrics.transfers if t.phase == "push"
        }
        assert "head" not in pushed_producers


class TestFaultIntegration:
    def test_retry_recovers_from_crash(self, env, cluster):
        class CrashOnce(FaultInjector):
            def __init__(self):
                super().__init__(default_rate=0.0)
                self._armed = True

            def should_crash(self, function):
                if self._armed:
                    self._armed = False
                    self.injected += 1
                    return True
                return False

        system = DataflowSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=2),
            faults=CrashOnce(),
        )
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        drain(env)
        assert record.status == InvocationStatus.OK
        assert record.retries >= 1
        assert_no_zombies(system, cluster)

    def test_failed_invocation_leaves_no_processes(self, env, cluster):
        system = DataflowSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=0),
            faults=FaultInjector(default_rate=1.0, seed=3),
        )
        dag = linear_dag(n=3)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        records = run_closed_loop(system, "lin", 3)
        drain(env)
        assert all(r.status == InvocationStatus.FAILED for r in records)
        assert_no_zombies(system, cluster)
        assert system.registry.tracked_invocations == 0

    def test_timed_out_invocation_leaves_no_processes(self, env, cluster):
        system = make_system(cluster, execution_timeout=0.2)
        dag = fanout_dag(branches=6)
        system.deploy(dag, all_on(dag, "worker-0"))
        records = run_closed_loop(system, "fan", 2)
        drain(env)
        assert all(r.status == InvocationStatus.TIMEOUT for r in records)
        assert_no_zombies(system, cluster)


def _crash_run(n=4, crash_at=1.0, recovery=3.0, seed=None):
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(workers=3, container=ContainerSpec(cold_start_time=0.1)),
    )
    config = EngineConfig(ship_data=False, max_retries=3, execution_timeout=120.0)
    from repro.workloads import build

    dag = build("epigenomics")
    system = DataflowSystem(cluster, config)
    from repro.core import hash_partition

    system.deploy(dag, hash_partition(dag, cluster.worker_names()))
    if seed is None:
        plan = FaultPlan(
            node_crashes=(
                NodeCrash(node="worker-1", at=crash_at, recovery=recovery),
            )
        )
    else:
        plan = FaultPlan.random(
            cluster.worker_names(), horizon=10.0, crashes=2,
            recovery=recovery, seed=seed,
        )
    driver = FaultDriver(cluster, plan).attach(system)
    driver.start()
    records = run_closed_loop(system, dag.name, n)
    drain(env)
    return env, cluster, system, driver, records


class TestNodeCrashes:
    def test_recovers_by_retriggering(self):
        """DataflowSP inherits WorkerSP's recovery semantics: in-flight
        tokens queue while the node is down and killed tasks are
        re-triggered at engine level, not via runtime retries."""
        env, cluster, system, driver, records = _crash_run()
        assert driver.node_crashes_fired == 1
        assert all(r.status == InvocationStatus.OK for r in records)
        assert system.retriggered > 0
        assert sum(r.retries for r in records) == 0
        assert any(e.crash_count == 1 for e in system.engines.values())
        assert_no_zombies(system, cluster)

    def test_deterministic_replay_under_seed(self):
        def fingerprint():
            _, _, system, driver, records = _crash_run(seed=21)
            return (
                [r.status for r in records],
                [round(r.latency, 12) for r in records],
                [r.retries for r in records],
                driver.node_crashes_fired,
            )

        assert fingerprint() == fingerprint()


class TestTelemetryLabel:
    def test_invocations_labeled_engine_dataflow(self, env, cluster):
        from repro.obs.telemetry import MetricsRegistry

        registry = MetricsRegistry(clock=lambda: env.now)
        cluster.install_telemetry(registry)
        system = make_system(cluster)
        dag = linear_dag(n=2)
        system.deploy(dag, all_on(dag, "worker-0"))
        env.run(until=env.process(system.invoke("lin")))
        drain(env)
        snapshot = registry.snapshot()
        labels = [
            m["labels"]
            for m in snapshot["metrics"]
            if m["name"] == "workflow.invocations"
        ]
        assert labels and all(l["engine"] == "dataflow" for l in labels)

"""Streaming telemetry: mergeable metric sketches on simulated time.

The dashboard layer the per-run span traces cannot be: spans keep one
object per occurrence (bounded ring, post-hoc analysis), while a
:class:`MetricsRegistry` folds every event into constant-memory
instruments the moment it happens — counters, gauges, and log-bucketed
histograms with exact count/sum and bounded-relative-error quantiles —
keyed by labeled dimensions (tenant, workflow, function, node, engine,
phase) and windowed into a time series on *simulated* time.

Three properties carry the design:

- **Zero-cost off.**  Producers hold :data:`NULL_TELEMETRY` (a
  :class:`NullRegistry`) by default and guard every emit behind
  ``telemetry.enabled`` — exactly the ``NULL_SPANS`` discipline, so an
  uninstrumented run pays one truthiness check per emit point.
- **Mergeable.**  Every instrument has an exact, deterministic merge:
  counters and histogram buckets add, gauges are last-writer-wins on
  the simulated clock.  A sharded run collects one registry per shard
  and merges their :meth:`~MetricsRegistry.snapshot`\\ s with
  :func:`merge_snapshots`; because the merge runs in a deterministic
  order (shard/cell order) over per-shard values that are themselves
  bit-identical to a single-process run's, merged sharded telemetry is
  value-identical to the unsharded aggregate (asserted in the test
  suite and in ``benchmarks/test_bench_obs.py``).
- **Bounded error.**  Histogram buckets grow geometrically (default
  ``growth=1.1``), so any quantile read off a bucket's upper bound is
  within a factor ``growth`` of the true order statistic while
  ``count``/``sum``/``min``/``max`` stay exact.

Snapshots are plain JSON-able dicts (see :meth:`MetricsRegistry
.snapshot`) written as ``*-telemetry.json`` files and inspected with
``faasflow-trace report`` / ``faasflow-trace slo``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

__all__ = [
    "LogHistogram",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_TELEMETRY",
    "merge_snapshots",
    "write_telemetry_json",
    "read_telemetry_json",
    "validate_snapshot",
    "metric_key",
    "find_metrics",
    "record_invocation_metrics",
]

PathLike = Union[str, Path]

DEFAULT_GROWTH = 1.1
DEFAULT_WINDOW = 1.0


def metric_key(name: str, labels: dict) -> tuple:
    """Canonical instrument identity: name + sorted label items."""
    return (name, tuple(sorted(labels.items())))


class LogHistogram:
    """Log-bucketed streaming histogram with exact count/sum/min/max.

    Positive values land in bucket ``ceil(log(v) / log(growth))`` (the
    bucket covering ``(growth**(i-1), growth**i]``); zeros are counted
    separately; negative values are rejected.  Quantiles come off a
    bucket's upper bound, clamped to the exact observed ``[min, max]``,
    so their relative error is bounded by ``growth - 1``.
    """

    __slots__ = (
        "growth", "count", "sum", "min", "max", "zeros", "buckets",
        "windows", "_log_growth", "_sorted",
    )

    def __init__(self, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0
        self.buckets: dict[int, int] = {}
        # Sorted bucket indices, rebuilt lazily by quantile(): most
        # observations hit existing buckets, so quantile sweeps over
        # large snapshots stop paying O(B log B) per call.
        self._sorted: Optional[list[int]] = None
        # window index -> [count, sum]: the simulated-time series.
        self.windows: dict[int, list] = {}

    def bucket_index(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_growth - 1e-12))

    def bucket_upper(self, index: int) -> float:
        return self.growth ** index

    def observe(self, value: float, window: Optional[int] = None) -> None:
        if value < 0:
            raise ValueError(f"histogram value must be >= 0, got {value}")
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zeros += 1
        else:
            index = self.bucket_index(value)
            existing = self.buckets.get(index)
            if existing is None:
                self.buckets[index] = 1
                self._sorted = None  # a new bucket key invalidates the order
            else:
                self.buckets[index] = existing + 1
        if window is not None:
            slot = self.windows.get(window)
            if slot is None:
                self.windows[window] = [1, value]
            else:
                slot[0] += 1
                slot[1] += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic bounded-error quantile (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"quantile q={q} outside [0, 100]")
        if self.count == 0:
            raise ValueError("quantile of empty histogram")
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = self.zeros
        if rank <= seen:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.buckets)
        for index in self._sorted:
            seen += self.buckets[index]
            if rank <= seen:
                # Clamp to the exact envelope so e.g. a single-bucket
                # histogram still reports values it actually saw.
                return min(max(self.bucket_upper(index), self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def fraction_below(self, threshold: float) -> float:
        """Fraction of observations whose bucket bound is <= threshold.

        Deterministic and conservative: the bucket containing
        ``threshold`` counts only if its upper bound fits, so the answer
        never overstates attainment by more than one bucket's width.
        """
        if self.count == 0:
            return 1.0
        if threshold < 0:
            return 0.0
        attained = self.zeros
        for index, count in self.buckets.items():
            if self.bucket_upper(index) <= threshold:
                attained += count
        return attained / self.count

    def merge(self, other: "LogHistogram") -> None:
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growth {self.growth} != "
                f"{other.growth}"
            )
        self.count += other.count
        self.sum += other.sum
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        self.zeros += other.zeros
        if other.buckets:
            self._sorted = None
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        for window, (count, total) in other.windows.items():
            slot = self.windows.get(window)
            if slot is None:
                self.windows[window] = [count, total]
            else:
                slot[0] += count
                slot[1] += total

    def to_dict(self) -> dict:
        out = {
            "growth": self.growth,
            "count": self.count,
            "sum": self.sum,
            "zeros": self.zeros,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
            "windows": {
                str(window): list(self.windows[window])
                for window in sorted(self.windows)
            },
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        hist = cls(growth=data.get("growth", DEFAULT_GROWTH))
        hist.count = data["count"]
        hist.sum = data["sum"]
        hist.zeros = data.get("zeros", 0)
        hist.min = data.get("min", math.inf)
        hist.max = data.get("max", -math.inf)
        hist.buckets = {
            int(index): count for index, count in data["buckets"].items()
        }
        hist.windows = {
            int(window): list(pair)
            for window, pair in data.get("windows", {}).items()
        }
        return hist


class Counter:
    """A monotone float total with a per-window delta series."""

    __slots__ = ("total", "windows")

    def __init__(self):
        self.total = 0.0
        self.windows: dict[int, float] = {}

    def inc(self, value: float = 1.0, window: Optional[int] = None) -> None:
        if value < 0:
            raise ValueError(f"counter increments must be >= 0, got {value}")
        self.total += value
        if window is not None:
            self.windows[window] = self.windows.get(window, 0.0) + value

    def merge(self, other: "Counter") -> None:
        self.total += other.total
        for window, value in other.windows.items():
            self.windows[window] = self.windows.get(window, 0.0) + value

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "windows": {
                str(window): self.windows[window]
                for window in sorted(self.windows)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Counter":
        counter = cls()
        counter.total = data["total"]
        counter.windows = {
            int(window): value
            for window, value in data.get("windows", {}).items()
        }
        return counter


class Gauge:
    """A last-writer-wins instantaneous value on the simulated clock.

    The merge rule (keep the larger ``(time, value)`` pair) is
    deterministic but order-free, so gauges are safe to merge across
    shards — at the cost of only ever reflecting the latest writer.
    """

    __slots__ = ("value", "time")

    def __init__(self):
        self.value = 0.0
        self.time = -math.inf

    def set(self, value: float, time: float) -> None:
        if time >= self.time:
            self.value = value
            self.time = time

    def merge(self, other: "Gauge") -> None:
        if (other.time, other.value) > (self.time, self.value):
            self.value = other.value
            self.time = other.time

    def to_dict(self) -> dict:
        return {"value": self.value, "time": self.time}

    @classmethod
    def from_dict(cls, data: dict) -> "Gauge":
        gauge = cls()
        gauge.value = data["value"]
        gauge.time = data["time"]
        return gauge


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": LogHistogram}


class MetricsRegistry:
    """Get-or-create instrument store keyed by (name, labels).

    ``clock`` is a zero-argument callable returning the current
    *simulated* time (usually ``lambda: env.now``); observations fall
    into window ``int(now // window)`` of that clock.  All three emit
    shortcuts (:meth:`inc`, :meth:`observe`, :meth:`set_gauge`) accept
    labels as keyword arguments.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        window: float = DEFAULT_WINDOW,
        growth: float = DEFAULT_GROWTH,
    ):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.window = float(window)
        self.growth = float(growth)
        # (name, labels-tuple) -> (kind, labels-dict, instrument)
        self._instruments: dict[tuple, tuple] = {}

    def _window_index(self) -> int:
        return int(self.clock() // self.window)

    def _get(self, kind: str, name: str, labels: dict):
        key = metric_key(name, labels)
        entry = self._instruments.get(key)
        if entry is None:
            if kind == "histogram":
                instrument = LogHistogram(growth=self.growth)
            else:
                instrument = _KINDS[kind]()
            self._instruments[key] = (kind, dict(labels), instrument)
            return instrument
        if entry[0] != kind:
            raise ValueError(
                f"metric {name!r} {labels} already registered as {entry[0]}, "
                f"requested as {kind}"
            )
        return entry[2]

    # -- instrument access ----------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> LogHistogram:
        return self._get("histogram", name, labels)

    # -- emit shortcuts ---------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        self._get("counter", name, labels).inc(value, self._window_index())

    def observe(self, name: str, value: float, **labels) -> None:
        self._get("histogram", name, labels).observe(
            value, self._window_index()
        )

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._get("gauge", name, labels).set(value, self.clock())

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Deterministic JSON-able dump of every instrument."""
        metrics = []
        for key in sorted(self._instruments):
            kind, labels, instrument = self._instruments[key]
            metrics.append(
                {
                    "kind": kind,
                    "name": key[0],
                    "labels": {k: labels[k] for k in sorted(labels)},
                    **instrument.to_dict(),
                }
            )
        return {
            "type": "telemetry",
            "window": self.window,
            "growth": self.growth,
            "metrics": metrics,
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot's instruments into this registry."""
        for entry in snapshot.get("metrics", []):
            kind = entry["kind"]
            instrument = self._get(kind, entry["name"], entry["labels"])
            instrument.merge(_KINDS[kind].from_dict(entry))

    def clear(self) -> None:
        self._instruments.clear()


class NullRegistry:
    """The disabled registry: every operation is a no-op.

    Producers hold :data:`NULL_TELEMETRY` by default and guard emits
    behind ``telemetry.enabled``, mirroring :data:`NULL_SPANS` — an
    uninstrumented run costs one truthiness check per emit point.
    """

    enabled = False
    window = DEFAULT_WINDOW
    growth = DEFAULT_GROWTH

    class _NullInstrument:
        __slots__ = ()

        def inc(self, *args, **kwargs) -> None:
            return None

        def observe(self, *args, **kwargs) -> None:
            return None

        def set(self, *args, **kwargs) -> None:
            return None

        def merge(self, *args, **kwargs) -> None:
            return None

    _NULL = _NullInstrument()

    def counter(self, name: str, **labels):
        return self._NULL

    def gauge(self, name: str, **labels):
        return self._NULL

    def histogram(self, name: str, **labels):
        return self._NULL

    def inc(self, *args, **kwargs) -> None:
        return None

    def observe(self, *args, **kwargs) -> None:
        return None

    def set_gauge(self, *args, **kwargs) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {
            "type": "telemetry",
            "window": self.window,
            "growth": self.growth,
            "metrics": [],
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        return None

    def clear(self) -> None:
        return None


NULL_TELEMETRY = NullRegistry()


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge telemetry snapshots in the given (deterministic) order.

    Counters and histogram buckets add; gauges are last-writer-wins on
    simulated time.  Merging per-shard snapshots in shard order (or
    per-cell snapshots in cell order) performs the identical float
    addition sequence no matter how many processes produced them, which
    is what makes merged sharded telemetry value-identical to a
    single-process run.
    """
    snapshots = list(snapshots)
    window = DEFAULT_WINDOW
    growth = DEFAULT_GROWTH
    for snapshot in snapshots:
        window = snapshot.get("window", window)
        growth = snapshot.get("growth", growth)
        break
    registry = MetricsRegistry(window=window, growth=growth)
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


def record_invocation_metrics(
    telemetry, record, tenant: str, engine: str
) -> None:
    """Fold one finished invocation into the registry.

    The shared emit path for both engines (called at their
    ``metrics.record_invocation`` point): latency and scheduling
    overhead into histograms, plus status / cold-start / retry counters,
    all labeled (tenant, workflow, engine).
    """
    labels = dict(tenant=tenant, workflow=record.workflow, engine=engine)
    telemetry.observe("workflow.latency", record.latency, **labels)
    telemetry.observe(
        "workflow.scheduling_overhead", record.scheduling_overhead, **labels
    )
    telemetry.inc("workflow.invocations", 1.0, status=record.status, **labels)
    if record.cold_starts:
        telemetry.inc("workflow.cold_starts", float(record.cold_starts), **labels)
    if record.retries:
        telemetry.inc("workflow.retries", float(record.retries), **labels)


def find_metrics(
    snapshot: dict, name: str, **label_filter
) -> list[dict]:
    """Metric entries matching ``name`` and every given label value."""
    out = []
    for entry in snapshot.get("metrics", []):
        if entry["name"] != name:
            continue
        labels = entry["labels"]
        if all(labels.get(k) == v for k, v in label_filter.items()):
            out.append(entry)
    return out


def validate_snapshot(snapshot: dict) -> list[str]:
    """Structural invariant checks on a snapshot; returns problems."""
    problems: list[str] = []
    if snapshot.get("type") != "telemetry":
        problems.append("missing type=telemetry marker")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, list):
        return problems + ["metrics missing or not a list"]
    seen: set[tuple] = set()
    for index, entry in enumerate(metrics):
        where = f"metric {index} ({entry.get('name', '?')})"
        kind = entry.get("kind")
        if kind not in _KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        key = metric_key(entry.get("name", ""), entry.get("labels", {}))
        if key in seen:
            problems.append(f"{where}: duplicate (name, labels) entry")
        seen.add(key)
        if kind == "histogram":
            bucket_total = sum(entry["buckets"].values()) + entry.get(
                "zeros", 0
            )
            if bucket_total != entry["count"]:
                problems.append(
                    f"{where}: bucket counts sum to {bucket_total}, "
                    f"count says {entry['count']}"
                )
            window_count = sum(
                pair[0] for pair in entry.get("windows", {}).values()
            )
            if entry.get("windows") and window_count != entry["count"]:
                problems.append(
                    f"{where}: window counts sum to {window_count}, "
                    f"count says {entry['count']}"
                )
            window_sum = sum(
                pair[1] for pair in entry.get("windows", {}).values()
            )
            if entry.get("windows") and not math.isclose(
                window_sum, entry["sum"], rel_tol=1e-9, abs_tol=1e-9
            ):
                problems.append(
                    f"{where}: window sums total {window_sum}, "
                    f"sum says {entry['sum']}"
                )
            if entry["count"] and entry.get("min", 0) > entry.get("max", 0):
                problems.append(f"{where}: min > max")
        elif kind == "counter":
            window_total = sum(entry.get("windows", {}).values())
            if entry.get("windows") and not math.isclose(
                window_total, entry["total"], rel_tol=1e-9, abs_tol=1e-9
            ):
                problems.append(
                    f"{where}: window deltas total {window_total}, "
                    f"total says {entry['total']}"
                )
    return problems


def write_telemetry_json(path: PathLike, snapshot) -> Path:
    """Write a snapshot (or a live registry) as a telemetry JSON file."""
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def read_telemetry_json(path: PathLike) -> dict:
    """Load a telemetry snapshot written by :func:`write_telemetry_json`."""
    return json.loads(Path(path).read_text())

"""The workflow DAG: the structure both schedule patterns execute.

A :class:`WorkflowDAG` is the parsed form of a workflow definition
(paper §4.1.1): function nodes connected by data edges.  Each node
carries its execution model (service time, peak memory) plus the
runtime-feedback metrics the graph scheduler uses
(:attr:`FunctionNode.scale`, :attr:`FunctionNode.map_factor`); each edge
carries the bytes it moves and a latency *weight* updated from runtime
measurements (the paper's 99%-ile transmission latency).

Virtual start/end nodes bracket parallel / switch / foreach steps.  They
do no computation and hold no state — they exist so graph partitioning
treats a step atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = ["FunctionNode", "DataEdge", "WorkflowDAG", "DAGError"]


class DAGError(ValueError):
    """Malformed workflow graph."""


@dataclass
class FunctionNode:
    """One function (or virtual marker) in the workflow control-plane."""

    name: str
    service_time: float = 0.1  # seconds of pure execution
    memory: float = 64 * 1024 * 1024  # peak working set, bytes
    output_size: float = 0.0  # bytes produced per invocation (aggregate)
    is_virtual: bool = False
    # Runtime-feedback metrics (paper §4.1.2).
    scale: float = 1.0  # avg scaled instances of this node
    map_factor: float = 1.0  # avg executors map (foreach steps)
    # Logic-step metadata.
    step_type: str = "task"
    group_id: Optional[str] = None  # set by the graph scheduler
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise DAGError("node name must be non-empty")
        if self.service_time < 0:
            raise DAGError(f"negative service_time for {self.name!r}")
        if self.memory < 0:
            raise DAGError(f"negative memory for {self.name!r}")
        if self.output_size < 0:
            raise DAGError(f"negative output_size for {self.name!r}")
        if self.scale < 0 or self.map_factor < 0:
            raise DAGError(f"negative feedback metric for {self.name!r}")

    @property
    def effective_instances(self) -> float:
        """Instances this node contributes in the data-plane."""
        if self.is_virtual:
            return 0.0
        return max(self.scale, 1.0) * max(self.map_factor, 1.0)


@dataclass
class DataEdge:
    """A data dependency: ``src``'s output feeds ``dst``."""

    src: str
    dst: str
    data_size: float = 0.0  # bytes shipped per invocation
    weight: float = 0.0  # measured/estimated transmission latency, seconds

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise DAGError(f"self-loop on {self.src!r}")
        if self.data_size < 0:
            raise DAGError(f"negative data_size on {self.src}->{self.dst}")
        if self.weight < 0:
            raise DAGError(f"negative weight on {self.src}->{self.dst}")

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)


class WorkflowDAG:
    """Directed acyclic graph of function nodes and data edges."""

    def __init__(self, name: str):
        if not name:
            raise DAGError("workflow name must be non-empty")
        self.name = name
        self._nodes: dict[str, FunctionNode] = {}
        self._edges: dict[tuple[str, str], DataEdge] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}

    # -- construction -----------------------------------------------------
    def add_node(self, node: FunctionNode) -> FunctionNode:
        if node.name in self._nodes:
            raise DAGError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._succ[node.name] = []
        self._pred[node.name] = []
        return node

    def add_function(self, name: str, **kwargs) -> FunctionNode:
        """Convenience: create and add a :class:`FunctionNode`."""
        return self.add_node(FunctionNode(name=name, **kwargs))

    def add_edge(
        self, src: str, dst: str, data_size: float = 0.0, weight: float = 0.0
    ) -> DataEdge:
        for endpoint in (src, dst):
            if endpoint not in self._nodes:
                raise DAGError(f"edge endpoint {endpoint!r} is not a node")
        edge = DataEdge(src, dst, data_size, weight)
        if edge.key in self._edges:
            raise DAGError(f"duplicate edge {src}->{dst}")
        self._edges[edge.key] = edge
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        if self._creates_cycle(src, dst):
            # Roll back before complaining.
            del self._edges[edge.key]
            self._succ[src].remove(dst)
            self._pred[dst].remove(src)
            raise DAGError(f"edge {src}->{dst} creates a cycle")
        return edge

    def _creates_cycle(self, src: str, dst: str) -> bool:
        """Is ``src`` reachable from ``dst``?"""
        stack, seen = [dst], set()
        while stack:
            current = stack.pop()
            if current == src:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._succ[current])
        return False

    # -- access -------------------------------------------------------------
    def node(self, name: str) -> FunctionNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise DAGError(f"unknown node {name!r}") from None

    def edge(self, src: str, dst: str) -> DataEdge:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise DAGError(f"unknown edge {src}->{dst}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    @property
    def nodes(self) -> list[FunctionNode]:
        return list(self._nodes.values())

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    @property
    def edges(self) -> list[DataEdge]:
        return list(self._edges.values())

    def successors(self, name: str) -> list[str]:
        return list(self._succ[name])

    def predecessors(self, name: str) -> list[str]:
        return list(self._pred[name])

    def out_edges(self, name: str) -> list[DataEdge]:
        return [self._edges[(name, dst)] for dst in self._succ[name]]

    def in_edges(self, name: str) -> list[DataEdge]:
        return [self._edges[(src, name)] for src in self._pred[name]]

    def sources(self) -> list[str]:
        """Nodes with no predecessors (workflow entry points)."""
        return [n for n in self._nodes if not self._pred[n]]

    def sinks(self) -> list[str]:
        return [n for n in self._nodes if not self._succ[n]]

    def real_nodes(self) -> list[FunctionNode]:
        """Non-virtual nodes, i.e. actual functions."""
        return [n for n in self._nodes.values() if not n.is_virtual]

    def data_dependencies(self, name: str) -> list[tuple[str, float]]:
        """Real producers whose outputs ``name`` consumes.

        Resolves through virtual start/end nodes: after a parallel step's
        virtual end, the next function fetches every branch's output.
        Returns ``(producer_name, bytes)`` pairs in deterministic order.
        """
        result: list[tuple[str, float]] = []
        seen: set[str] = set()

        def walk(current: str) -> None:
            for src in self._pred[current]:
                producer = self._nodes[src]
                if producer.is_virtual:
                    walk(src)
                elif src not in seen:
                    seen.add(src)
                    result.append((src, producer.output_size))

        walk(name)
        return result

    def data_consumers(self, name: str) -> list[str]:
        """Real functions that consume ``name``'s output (through virtuals)."""
        result: list[str] = []
        seen: set[str] = set()

        def walk(current: str) -> None:
            for dst in self._succ[current]:
                consumer = self._nodes[dst]
                if consumer.is_virtual:
                    walk(dst)
                elif dst not in seen:
                    seen.add(dst)
                    result.append(dst)

        walk(name)
        return result

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[FunctionNode]:
        return iter(self._nodes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    # -- aggregate properties -----------------------------------------------
    @property
    def total_data_size(self) -> float:
        """Sum of bytes moved over every edge for one invocation."""
        return sum(e.data_size for e in self._edges.values())

    @property
    def total_service_time(self) -> float:
        return sum(n.service_time for n in self._nodes.values())

    def validate(self) -> None:
        """Raise :class:`DAGError` on structural problems."""
        if not self._nodes:
            raise DAGError(f"workflow {self.name!r} has no nodes")
        if not self.sources():
            raise DAGError(f"workflow {self.name!r} has no entry node")
        # Acyclicity is enforced on edge insertion; re-verify defensively.
        order = self.topological_order()
        if len(order) != len(self._nodes):  # pragma: no cover - defensive
            raise DAGError(f"workflow {self.name!r} contains a cycle")

    # -- traversal ------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn's algorithm; deterministic (insertion order tie-break)."""
        in_degree = {name: len(self._pred[name]) for name in self._nodes}
        ready = [name for name in self._nodes if in_degree[name] == 0]
        order: list[str] = []
        head = 0
        while head < len(ready):
            current = ready[head]
            head += 1
            order.append(current)
            for successor in self._succ[current]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._nodes):
            raise DAGError(f"workflow {self.name!r} contains a cycle")
        return order

    def subgraph(self, names: Iterable[str]) -> "WorkflowDAG":
        """Induced subgraph over ``names`` (edges inside the set only)."""
        keep = set(names)
        missing = keep - set(self._nodes)
        if missing:
            raise DAGError(f"unknown nodes in subgraph: {sorted(missing)}")
        sub = WorkflowDAG(self.name)
        for name in self._nodes:
            if name in keep:
                sub.add_node(self._nodes[name])
        for edge in self._edges.values():
            if edge.src in keep and edge.dst in keep:
                sub.add_edge(edge.src, edge.dst, edge.data_size, edge.weight)
        return sub

    def copy(self) -> "WorkflowDAG":
        clone = WorkflowDAG(self.name)
        for node in self._nodes.values():
            clone.add_node(
                FunctionNode(
                    name=node.name,
                    service_time=node.service_time,
                    memory=node.memory,
                    output_size=node.output_size,
                    is_virtual=node.is_virtual,
                    scale=node.scale,
                    map_factor=node.map_factor,
                    step_type=node.step_type,
                    group_id=node.group_id,
                    metadata=dict(node.metadata),
                )
            )
        for edge in self._edges.values():
            clone.add_edge(edge.src, edge.dst, edge.data_size, edge.weight)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<WorkflowDAG {self.name!r}: {len(self._nodes)} nodes, "
            f"{len(self._edges)} edges>"
        )

"""Graph analysis used by the scheduler: critical path, weights, stats.

The grouping algorithm (paper Algorithm 1) repeatedly finds the critical
path of the workflow DAG — the longest chain of node execution times
plus edge transmission latencies — and merges the functions joined by
its heaviest edge.  This module provides that computation plus the
edge-weight estimation used before runtime feedback exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import DataEdge, DAGError, WorkflowDAG

__all__ = ["CriticalPath", "critical_path", "estimate_edge_weights", "path_length"]


@dataclass(frozen=True)
class CriticalPath:
    """The longest node+edge-weighted path through a DAG."""

    nodes: tuple[str, ...]
    edges: tuple[DataEdge, ...]
    length: float  # seconds: sum of node service times and edge weights

    def __len__(self) -> int:
        return len(self.nodes)


def critical_path(dag: WorkflowDAG) -> CriticalPath:
    """Longest path where node cost = service time, edge cost = weight.

    Runs in O(V + E) over the topological order.  Deterministic: ties are
    broken by topological position.
    """
    order = dag.topological_order()
    if not order:
        raise DAGError("empty DAG has no critical path")
    best: dict[str, float] = {}
    best_pred: dict[str, str | None] = {}
    for name in order:
        node = dag.node(name)
        incoming_best = 0.0
        chosen: str | None = None
        for edge in dag.in_edges(name):
            candidate = best[edge.src] + edge.weight
            if candidate > incoming_best + 1e-15:
                incoming_best = candidate
                chosen = edge.src
        # Entry nodes have no incoming contribution.
        if chosen is None and dag.predecessors(name):
            # All incoming paths weigh zero; keep a deterministic parent.
            chosen = dag.predecessors(name)[0]
        best[name] = incoming_best + node.service_time
        best_pred[name] = chosen
    tail = max(order, key=lambda n: (best[n], -order.index(n)))
    names: list[str] = []
    cursor: str | None = tail
    while cursor is not None:
        names.append(cursor)
        cursor = best_pred[cursor]
    names.reverse()
    edges = tuple(
        dag.edge(src, dst) for src, dst in zip(names, names[1:])
    )
    return CriticalPath(tuple(names), edges, best[tail])


def path_length(dag: WorkflowDAG, names: list[str]) -> float:
    """Length of an explicit path (node costs + edge weights)."""
    total = 0.0
    for name in names:
        total += dag.node(name).service_time
    for src, dst in zip(names, names[1:]):
        total += dag.edge(src, dst).weight
    return total


def estimate_edge_weights(
    dag: WorkflowDAG,
    bandwidth: float,
    db_op_latency: float = 0.002,
    round_trips: int = 2,
) -> None:
    """Seed edge weights from data size and nominal bandwidth.

    Before the first partition iteration no runtime 99%-ile latencies
    exist, so the parser estimates: every data-shipping edge costs a
    store round trip (producer put + consumer get) at the nominal
    storage bandwidth plus per-op latency.  Runtime feedback overwrites
    these (see :mod:`repro.core.scheduler`).
    """
    if bandwidth <= 0:
        raise DAGError(f"bandwidth must be > 0, got {bandwidth}")
    for edge in dag.edges:
        transfer = round_trips * edge.data_size / bandwidth
        edge.weight = transfer + round_trips * db_op_latency

"""``faasflow-run``: execute a workflow definition end-to-end.

The front door for trying the system on your own workflow::

    faasflow-run my-workflow.yaml --invocations 20
    faasflow-run my-workflow.yaml --engine master --open-loop 6
    faasflow-run Cyc --trace --prewarm

The positional argument is a WDL YAML file or the name/abbreviation of
a built-in benchmark.  By default the workflow runs on FaaSFlow
(WorkerSP + FaaStore) through the full scheduler feedback loop; pass
``--engine master`` for the HyperFlow-serverless baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .clients import run_closed_loop, run_open_loop
from .metrics import percentile
from .core import (
    DataflowSystem,
    EngineConfig,
    FaaSFlowSystem,
    FaultInjector,
    GraphScheduler,
    HyperFlowServerlessSystem,
    Tracer,
    hash_partition,
)
from .parallel import ParallelRunner, add_jobs_argument, derive_seed
from .sim import Cluster, ClusterConfig, Environment, MB
from .wdl import WDLError, load_workflow
from .workloads import ALL_BENCHMARKS, build

__all__ = ["main", "run_workflow", "run_trials", "RunSummary"]


class RunSummary(dict):
    """Result of one ``run_workflow`` call (a dict with attribute sugar)."""

    def __getattr__(self, name):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


def _load_dag(source: str):
    path = Path(source)
    if path.exists():
        return load_workflow(path)
    try:
        return build(source)
    except KeyError:
        raise SystemExit(
            f"error: {source!r} is neither a readable WDL file nor a "
            f"benchmark name (choose from {ALL_BENCHMARKS})"
        )


def run_workflow(
    dag,
    engine: str = "worker",
    invocations: int = 10,
    workers: int = 7,
    bandwidth_mb: float = 50.0,
    open_loop_rate: float | None = None,
    prewarm: bool = False,
    ship_data: bool = True,
    trace: bool = False,
    feedback: bool = True,
    fault_rate: float = 0.0,
    max_retries: int = 2,
    eager_ship: bool = True,
    batch_control: bool = False,
    seed: int = 13,
    trace_out: str | Path | None = None,
    sample_interval: float = 0.25,
    telemetry_out: str | Path | None = None,
    collect_telemetry: bool = False,
    tenant: str = "default",
    kernel_scheduler: str | None = None,
) -> RunSummary:
    """Run ``dag`` and return a summary of what happened.

    ``trace_out`` turns on span tracing + resource sampling and writes
    the trace bundle (JSONL spans, Perfetto JSON, samples CSV, metrics
    CSVs) into that directory.

    ``telemetry_out`` turns on the streaming metrics registry and
    writes its snapshot as ``<workflow>-telemetry.json`` into that
    directory (or to the path itself if it ends in ``.json``);
    ``collect_telemetry`` collects the same snapshot without writing,
    returning it as ``summary.telemetry`` — the form sharded trial
    cells use, merged deterministically in cell order afterwards.

    ``kernel_scheduler`` selects the event-queue implementation for the
    simulation environment (``"heap"``/``"wheel"``; ``None`` resolves
    the process-wide ``FAASFLOW_SCHEDULER`` default).  Every summary
    field and record is bit-identical under either scheduler.
    """
    if engine not in ("worker", "master", "dataflow"):
        raise ValueError("engine must be 'worker', 'master', or 'dataflow'")
    env = Environment(scheduler=kernel_scheduler)
    cluster = Cluster(
        env,
        ClusterConfig(workers=workers, storage_bandwidth=bandwidth_mb * MB),
    )
    span_tracer = None
    sampler = None
    if trace_out is not None:
        from .obs import ResourceSampler, SpanTracer

        # Must precede system construction: engines snapshot
        # cluster.spans when they are built.
        span_tracer = SpanTracer(env)
        cluster.install_spans(span_tracer)
        sampler = ResourceSampler(cluster, interval=sample_interval)
        sampler.start()
    registry = None
    if collect_telemetry or telemetry_out is not None:
        from .obs.telemetry import MetricsRegistry

        # Same rule as spans: engines snapshot cluster.telemetry when
        # they are built, so install before system construction.
        registry = MetricsRegistry(clock=lambda: env.now)
        cluster.install_telemetry(registry)
    tracer = Tracer() if trace else None
    faults = (
        FaultInjector(default_rate=fault_rate, seed=seed)
        if fault_rate > 0
        else None
    )
    config = EngineConfig(
        ship_data=ship_data, max_retries=max_retries, tenant=tenant,
        eager_ship=eager_ship, batch_control=batch_control,
    )
    if engine == "master":
        system = HyperFlowServerlessSystem(
            cluster, config, tracer=tracer, faults=faults
        )
        system.register(dag, hash_partition(dag, cluster.worker_names()))
    else:
        # WorkerSP and DataflowSP share the placement-driven deployment
        # path (scheduler, quotas, feedback); only the triggering
        # paradigm behind the deployed sub-graphs differs.
        system_class = DataflowSystem if engine == "dataflow" else FaaSFlowSystem
        system = system_class(cluster, config, tracer=tracer, faults=faults)
        scheduler = GraphScheduler(cluster)
        placement, quotas, _ = scheduler.schedule(dag)
        system.deploy(dag, placement, quotas=quotas, prewarm=1 if prewarm else 0)
        if feedback:
            run_closed_loop(system, dag.name, 2)
            scheduler.absorb_feedback(dag, system.metrics)
            placement, quotas, _ = scheduler.schedule(dag)
            system.deploy(
                dag,
                placement,
                quotas=quotas,
                prewarm=1 if prewarm else 0,
                container_limits=scheduler.container_limits(dag),
            )
            system.metrics.clear()
            if registry is not None:
                # The feedback bootstrap is calibration, not load: drop
                # its telemetry along with its collector records.
                registry.clear()
    if prewarm:
        # Let the prewarmed containers finish booting before load starts.
        env.run(until=env.now + cluster.config.container.cold_start_time + 0.01)
    if open_loop_rate is not None:
        records = run_open_loop(
            system, dag.name, invocations, open_loop_rate, seed=seed
        )
    else:
        records = run_closed_loop(system, dag.name, invocations)
    metrics = system.metrics
    trace_paths = None
    if trace_out is not None:
        from .obs.export import export_trace

        trace_paths = export_trace(
            trace_out, span_tracer, sampler=sampler, metrics=metrics,
            prefix=dag.name, telemetry=registry,
        )
    telemetry_snapshot = registry.snapshot() if registry is not None else None
    telemetry_path = None
    if telemetry_out is not None:
        from .obs.telemetry import write_telemetry_json

        out = Path(telemetry_out)
        if out.suffix == ".json":
            out.parent.mkdir(parents=True, exist_ok=True)
            telemetry_path = out
        else:
            out.mkdir(parents=True, exist_ok=True)
            telemetry_path = out / f"{dag.name}-telemetry.json"
        write_telemetry_json(telemetry_path, telemetry_snapshot)
    latencies = sorted(r.latency for r in records)
    return RunSummary(
        workflow=dag.name,
        engine=engine,
        invocations=len(records),
        completed=len([r for r in records if r.status == "ok"]),
        timeouts=len([r for r in records if r.status == "timeout"]),
        failures=len([r for r in records if r.status == "failed"]),
        mean_latency=sum(latencies) / len(latencies),
        p50_latency=percentile(latencies, 50),
        p99_latency=metrics.tail_latency(dag.name, q=99),
        mean_scheduling_overhead=(
            metrics.mean_scheduling_overhead(dag.name)
            if metrics.completed(dag.name)
            else float("nan")
        ),
        data_moved_mb=metrics.data_moved(dag.name) / len(records) / MB,
        local_fraction=metrics.local_fraction(dag.name),
        cold_starts=sum(r.cold_starts for r in records),
        records=records,
        metrics=metrics,
        tracer=tracer,
        spans=span_tracer,
        trace_paths=trace_paths,
        telemetry=telemetry_snapshot,
        telemetry_path=telemetry_path,
        system=system,
    )


# Fields of a RunSummary that survive the trip back from a worker
# process (the live system/metrics/tracer objects hold simulation
# generators and are neither picklable nor meaningful across trials).
_SCALAR_FIELDS = (
    "workflow",
    "engine",
    "invocations",
    "completed",
    "timeouts",
    "failures",
    "mean_latency",
    "p50_latency",
    "p99_latency",
    "mean_scheduling_overhead",
    "data_moved_mb",
    "local_fraction",
    "cold_starts",
)


def _trial_task(payload: tuple) -> dict:
    """Run one independent trial in a (possibly pooled) worker."""
    source, seed, kwargs = payload
    summary = run_workflow(_load_dag(source), seed=seed, **kwargs)
    result = {field: summary[field] for field in _SCALAR_FIELDS}
    if summary.get("telemetry") is not None:
        # A snapshot is a plain dict: it survives the pool round-trip.
        result["telemetry"] = summary["telemetry"]
    return result


def run_trials(
    source: str,
    trials: int = 3,
    jobs: int = 1,
    seed: int = 13,
    shards: int | None = None,
    **run_kwargs,
) -> list[RunSummary]:
    """Run ``trials`` independent repetitions of a workflow run.

    Each trial gets a deterministic seed derived from ``seed`` and the
    trial index, so the set of results is identical whether the trials
    execute serially or fan out over ``jobs`` worker processes.
    ``source`` is a WDL path or benchmark name (re-loaded per worker —
    live DAG/system objects never cross the process boundary).

    ``shards`` routes the trials through the sharded cell machinery
    (``repro.sim.shard.run_workflow_cells``) instead: each trial becomes
    one cell with a pinned, disjoint invocation-id range, so the
    returned summaries — including their ``records`` tuples — are
    bit-identical for any shard count (``jobs`` is ignored in that
    mode; the shard workers are the process pool).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if shards is not None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        from .sim.shard import run_workflow_cells

        # Build cell specs directly (not via make_workflow_cell) so that
        # omitted kwargs keep run_workflow's own defaults, exactly like
        # the non-sharded path.
        cells = [
            dict(
                workload=source,
                seed=derive_seed(seed, "trial", index),
                **run_kwargs,
            )
            for index in range(trials)
        ]
        results = run_workflow_cells(cells, shards=shards)
        return [RunSummary(result) for result in results]
    tasks = [
        (source, derive_seed(seed, "trial", index), dict(run_kwargs))
        for index in range(trials)
    ]
    results = ParallelRunner(jobs).map(_trial_task, tasks)
    return [RunSummary(result) for result in results]


def _format_trials(summaries: list[RunSummary]) -> str:
    def stats(values):
        mean = sum(values) / len(values)
        return mean, min(values), max(values)

    lines = [
        f"{'trial':>5}  {'mean (ms)':>10}  {'p99 (ms)':>10}  "
        f"{'ok':>4}  {'timeout':>7}  {'failed':>6}  {'cold':>4}"
    ]
    for index, s in enumerate(summaries):
        lines.append(
            f"{index:>5}  {s.mean_latency * 1000:>10,.1f}  "
            f"{s.p99_latency * 1000:>10,.1f}  {s.completed:>4}  "
            f"{s.timeouts:>7}  {s.failures:>6}  {s.cold_starts:>4}"
        )
    mean_mean, mean_lo, mean_hi = stats([s.mean_latency for s in summaries])
    p99_mean, p99_lo, p99_hi = stats([s.p99_latency for s in summaries])
    lines.append(
        f"across {len(summaries)} trials: "
        f"mean latency {mean_mean * 1000:,.1f} ms "
        f"[{mean_lo * 1000:,.1f}-{mean_hi * 1000:,.1f}], "
        f"p99 {p99_mean * 1000:,.1f} ms "
        f"[{p99_lo * 1000:,.1f}-{p99_hi * 1000:,.1f}]"
    )
    return "\n".join(lines)


_ENGINE_NAMES = {
    "worker": "FaaSFlow (WorkerSP+FaaStore)",
    "master": "HyperFlow-serverless (MasterSP)",
    "dataflow": "DataflowSP (function-level triggering + eager shipping)",
}


def _format_summary(summary: RunSummary) -> str:
    lines = [
        f"workflow            {summary.workflow}",
        f"engine              {_ENGINE_NAMES.get(summary.engine, summary.engine)}",
        f"invocations         {summary.invocations} "
        f"({summary.completed} ok, {summary.timeouts} timed out, "
        f"{summary.failures} failed)",
        f"mean latency        {summary.mean_latency * 1000:,.1f} ms",
        f"p99 latency         {summary.p99_latency * 1000:,.1f} ms",
        f"sched overhead      {summary.mean_scheduling_overhead * 1000:,.1f} ms",
        f"data moved          {summary.data_moved_mb:,.2f} MB/invocation "
        f"({summary.local_fraction * 100:.0f}% node-local)",
        f"cold starts         {summary.cold_starts}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="faasflow-run",
        description="Run a WDL workflow (or built-in benchmark) end-to-end.",
    )
    parser.add_argument("workflow", help="WDL YAML file or benchmark name")
    parser.add_argument(
        "--engine", choices=["worker", "master", "dataflow"], default="worker",
        help="worker = FaaSFlow (default); master = HyperFlow-serverless; "
        "dataflow = DataflowSP (function-level dataflow triggering with "
        "eager data shipping)",
    )
    parser.add_argument("--invocations", type=int, default=10)
    parser.add_argument("--workers", type=int, default=7)
    parser.add_argument(
        "--bandwidth", type=float, default=50.0,
        help="storage-node bandwidth in MB/s (default 50)",
    )
    parser.add_argument(
        "--open-loop", type=float, metavar="RATE", default=None,
        help="open-loop arrivals at RATE invocations/minute",
    )
    parser.add_argument(
        "--no-data", action="store_true",
        help="pre-packed inputs: skip the data plane",
    )
    parser.add_argument(
        "--no-feedback", action="store_true",
        help="stay on the hash bootstrap placement",
    )
    parser.add_argument("--prewarm", action="store_true")
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="crash each function execution with probability P",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per function task (default 2)",
    )
    parser.add_argument(
        "--no-eager-ship", action="store_true",
        help="with --engine dataflow: trigger-only dataflow (disable "
        "eager output shipping; the ablation baseline)",
    )
    parser.add_argument(
        "--batch-control", action="store_true",
        help="coalesce same-destination control messages emitted in one "
        "engine step into a single transfer and handler wakeup (changes "
        "per-hop timing, never outcomes; default off)",
    )
    parser.add_argument(
        "--trials", type=int, default=1, metavar="K",
        help="repeat the whole run K times with per-trial derived seeds "
        "and report the spread (default 1)",
    )
    add_jobs_argument(parser)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="with --trials: run the trials as shard cells on N worker "
        "processes (bit-identical to serial; overrides --jobs)",
    )
    parser.add_argument(
        "--seed", type=int, default=13,
        help="base seed for arrivals/faults (trials derive from it)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the first invocation's execution timeline",
    )
    parser.add_argument(
        "--csv", metavar="DIR", help="export metrics CSVs to DIR"
    )
    parser.add_argument(
        "--trace-out", metavar="DIR", default=None,
        help="record causal spans + resource samples and write the "
        "trace bundle (Perfetto JSON, JSONL spans, samples CSV) to DIR",
    )
    parser.add_argument(
        "--sample-interval", type=float, default=0.25, metavar="SEC",
        help="resource-sampler cadence in simulated seconds (default 0.25)",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="collect streaming metrics (counters/gauges/histograms on "
        "simulated time) and write the snapshot to PATH (a directory, "
        "or a .json file); with --trials the per-trial snapshots are "
        "merged deterministically in trial order",
    )
    parser.add_argument(
        "--tenant", default="default",
        help="tenant label on telemetry and SLO reports (default 'default')",
    )
    parser.add_argument(
        "--scheduler", choices=["heap", "wheel"], default=None,
        help="kernel event-queue implementation: heap (default) or "
        "wheel (O(1) calendar queue; faster on timer-heavy runs, "
        "bit-identical results)",
    )
    args = parser.parse_args(argv)
    if args.scheduler:
        # Process-wide default so --jobs pool children and shard worker
        # processes (which inherit the OS environment) pick it up too.
        from .sim import set_default_scheduler

        set_default_scheduler(args.scheduler)
    try:
        dag = _load_dag(args.workflow)
    except WDLError as error:
        print(f"error: invalid workflow definition: {error}", file=sys.stderr)
        return 2
    run_kwargs = dict(
        engine=args.engine,
        invocations=args.invocations,
        workers=args.workers,
        bandwidth_mb=args.bandwidth,
        open_loop_rate=args.open_loop,
        prewarm=args.prewarm,
        ship_data=not args.no_data,
        feedback=not args.no_feedback,
        fault_rate=args.fault_rate,
        max_retries=args.max_retries,
        eager_ship=not args.no_eager_ship,
        batch_control=args.batch_control,
        tenant=args.tenant,
        kernel_scheduler=args.scheduler,
    )
    if args.trials > 1:
        if args.trace_out:
            print(
                "note: --trace-out is ignored with --trials > 1 "
                "(trials run in worker processes)",
                file=sys.stderr,
            )
        if args.telemetry_out:
            run_kwargs["collect_telemetry"] = True
        summaries = run_trials(
            args.workflow,
            trials=args.trials,
            jobs=args.jobs,
            seed=args.seed,
            shards=args.shards,
            **run_kwargs,
        )
        print(_format_trials(summaries))
        if args.telemetry_out:
            from .obs.telemetry import merge_snapshots, write_telemetry_json

            merged = merge_snapshots(
                s["telemetry"] for s in summaries
                if s.get("telemetry") is not None
            )
            out = Path(args.telemetry_out)
            if out.suffix == ".json":
                out.parent.mkdir(parents=True, exist_ok=True)
            else:
                out.mkdir(parents=True, exist_ok=True)
                out = out / f"{args.workflow}-telemetry.json"
            write_telemetry_json(out, merged)
            print(f"telemetry snapshot: {out}")
        return 0
    if args.shards is not None:
        print(
            "note: --shards only applies with --trials > 1 "
            "(a single run has nothing to shard)",
            file=sys.stderr,
        )
    summary = run_workflow(
        dag,
        trace=args.trace,
        seed=args.seed,
        trace_out=args.trace_out,
        sample_interval=args.sample_interval,
        telemetry_out=args.telemetry_out,
        **run_kwargs,
    )
    print(_format_summary(summary))
    if args.trace and summary.tracer is not None and summary.records:
        print("\nfirst invocation timeline:")
        print(summary.tracer.timeline(summary.records[0].invocation_id))
    if args.csv:
        from .metrics.export import export_metrics

        paths = export_metrics(summary.metrics, args.csv, prefix=dag.name)
        print(f"\nmetrics exported: {paths['invocations']}, {paths['transfers']}")
    if summary.trace_paths:
        print(
            f"\ntrace bundle: {summary.trace_paths['perfetto']} "
            f"(open in https://ui.perfetto.dev; inspect with faasflow-trace)"
        )
    if summary.telemetry_path:
        print(
            f"telemetry snapshot: {summary.telemetry_path} "
            f"(inspect with faasflow-trace report / slo)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Typed representation of WDL logic steps.

The Workflow Definition Language supports the five step kinds of the
paper (§4.1.1): task, sequence, parallel, switch, and foreach.  The
parser first lifts raw YAML into these dataclasses (validating shape and
rejecting unknown keys), then lowers them onto a :class:`WorkflowDAG`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "TaskStep",
    "SequenceStep",
    "ParallelStep",
    "SwitchCase",
    "SwitchStep",
    "ForeachStep",
    "Step",
    "WDLError",
]


class WDLError(ValueError):
    """Violated workflow definition (paper: the parser must reject these)."""


@dataclass
class TaskStep:
    """A single function invocation."""

    name: str
    service_time: float
    memory: float
    output_size: float
    metadata: dict = field(default_factory=dict)

    kind = "task"


@dataclass
class SequenceStep:
    """Serial composition of child steps."""

    name: str
    steps: list["Step"]

    kind = "sequence"


@dataclass
class ParallelStep:
    """Concurrent branches; all must finish before the flow continues."""

    name: str
    branches: list[SequenceStep]

    kind = "parallel"


@dataclass
class SwitchCase:
    """One arm of a switch step."""

    condition: str
    body: SequenceStep


@dataclass
class SwitchStep:
    """Conditional branching.

    The paper notes the workflow still provisions containers for every
    branch, so the DAG parser treats a switch like a parallel step; the
    conditions are preserved as metadata for the engines.
    """

    name: str
    cases: list[SwitchCase]

    kind = "switch"


@dataclass
class ForeachStep:
    """Data-parallel map over the input's elements.

    ``items`` is the (average) fan-out: the DAG parser folds all
    instances into one node with ``map_factor = items`` (paper §4.1.1).
    """

    name: str
    items: int
    body: SequenceStep

    kind = "foreach"


Step = Union[TaskStep, SequenceStep, ParallelStep, SwitchStep, ForeachStep]

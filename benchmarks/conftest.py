"""pytest-benchmark configuration for the experiment benches.

Each bench target regenerates one of the paper's tables/figures at a
reduced-but-representative setting and reports its wall time.  The
rows themselves are attached to the benchmark's ``extra_info`` so a
``--benchmark-json`` export carries the regenerated numbers.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    # Benches are deterministic simulations; one round keeps the suite
    # fast while still exercising the full experiment path.
    for item in items:
        item.add_marker(pytest.mark.benchmark(min_rounds=1, max_time=0.001))


@pytest.fixture
def record_result(benchmark):
    """Attach an ExperimentResult's rows to the benchmark report."""

    def _record(result):
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["rows"] = [
            [str(cell) for cell in row] for row in result.rows
        ]
        benchmark.extra_info["notes"] = result.notes
        return result

    return _record

"""Interoperability: WorkflowDAG <-> networkx / Graphviz DOT.

``networkx`` opens the workflow graphs to the whole graph-algorithm
ecosystem (and provides an independent oracle for our own topological /
critical-path code in tests); DOT export renders them.
"""

from __future__ import annotations

import networkx as nx

from .graph import DAGError, FunctionNode, WorkflowDAG

__all__ = ["to_networkx", "from_networkx", "to_dot"]

_NODE_ATTRS = (
    "service_time",
    "memory",
    "output_size",
    "is_virtual",
    "scale",
    "map_factor",
    "step_type",
)


def to_networkx(dag: WorkflowDAG) -> "nx.DiGraph":
    """Convert to a :class:`networkx.DiGraph` with full attributes."""
    graph = nx.DiGraph(name=dag.name)
    for node in dag.nodes:
        graph.add_node(
            node.name, **{attr: getattr(node, attr) for attr in _NODE_ATTRS}
        )
    for edge in dag.edges:
        graph.add_edge(
            edge.src, edge.dst, data_size=edge.data_size, weight=edge.weight
        )
    return graph


def from_networkx(graph: "nx.DiGraph", name: str = "") -> WorkflowDAG:
    """Build a :class:`WorkflowDAG` from a directed acyclic nx graph.

    Node attributes matching :class:`FunctionNode` fields are honored;
    anything else is ignored.  Raises :class:`DAGError` on cycles.
    """
    if not nx.is_directed_acyclic_graph(graph):
        raise DAGError("graph contains a cycle")
    dag = WorkflowDAG(name or graph.graph.get("name") or "imported")
    for node_name, attrs in graph.nodes(data=True):
        fields = {
            attr: attrs[attr] for attr in _NODE_ATTRS if attr in attrs
        }
        dag.add_node(FunctionNode(name=str(node_name), **fields))
    for src, dst, attrs in graph.edges(data=True):
        dag.add_edge(
            str(src),
            str(dst),
            data_size=attrs.get("data_size", 0.0),
            weight=attrs.get("weight", 0.0),
        )
    return dag


def to_dot(dag: WorkflowDAG, placement=None) -> str:
    """Render as Graphviz DOT.

    Virtual nodes draw as points; if a ``placement`` is given, nodes are
    clustered per worker so the partition is visible.
    """
    lines = [f'digraph "{dag.name}" {{', "  rankdir=TB;"]
    if placement is None:
        for node in dag.nodes:
            lines.append(f"  {_dot_node(node)}")
    else:
        by_worker: dict[str, list] = {}
        for node in dag.nodes:
            by_worker.setdefault(placement.node_of(node.name), []).append(node)
        for index, (worker, nodes) in enumerate(sorted(by_worker.items())):
            lines.append(f'  subgraph "cluster_{index}" {{')
            lines.append(f'    label="{worker}";')
            for node in nodes:
                lines.append(f"    {_dot_node(node)}")
            lines.append("  }")
    for edge in dag.edges:
        mb = edge.data_size / (1024.0 * 1024.0)
        label = f' [label="{mb:.1f}MB"]' if mb >= 0.05 else ""
        lines.append(f'  "{edge.src}" -> "{edge.dst}"{label};')
    lines.append("}")
    return "\n".join(lines)


def _dot_node(node: FunctionNode) -> str:
    if node.is_virtual:
        return f'"{node.name}" [shape=point];'
    label = f"{node.name}\\n{node.service_time * 1000:.0f}ms"
    if node.map_factor > 1:
        label += f" x{node.map_factor:.0f}"
    return f'"{node.name}" [shape=box, label="{label}"];'

"""Unit tests for the WorkerSP engines and the FaaSFlow system."""

import pytest

from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    HyperFlowServerlessSystem,
    Placement,
)
from repro.metrics import InvocationStatus

from .conftest import MB, all_on, fanout_dag, linear_dag, round_robin


def make_system(cluster, **config_kwargs):
    config_kwargs.setdefault("ship_data", False)
    return FaaSFlowSystem(cluster, EngineConfig(**config_kwargs))


class TestDeployment:
    def test_structures_distributed_by_placement(self, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        placement = round_robin(dag, ["worker-0", "worker-1"])
        system.deploy(dag, placement)
        engine0 = system.engine("worker-0")
        engine1 = system.engine("worker-1")
        assert engine0.structure("lin", 1).local_functions == ["f0", "f2"]
        assert engine1.structure("lin", 1).local_functions == ["f1", "f3"]
        assert not system.engine("worker-2").deployed_count

    def test_quotas_applied_on_deploy(self, cluster):
        system = make_system(cluster)
        dag = linear_dag()
        system.deploy(
            dag, all_on(dag, "worker-0"), quotas={"worker-0": 64 * MB}
        )
        assert cluster.node("worker-0").memstore.quota == 64 * MB

    def test_version_increments_on_redeploy(self, cluster):
        system = make_system(cluster)
        dag = linear_dag()
        system.deploy(dag, all_on(dag, "worker-0"))
        assert system.current_version("lin") == 1
        system.deploy(dag, all_on(dag, "worker-1"))
        assert system.current_version("lin") == 2

    def test_undeployed_workflow_rejected(self, env, cluster):
        system = make_system(cluster)
        with pytest.raises(KeyError):
            next(system.invoke("ghost"))


class TestInvocation:
    def test_end_to_end_completion(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.OK
        assert record.cold_starts == 3

    def test_cross_worker_chain(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.OK

    def test_cross_worker_sync_messages_counted(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        system.deploy(dag, round_robin(dag, ["worker-0", "worker-1"]))
        env.run(until=env.process(system.invoke("lin")))
        synced = sum(e.states_synced for e in system.engines.values())
        assert synced == 3  # every edge crosses workers

    def test_local_chain_needs_no_sync_messages(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        system.deploy(dag, all_on(dag, "worker-2"))
        env.run(until=env.process(system.invoke("lin")))
        assert sum(e.states_synced for e in system.engines.values()) == 0

    def test_fanout_with_virtual_nodes(self, env, cluster):
        from repro.wdl import parse_workflow

        wdl = """
name: par
steps:
  - task: head
    service_time: 50ms
    output_size: 1MB
  - parallel: split
    branches:
      - - task: a
          service_time: 100ms
      - - task: b
          service_time: 100ms
  - task: tail
    service_time: 50ms
"""
        system = make_system(cluster)
        dag = parse_workflow(wdl)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        record = env.run(until=env.process(system.invoke("par")))
        assert record.status == InvocationStatus.OK

    def test_warm_invocations_approach_critical_exec(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=3, service_time=0.1)
        system.deploy(dag, all_on(dag, "worker-0"))
        env.run(until=env.process(system.invoke("lin")))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.scheduling_overhead < 0.05

    def test_invocation_state_released_after_completion(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag()
        system.deploy(dag, all_on(dag, "worker-0"))
        env.run(until=env.process(system.invoke("lin")))
        structure = system.engine("worker-0").structure("lin", 1)
        assert structure.live_invocations == 0


class TestWorkerSPvsMasterSP:
    def test_worker_sp_has_lower_scheduling_overhead(self, env, cluster):
        """The headline claim (Fig. 11) on a small chain, warm."""
        dag_m = linear_dag(name="m", n=6)
        dag_w = linear_dag(name="w", n=6)
        placement_m = round_robin(dag_m, cluster.worker_names())
        placement_w = round_robin(dag_w, cluster.worker_names())
        master = HyperFlowServerlessSystem(
            cluster, EngineConfig(ship_data=False)
        )
        master.register(dag_m, placement_m)
        worker = make_system(cluster)
        worker.deploy(dag_w, placement_w)
        # Warm both, then measure.
        env.run(until=env.process(master.invoke("m")))
        env.run(until=env.process(worker.invoke("w")))
        rec_m = env.run(until=env.process(master.invoke("m")))
        rec_w = env.run(until=env.process(worker.invoke("w")))
        assert rec_w.scheduling_overhead < rec_m.scheduling_overhead


class TestTimeout:
    def test_timeout_marks_record(self, env, cluster):
        system = make_system(cluster, execution_timeout=0.3)
        dag = linear_dag(service_time=1.0)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.TIMEOUT
        assert record.latency == pytest.approx(0.3)

    def test_late_sink_completion_after_timeout_is_harmless(self, env, cluster):
        system = make_system(cluster, execution_timeout=0.3)
        dag = linear_dag(service_time=1.0)
        system.deploy(dag, all_on(dag, "worker-0"))
        env.run(until=env.process(system.invoke("lin")))
        env.run()  # drain the straggler processes
        assert len(system.metrics.invocations) == 1


class TestRedBlackDeployment:
    def test_old_version_drains_then_retires(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=2, service_time=0.3)
        system.deploy(dag, all_on(dag, "worker-0"))
        invocation = env.process(system.invoke("lin"))
        env.run(until=env.now + 0.05)  # in flight on v1
        system.deploy(dag, all_on(dag, "worker-1"))  # v2 goes live
        engine0 = system.engine("worker-0")
        assert engine0.has_structure("lin", 1)  # v1 still draining
        record = env.run(until=invocation)
        assert record.status == InvocationStatus.OK
        assert not engine0.has_structure("lin", 1)  # retired after drain

    def test_new_invocations_use_new_version(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=2)
        system.deploy(dag, all_on(dag, "worker-0"))
        env.run(until=env.process(system.invoke("lin")))
        system.deploy(dag, all_on(dag, "worker-1"))
        env.run(until=env.process(system.invoke("lin")))
        # worker-1 executed the second invocation.
        assert cluster.node("worker-1").containers.cold_starts == 2

    def test_stale_idle_containers_recycled_on_retire(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=2)
        system.deploy(dag, all_on(dag, "worker-0"))
        env.run(until=env.process(system.invoke("lin")))
        pool = cluster.node("worker-0").containers
        assert pool.total_containers == 2
        system.deploy(dag, all_on(dag, "worker-0"))  # v2, same worker
        env.run(until=env.process(system.invoke("lin")))
        env.run(until=env.now + 1.0)  # settle, but stay within keep-alive
        # v1 containers were destroyed; only v2's remain.
        assert pool.total_containers == 2
        versions = {
            c.version
            for cs in pool._all.values()
            for c in cs
        }
        assert versions == {2}

"""Shared fixtures for core-engine tests."""

import pytest

from repro.dag import WorkflowDAG
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment
from repro.core import Placement

MB = 1024.0 * 1024.0


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    """Small fast cluster: 3 workers, big NICs, short cold starts."""
    config = ClusterConfig(
        workers=3,
        container=ContainerSpec(cold_start_time=0.1),
        storage_bandwidth=50 * MB,
    )
    return Cluster(env, config)


def linear_dag(name="lin", n=3, service_time=0.1, output_size=1 * MB):
    dag = WorkflowDAG(name)
    previous = None
    for i in range(n):
        dag.add_function(
            f"f{i}",
            service_time=service_time,
            output_size=output_size,
            memory=32 * MB,
        )
        if previous:
            dag.add_edge(previous, f"f{i}", data_size=output_size)
        previous = f"f{i}"
    return dag


def fanout_dag(name="fan", branches=3, output_size=2 * MB):
    """head -> b0..bn -> tail (no virtual nodes)."""
    dag = WorkflowDAG(name)
    dag.add_function("head", service_time=0.05, output_size=output_size)
    dag.add_function("tail", service_time=0.05, output_size=0)
    for i in range(branches):
        b = f"b{i}"
        dag.add_function(b, service_time=0.1, output_size=output_size)
        dag.add_edge("head", b, data_size=output_size)
        dag.add_edge(b, "tail", data_size=output_size)
    return dag


def all_on(dag, worker):
    return Placement(
        workflow=dag.name,
        assignment={name: worker for name in dag.node_names},
    )


def round_robin(dag, workers):
    return Placement(
        workflow=dag.name,
        assignment={
            name: workers[i % len(workers)]
            for i, name in enumerate(dag.node_names)
        },
    )

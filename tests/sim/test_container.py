"""Unit tests for the container lifecycle and pool policy."""

import pytest

from repro.sim.container import ContainerPool, ContainerSpec, ContainerState
from repro.sim.kernel import Environment, SimulationError
from repro.sim.resources import CPUAllocator, MemoryAccount

MB = 1024.0 * 1024.0


def make_pool(env, **spec_kwargs):
    defaults = dict(cold_start_time=0.5, keepalive=600.0, max_per_function=10)
    defaults.update(spec_kwargs)
    spec = ContainerSpec(**defaults)
    cpu = CPUAllocator(env, cores=8)
    memory = MemoryAccount(env, capacity=32 * 1024 * MB)
    return ContainerPool(env, "worker-0", cpu, memory, spec)


@pytest.fixture
def env():
    return Environment()


class TestColdStartAndReuse:
    def test_first_acquire_pays_cold_start(self, env):
        pool = make_pool(env)
        acq = pool.acquire("fn")
        container = env.run(until=acq)
        assert env.now == pytest.approx(0.5)
        assert container.state == ContainerState.BUSY
        assert pool.cold_starts == 1

    def test_warm_reuse_is_instant(self, env):
        pool = make_pool(env)
        container = env.run(until=pool.acquire("fn"))
        pool.release(container)
        t0 = env.now
        again = env.run(until=pool.acquire("fn"))
        assert again is container
        assert env.now == t0
        assert pool.warm_reuses == 1

    def test_different_functions_get_different_containers(self, env):
        pool = make_pool(env)
        c1 = env.run(until=pool.acquire("fn-a"))
        c2 = env.run(until=pool.acquire("fn-b"))
        assert c1 is not c2
        assert pool.count("fn-a") == 1
        assert pool.count("fn-b") == 1

    def test_memory_reserved_per_container(self, env):
        pool = make_pool(env)
        env.run(until=pool.acquire("fn"))
        assert pool.memory.reserved_by_tag("container") == pytest.approx(256 * MB)


class TestPerFunctionLimit:
    def test_limit_queues_excess_requests(self, env):
        pool = make_pool(env, max_per_function=2)
        c1 = env.run(until=pool.acquire("fn"))
        c2 = env.run(until=pool.acquire("fn"))
        third = pool.acquire("fn")
        env.run()
        assert not third.processed
        pool.release(c1)
        env.run()
        assert third.processed
        assert third.value is c1

    def test_limit_is_per_function(self, env):
        pool = make_pool(env, max_per_function=1)
        env.run(until=pool.acquire("fn-a"))
        acq_b = pool.acquire("fn-b")
        env.run()
        assert acq_b.processed  # other function unaffected


class TestKeepAlive:
    def test_idle_container_expires(self, env):
        pool = make_pool(env, keepalive=10.0)
        container = env.run(until=pool.acquire("fn"))
        pool.release(container)
        env.run(until=env.now + 11.0)
        assert container.state == ContainerState.DEAD
        assert pool.count("fn") == 0
        assert pool.memory.reserved_by_tag("container") == 0

    def test_reuse_resets_keepalive(self, env):
        pool = make_pool(env, keepalive=10.0)
        container = env.run(until=pool.acquire("fn"))
        pool.release(container)

        def reuser(env, pool):
            yield env.timeout(8.0)
            c = yield pool.acquire("fn")
            yield env.timeout(1.0)
            pool.release(c)

        env.process(reuser(env, pool))
        env.run(until=15.0)
        assert container.state == ContainerState.IDLE  # refreshed at t=9
        env.run(until=25.0)
        assert container.state == ContainerState.DEAD

    def test_busy_container_never_expires(self, env):
        pool = make_pool(env, keepalive=10.0)
        container = env.run(until=pool.acquire("fn"))
        env.run(until=50.0)
        assert container.state == ContainerState.BUSY


class TestRedBlackVersions:
    def test_acquire_skips_stale_version(self, env):
        pool = make_pool(env)
        old = env.run(until=pool.acquire("fn", version=1))
        pool.release(old)
        fresh = env.run(until=pool.acquire("fn", version=2))
        assert fresh is not old
        assert old.state == ContainerState.DEAD

    def test_recycle_version_destroys_stale_idle(self, env):
        pool = make_pool(env)
        c1 = env.run(until=pool.acquire("fn", version=1))
        pool.release(c1)
        destroyed = pool.recycle_version("fn", version=2)
        assert destroyed == 1
        assert c1.state == ContainerState.DEAD

    def test_recycle_version_spares_current(self, env):
        pool = make_pool(env)
        c = env.run(until=pool.acquire("fn", version=2))
        pool.release(c)
        assert pool.recycle_version("fn", version=2) == 0
        assert c.state == ContainerState.IDLE

    def test_busy_stale_container_recycled_on_release(self, env):
        pool = make_pool(env, max_per_function=1)
        old = env.run(until=pool.acquire("fn", version=1))
        new_req = pool.acquire("fn", version=2)
        env.run()
        assert not new_req.processed  # limit reached, old still busy
        pool.release(old)
        env.run()
        assert new_req.processed
        assert new_req.value is not old
        assert old.state == ContainerState.DEAD


class TestMemoryLimitUpdates:
    def test_reclaim_shrinks_reservation(self, env):
        pool = make_pool(env)
        container = env.run(until=pool.acquire("fn"))
        container.note_memory_use(100 * MB)
        released = container.set_memory_limit(120 * MB)
        assert released == pytest.approx(136 * MB)
        assert container.memory_limit == pytest.approx(120 * MB)
        assert pool.memory.reserved_by_tag("container") == pytest.approx(120 * MB)

    def test_limit_never_below_peak_use(self, env):
        pool = make_pool(env)
        container = env.run(until=pool.acquire("fn"))
        container.note_memory_use(200 * MB)
        container.set_memory_limit(50 * MB)
        assert container.memory_limit == pytest.approx(200 * MB)

    def test_resize_dead_container_rejected(self, env):
        pool = make_pool(env, keepalive=1.0)
        container = env.run(until=pool.acquire("fn"))
        pool.release(container)
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            container.set_memory_limit(10 * MB)


class TestDrainAndStats:
    def test_drain_destroys_idle(self, env):
        pool = make_pool(env)
        cs = [env.run(until=pool.acquire(f"fn-{i}")) for i in range(3)]
        for c in cs:
            pool.release(c)
        assert pool.drain() == 3
        assert pool.total_containers == 0

    def test_capacity_left_respects_policy_and_memory(self, env):
        pool = make_pool(env, max_per_function=4)
        assert pool.capacity_left("fn") == 4
        env.run(until=pool.acquire("fn"))
        assert pool.capacity_left("fn") == 3

    def test_release_idle_container_rejected(self, env):
        pool = make_pool(env)
        container = env.run(until=pool.acquire("fn"))
        pool.release(container)
        with pytest.raises(SimulationError):
            pool.release(container)

    def test_spec_validation(self):
        with pytest.raises(SimulationError):
            ContainerSpec(memory_limit=0)
        with pytest.raises(SimulationError):
            ContainerSpec(max_per_function=0)
        with pytest.raises(SimulationError):
            ContainerSpec(cold_start_time=-1)

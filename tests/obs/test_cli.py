"""End-to-end CLI tests: run_workflow(--trace-out) then faasflow-trace."""

import json

import pytest

from repro.obs.cli import main as trace_main
from repro.runner import run_workflow

from ..core.conftest import linear_dag


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory):
    """One traced run, shared by every CLI test in the module."""
    out = tmp_path_factory.mktemp("traceout")
    dag = linear_dag(name="clitest", n=3)
    summary = run_workflow(
        dag, invocations=3, workers=3, trace_out=out, sample_interval=0.1
    )
    assert summary.trace_paths
    return out


class TestRunnerTraceOut:
    def test_bundle_files_written(self, bundle_dir):
        names = {p.name for p in bundle_dir.iterdir()}
        assert "clitest-spans.jsonl" in names
        assert "clitest-trace.json" in names
        assert "clitest-samples.csv" in names

    def test_no_trace_out_no_spans(self):
        summary = run_workflow(linear_dag(n=2), invocations=1, workers=3)
        assert summary.spans is None
        assert not summary.trace_paths


class TestTraceCli:
    def test_summary_exit_zero(self, bundle_dir, capsys):
        assert trace_main([str(bundle_dir)]) == 0
        out = capsys.readouterr().out
        assert "== clitest ==" in out
        assert "mean latency decomposition" in out
        assert "execute" in out
        assert "slowest function spans" in out

    def test_tree_default_invocation(self, bundle_dir, capsys):
        assert trace_main([str(bundle_dir), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "invocation" in out
        assert "execute" in out

    def test_tree_unknown_invocation(self, bundle_dir, capsys):
        assert trace_main([str(bundle_dir), "--tree", "424242"]) == 1
        assert "no spans for invocation 424242" in capsys.readouterr().out

    def test_nodes_table(self, bundle_dir, capsys):
        assert trace_main([str(bundle_dir), "--nodes"]) == 0
        out = capsys.readouterr().out
        assert "worker-0" in out
        assert "cpu avg" in out

    def test_validate_ok(self, bundle_dir, capsys):
        assert trace_main([str(bundle_dir), "--validate"]) == 0
        assert "well-nested" in capsys.readouterr().out

    def test_validate_rejects_corrupt_trace(self, bundle_dir, capsys):
        trace_path = bundle_dir / "clitest-trace.json"
        good = trace_path.read_text()
        try:
            document = json.loads(good)
            del document["traceEvents"]
            trace_path.write_text(json.dumps(document))
            assert trace_main([str(bundle_dir), "--validate"]) == 1
            assert "INVALID" in capsys.readouterr().out
        finally:
            trace_path.write_text(good)

    def test_export_perfetto(self, bundle_dir, tmp_path, capsys):
        out_path = tmp_path / "merged.json"
        args = [str(bundle_dir), "--export-perfetto", str(out_path)]
        assert trace_main(args) == 0
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]

    def test_single_file_path(self, bundle_dir, capsys):
        spans_file = bundle_dir / "clitest-spans.jsonl"
        assert trace_main([str(spans_file)]) == 0
        assert "clitest" in capsys.readouterr().out

    def test_empty_directory_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_main([str(tmp_path)])


@pytest.fixture(scope="module")
def telemetry_dir(tmp_path_factory):
    """One run with --telemetry-out, shared by the telemetry CLI tests."""
    out = tmp_path_factory.mktemp("telemetryout")
    dag = linear_dag(name="clitele", n=3)
    summary = run_workflow(
        dag, invocations=4, workers=3, telemetry_out=out, tenant="acme"
    )
    assert summary.telemetry_path is not None
    return out


class TestTelemetryOut:
    def test_snapshot_file_written(self, telemetry_dir):
        names = {p.name for p in telemetry_dir.iterdir()}
        assert "clitele-telemetry.json" in names

    def test_no_flag_no_telemetry(self):
        summary = run_workflow(linear_dag(n=2), invocations=1, workers=3)
        assert summary.telemetry is None
        assert summary.telemetry_path is None


class TestTelemetryValidate:
    def test_directory(self, telemetry_dir, capsys):
        assert trace_main([str(telemetry_dir), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "ok clitele" in out
        assert "invariants hold" in out

    def test_single_file(self, telemetry_dir, capsys):
        path = telemetry_dir / "clitele-telemetry.json"
        assert trace_main([str(path), "--validate"]) == 0
        assert "invariants hold" in capsys.readouterr().out

    def test_corrupt_snapshot_rejected(self, telemetry_dir, capsys):
        path = telemetry_dir / "clitele-telemetry.json"
        good = path.read_text()
        snapshot = json.loads(good)
        for metric in snapshot["metrics"]:
            if metric["kind"] == "histogram":
                metric["count"] += 1
        try:
            path.write_text(json.dumps(snapshot))
            assert trace_main([str(path), "--validate"]) == 1
            assert "INVALID" in capsys.readouterr().out
        finally:
            path.write_text(good)


class TestReportSubcommand:
    def test_report(self, telemetry_dir, capsys):
        assert trace_main(["report", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "clitele" in out
        assert "acme" in out  # tenant label survives to the rollup
        assert "invocations" in out
        assert "data plane" in out

    def test_report_windows(self, telemetry_dir, capsys):
        assert trace_main(["report", str(telemetry_dir), "--windows"]) == 0
        assert "simulated-time invocation rate" in capsys.readouterr().out

    def test_report_empty_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_main(["report", str(tmp_path)])


class TestSloSubcommand:
    def test_inline_target_met(self, telemetry_dir, capsys):
        assert (
            trace_main(
                ["slo", str(telemetry_dir), "--latency-target", "1e6"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clitele" in out and "OK" in out

    def test_strict_burning_exits_nonzero(self, telemetry_dir, capsys):
        assert (
            trace_main(
                [
                    "slo", str(telemetry_dir),
                    "--latency-target", "1e-9", "--strict",
                ]
            )
            == 1
        )
        assert "BURNING" in capsys.readouterr().out

    def test_targets_file(self, telemetry_dir, tmp_path, capsys):
        targets = tmp_path / "targets.json"
        targets.write_text(json.dumps([
            {"latency_target": 1e6, "tenant": "acme"},
        ]))
        assert (
            trace_main(
                ["slo", str(telemetry_dir), "--targets", str(targets)]
            )
            == 0
        )
        assert "acme" in capsys.readouterr().out

    def test_no_targets_errors(self, telemetry_dir):
        with pytest.raises(SystemExit):
            trace_main(["slo", str(telemetry_dir)])

"""Synthetic workflow generators for testing and capacity planning.

Parameterized DAG shapes beyond the paper's eight benchmarks: chains,
fan-outs, diamonds, trees, and layered random DAGs.  Deterministic under
a seed, so tests and sweeps are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from ..dag import WorkflowDAG

__all__ = ["chain", "fan", "diamond", "tree", "layered_random"]

MB = 1024.0 * 1024.0


def chain(
    length: int = 5,
    name: str = "chain",
    service_time: float = 0.1,
    output_size: float = 1 * MB,
) -> WorkflowDAG:
    """``f0 -> f1 -> ... -> f{length-1}``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    dag = WorkflowDAG(name)
    previous: Optional[str] = None
    for index in range(length):
        node = f"f{index}"
        dag.add_function(
            node, service_time=service_time, output_size=output_size
        )
        if previous is not None:
            dag.add_edge(previous, node, data_size=output_size)
        previous = node
    return dag


def fan(
    width: int = 8,
    name: str = "fan",
    service_time: float = 0.1,
    hub_output: float = 4 * MB,
    branch_output: float = 1 * MB,
    gather: bool = True,
) -> WorkflowDAG:
    """One hub fanning to ``width`` branches, optionally gathered."""
    if width < 1:
        raise ValueError("width must be >= 1")
    dag = WorkflowDAG(name)
    dag.add_function("hub", service_time=service_time, output_size=hub_output)
    for index in range(width):
        node = f"branch-{index}"
        dag.add_function(
            node, service_time=service_time, output_size=branch_output
        )
        dag.add_edge("hub", node, data_size=hub_output)
    if gather:
        dag.add_function("gather", service_time=service_time, output_size=0)
        for index in range(width):
            dag.add_edge(f"branch-{index}", "gather", data_size=branch_output)
    return dag


def diamond(
    width: int = 2,
    name: str = "diamond",
    service_time: float = 0.1,
    output_size: float = 1 * MB,
) -> WorkflowDAG:
    """``source -> {mid_i} -> sink``."""
    dag = fan(
        width=width,
        name=name,
        service_time=service_time,
        hub_output=output_size,
        branch_output=output_size,
        gather=True,
    )
    return dag


def tree(
    depth: int = 3,
    fanout: int = 2,
    name: str = "tree",
    service_time: float = 0.1,
    output_size: float = 1 * MB,
) -> WorkflowDAG:
    """A complete ``fanout``-ary tree of ``depth`` levels below the root."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    dag = WorkflowDAG(name)
    dag.add_function("n0", service_time=service_time, output_size=output_size)
    frontier = ["n0"]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                node = f"n{counter}"
                counter += 1
                dag.add_function(
                    node, service_time=service_time, output_size=output_size
                )
                dag.add_edge(parent, node, data_size=output_size)
                next_frontier.append(node)
        frontier = next_frontier
    return dag


def layered_random(
    layers: int = 4,
    width: int = 4,
    density: float = 0.5,
    name: str = "layered",
    seed: int = 7,
    service_time_range: tuple[float, float] = (0.05, 0.4),
    output_size_range: tuple[float, float] = (0.1 * MB, 8 * MB),
) -> WorkflowDAG:
    """A layered random DAG: edges only flow to the next layer.

    Every node is guaranteed at least one incoming edge (except layer 0)
    and at least one outgoing edge (except the last layer), so the graph
    is connected and every function participates.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be >= 1")
    if not 0 <= density <= 1:
        raise ValueError("density must be in [0, 1]")
    rng = random.Random(seed)
    dag = WorkflowDAG(name)
    grid = [
        [f"l{layer}n{i}" for i in range(width)] for layer in range(layers)
    ]
    for layer in grid:
        for node in layer:
            dag.add_function(
                node,
                service_time=rng.uniform(*service_time_range),
                output_size=rng.uniform(*output_size_range),
            )
    for upper, lower in zip(grid, grid[1:]):
        for src in upper:
            targets = [t for t in lower if rng.random() < density]
            if not targets:
                targets = [rng.choice(lower)]
            for dst in targets:
                dag.add_edge(
                    src, dst, data_size=dag.node(src).output_size
                )
        for dst in lower:
            if not dag.predecessors(dst):
                src = rng.choice(upper)
                dag.add_edge(src, dst, data_size=dag.node(src).output_size)
    dag.validate()
    return dag

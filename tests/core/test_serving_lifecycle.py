"""Serving hot-path lifecycle tests (ISSUE 10).

Pins the three state-lifecycle properties the O(1) hot path depends on:

- the live triggered-not-executed index stays exactly in sync with the
  per-invocation flag bytes (crash collection may trust it),
- invocation state is retired promptly on every engine — live state is
  O(in-flight), not O(served) — including under crashes and retries,
- the batched control plane (``batch_control=True``) changes only
  timestamps: every invocation resolves to the same outcome, and the
  coalescing measurably reduces control-message traffic.
"""

import pytest

from repro.clients import OpenLoopClient, run_closed_loop
from repro.core import (
    DataflowSystem,
    EngineConfig,
    FaaSFlowSystem,
    FaultDriver,
    FaultPlan,
    HyperFlowServerlessSystem,
    NodeCrash,
    hash_partition,
)
from repro.core.state import EXECUTED, TRIGGERED, reset_invocation_ids
from repro.metrics import InvocationStatus
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

from .conftest import MB, fanout_dag, linear_dag

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def drain(env):
    env.run(until=env.now)


def make_cluster(workers=3):
    return Cluster(
        Environment(),
        ClusterConfig(
            workers=workers,
            container=ContainerSpec(cold_start_time=0.05),
            storage_bandwidth=50 * MB,
        ),
    )


def make_system(engine, cluster, **config_kwargs):
    config = EngineConfig(ship_data=False, **config_kwargs)
    if engine == "worker":
        return FaaSFlowSystem(cluster, config)
    if engine == "dataflow":
        return DataflowSystem(cluster, config)
    return HyperFlowServerlessSystem(cluster, config)


def brute_force_pending(structure):
    """O(live invocations x local functions) scan the live index replaces."""
    pending = []
    for invocation_id, inv in structure.invocation_items():
        for index, name in enumerate(structure.local_names):
            flags = inv.flags[index]
            if flags & TRIGGERED and not flags & EXECUTED:
                pending.append((invocation_id, name))
    return pending


class TestLiveIndexEquivalence:
    """Satellite (a): the index must agree with a brute-force flag scan."""

    @pytest.mark.parametrize("engine", ["worker", "dataflow"])
    def test_index_matches_brute_force_mid_flight(self, engine):
        cluster = make_cluster()
        system = make_system(engine, cluster)
        dag = linear_dag(n=5, service_time=0.4, output_size=0.0)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        env = cluster.env
        for _ in range(6):
            env.process(system.invoke("lin"))
        # Snapshot at several mid-flight instants: triggered-but-not-
        # executed work exists while functions are still in service.
        saw_pending = False
        for until in (0.3, 0.7, 1.1, 1.6):
            env.run(until=until)
            for eng in system.engines.values():
                for key in list(eng._structures):
                    structure = eng._structures[key]
                    expected = brute_force_pending(structure)
                    got = [
                        (inv, structure.local_names[index])
                        for inv, index in structure.live_triggered()
                    ]
                    assert sorted(got) == sorted(expected)
                    assert structure.live_triggered_count == len(expected)
                    saw_pending = saw_pending or bool(expected)
        assert saw_pending, "workload never had in-flight work to index"

    def test_drain_returns_brute_force_set_and_clears_flags(self):
        cluster = make_cluster()
        system = make_system("worker", cluster)
        dag = linear_dag(n=4, service_time=0.5, output_size=0.0)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        env = cluster.env
        for _ in range(4):
            env.process(system.invoke("lin"))
        env.run(until=0.8)
        drained_any = False
        for eng in system.engines.values():
            for structure in eng._structures.values():
                expected = brute_force_pending(structure)
                drained = structure.drain_live_triggered()
                assert sorted(drained) == sorted(expected)
                # Drain is the crash-collection primitive: it must reset
                # the TRIGGERED flags and empty the index.
                assert brute_force_pending(structure) == []
                assert structure.live_triggered_count == 0
                assert structure.live_triggered() == []
                drained_any = drained_any or bool(drained)
        assert drained_any


class TestStateRetirement:
    """Satellite (c): per-invocation state dies with the invocation."""

    @pytest.mark.parametrize("engine", ["worker", "dataflow", "master"])
    def test_closed_loop_retires_everything(self, engine):
        cluster = make_cluster()
        system = make_system(engine, cluster)
        dag = fanout_dag(branches=3, output_size=0.0)
        placement = hash_partition(dag, cluster.worker_names())
        if engine == "master":
            system.register(dag, placement)
        else:
            system.deploy(dag, placement)
        records = run_closed_loop(system, dag.name, 25)
        drain(cluster.env)
        assert len(records) == 25
        assert all(r.status == InvocationStatus.OK for r in records)
        self._assert_retired(system, engine)

    @pytest.mark.parametrize("engine", ["worker", "dataflow", "master"])
    def test_open_loop_retires_everything(self, engine):
        cluster = make_cluster()
        system = make_system(engine, cluster)
        dag = linear_dag(n=4, service_time=0.02, output_size=0.0)
        placement = hash_partition(dag, cluster.worker_names())
        if engine == "master":
            system.register(dag, placement)
        else:
            system.deploy(dag, placement)
        client = OpenLoopClient(system, dag.name, 60, 1_200.0, seed=7)
        env = cluster.env
        env.run(until=env.process(client.run()))
        drain(env)
        assert len(client.records) == 60
        self._assert_retired(system, engine)

    def test_worker_crash_recovery_retires_everything(self):
        cluster = make_cluster()
        system = make_system(
            "worker", cluster, max_retries=2, execution_timeout=30.0
        )
        dag = linear_dag(n=4, service_time=0.3, output_size=0.0)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        plan = FaultPlan(
            node_crashes=(NodeCrash(node="worker-1", at=0.5, recovery=0.6),)
        )
        driver = FaultDriver(cluster, plan).attach(system)
        driver.start()
        records = run_closed_loop(system, "lin", 10)
        drain(cluster.env)
        assert len(records) == 10
        # Whatever each invocation's fate under the crash, its state
        # must be gone once its record is finalized.
        self._assert_retired(system, "worker")

    @staticmethod
    def _assert_retired(system, engine):
        assert system.in_flight == 0
        assert system.registry.live_count == 0
        if engine == "master":
            return  # the master keeps no per-invocation arrays outside invoke
        assert not system._contexts
        for eng in system.engines.values():
            for structure in eng._structures.values():
                assert structure.invocation_items() == []
                assert structure.live_invocations == 0
                assert structure.live_triggered_count == 0

    @pytest.mark.parametrize("engine", ["worker", "dataflow"])
    def test_soak_peak_live_tracks_concurrency_not_total(self, engine):
        """Soak: serve many invocations at a rate that keeps only a few
        in flight; peak live state must track concurrency, not total."""
        total = 300
        cluster = make_cluster()
        system = make_system(engine, cluster)
        dag = linear_dag(n=3, service_time=0.01, output_size=0.0)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        client = OpenLoopClient(system, "lin", total, 3_000.0, seed=5)
        env = cluster.env
        env.run(until=env.process(client.run()))
        drain(env)
        assert len(client.records) == total
        assert all(
            r.status == InvocationStatus.OK for r in client.records
        )
        # At 50/s arrivals vs ~10x service headroom, tens of invocations
        # never coexist; far below the total served either way.
        assert 0 < system.peak_in_flight < total / 4
        for eng in system.engines.values():
            for structure in eng._structures.values():
                assert (
                    structure.peak_live_invocations <= system.peak_in_flight
                )
        self._assert_retired(system, engine)


class TestBatchedControlPlane:
    """Tentpole pin: batch_control changes timing, never outcomes."""

    def _run(self, engine, batch):
        reset_invocation_ids(1)
        cluster = make_cluster(workers=2)
        system = make_system(engine, cluster, batch_control=batch)
        # head on one worker, all three branches on the other: the
        # head->branches fan-out is a 3-wide same-destination batch.
        dag = fanout_dag(branches=3, output_size=0.0)
        assignment = {"head": "worker-0", "tail": "worker-0"}
        for i in range(3):
            assignment[f"b{i}"] = "worker-1"
        from repro.core import Placement

        system.deploy(
            dag, Placement(workflow=dag.name, assignment=assignment)
        )
        records = run_closed_loop(system, dag.name, 20)
        drain(cluster.env)
        return records, cluster.network.message_count

    @pytest.mark.parametrize("engine", ["worker", "dataflow"])
    def test_batched_outcomes_identical_and_coalesced(self, engine):
        plain_records, plain_messages = self._run(engine, batch=False)
        batch_records, batch_messages = self._run(engine, batch=True)
        assert len(batch_records) == len(plain_records) == 20
        for plain, batched in zip(plain_records, batch_records):
            # Everything but timing is pinned bit-for-bit.
            assert batched.workflow == plain.workflow
            assert batched.invocation_id == plain.invocation_id
            assert batched.mode == plain.mode
            assert batched.status == plain.status == InvocationStatus.OK
            assert batched.cold_starts == plain.cold_starts
            assert batched.retries == plain.retries
            # started_at/finished_at legitimately shift: closed-loop
            # arrivals chain off the previous finish, and batching
            # changes per-hop timing — that's the documented divergence.
        # The 3-wide fan-out coalesces into one transfer per invocation:
        # 2 control messages fewer, 20 invocations, both engines.
        assert batch_messages == plain_messages - 2 * 20

    def test_single_successor_destinations_never_batch(self):
        """A batch of one is the plain path: a pure chain's control
        traffic is identical with batching on."""
        reset_invocation_ids(1)
        plain_records, plain_messages = self._run_chain(batch=False)
        reset_invocation_ids(1)
        batch_records, batch_messages = self._run_chain(batch=True)
        assert batch_messages == plain_messages
        assert [r.status for r in batch_records] == [
            r.status for r in plain_records
        ]

    def _run_chain(self, batch):
        cluster = make_cluster(workers=2)
        system = make_system("worker", cluster, batch_control=batch)
        dag = linear_dag(n=4, service_time=0.05, output_size=0.0)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        records = run_closed_loop(system, "lin", 10)
        drain(cluster.env)
        return records, cluster.network.message_count

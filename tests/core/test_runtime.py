"""Unit tests for the function runtime (containers + data + execution)."""

import pytest

from repro.core import EngineConfig, FunctionRuntime, RemoteStorePolicy
from repro.dag import WorkflowDAG
from repro.metrics import MetricsCollector

from .conftest import MB, all_on, linear_dag


def make_runtime(cluster, **config_kwargs):
    metrics = MetricsCollector()
    policy = RemoteStorePolicy(cluster, metrics)
    runtime = FunctionRuntime(cluster, EngineConfig(**config_kwargs), policy)
    return runtime, metrics


class TestBasicExecution:
    def test_execution_takes_service_time_plus_cold_start(self, env, cluster):
        runtime, _ = make_runtime(cluster, ship_data=False)
        dag = linear_dag(service_time=0.2)
        placement = all_on(dag, "worker-0")
        result = env.run(
            until=env.process(runtime.execute(dag, placement, 1, "f0"))
        )
        assert result.cold_starts == 1
        # 0.1 cold start (fixture spec) + 0.2 service time.
        assert result.duration == pytest.approx(0.3, rel=1e-6)

    def test_warm_execution_skips_cold_start(self, env, cluster):
        runtime, _ = make_runtime(cluster, ship_data=False)
        dag = linear_dag(service_time=0.2)
        placement = all_on(dag, "worker-0")
        env.run(until=env.process(runtime.execute(dag, placement, 1, "f0")))
        result = env.run(
            until=env.process(runtime.execute(dag, placement, 2, "f0"))
        )
        assert result.cold_starts == 0
        assert result.duration == pytest.approx(0.2, rel=1e-6)

    def test_virtual_node_rejected(self, env, cluster):
        runtime, _ = make_runtime(cluster)
        dag = WorkflowDAG("w")
        dag.add_function("v", is_virtual=True, service_time=0)
        placement = all_on(dag, "worker-0")
        with pytest.raises(ValueError):
            next(runtime.execute(dag, placement, 1, "v"))

    def test_memory_use_noted_for_reclamation(self, env, cluster):
        runtime, _ = make_runtime(cluster, ship_data=False)
        dag = linear_dag()
        dag.node("f0").memory = 48 * MB
        placement = all_on(dag, "worker-0")
        env.run(until=env.process(runtime.execute(dag, placement, 1, "f0")))
        pool = cluster.node("worker-0").containers
        container = pool._idle["f0"][0]
        assert container.peak_memory_used == pytest.approx(48 * MB)


class TestDataPlane:
    def test_inputs_fetched_and_outputs_stored(self, env, cluster):
        runtime, metrics = make_runtime(cluster)
        dag = linear_dag(output_size=1 * MB)
        placement = all_on(dag, "worker-0")
        env.run(until=env.process(runtime.execute(dag, placement, 1, "f0")))
        env.run(until=env.process(runtime.execute(dag, placement, 1, "f1")))
        phases = [(t.phase, t.producer) for t in metrics.transfers]
        assert ("put", "f0") in phases
        assert ("get", "f0") in phases

    def test_ship_data_false_skips_storage(self, env, cluster):
        runtime, metrics = make_runtime(cluster, ship_data=False)
        dag = linear_dag(output_size=5 * MB)
        placement = all_on(dag, "worker-0")
        env.run(until=env.process(runtime.execute(dag, placement, 1, "f0")))
        assert metrics.transfers == []


class TestForeachScaling:
    def make_mapped_dag(self, items=4):
        dag = WorkflowDAG("fe")
        dag.add_function("src", service_time=0.05, output_size=4 * MB)
        dag.add_function(
            "mapped",
            service_time=0.2,
            output_size=8 * MB,
            map_factor=items,
        )
        dag.add_edge("src", "mapped", data_size=4 * MB)
        return dag

    def test_instances_run_in_parallel(self, env, cluster):
        runtime, _ = make_runtime(cluster, ship_data=False)
        dag = self.make_mapped_dag(items=4)
        placement = all_on(dag, "worker-0")
        result = env.run(
            until=env.process(runtime.execute(dag, placement, 1, "mapped"))
        )
        assert result.instances == 4
        assert result.cold_starts == 4
        # Parallel: cold start + service, not 4x service.
        assert result.duration == pytest.approx(0.3, rel=1e-6)

    def test_instances_bounded_by_cores(self, env, cluster):
        """More instances than cores: executions serialize on the CPU."""
        runtime, _ = make_runtime(cluster, ship_data=False)
        dag = self.make_mapped_dag(items=16)  # fixture nodes have 8 cores
        placement = all_on(dag, "worker-0")
        result = env.run(
            until=env.process(runtime.execute(dag, placement, 1, "mapped"))
        )
        # Two CPU waves of 0.2 s each (10-container limit gates slightly
        # differently, but never less than 2 waves).
        assert result.duration >= 0.4

    def test_chunked_output_one_per_instance(self, env, cluster):
        runtime, metrics = make_runtime(cluster)
        dag = self.make_mapped_dag(items=4)
        placement = all_on(dag, "worker-0")
        env.run(until=env.process(runtime.execute(dag, placement, 1, "src")))
        env.run(
            until=env.process(runtime.execute(dag, placement, 1, "mapped"))
        )
        puts = [t for t in metrics.transfers if t.phase == "put" and t.producer == "mapped"]
        assert len(puts) == 4
        assert sum(p.size for p in puts) == pytest.approx(8 * MB)

    def test_mapped_consumer_fetches_each_chunk_once(self, env, cluster):
        runtime, metrics = make_runtime(cluster)
        dag = self.make_mapped_dag(items=4)
        placement = all_on(dag, "worker-0")
        env.run(until=env.process(runtime.execute(dag, placement, 1, "src")))
        env.run(
            until=env.process(runtime.execute(dag, placement, 1, "mapped"))
        )
        gets = [t for t in metrics.transfers if t.phase == "get"]
        # src produced one chunk; the 4 mapped instances split it: the
        # chunk is fetched exactly once overall.
        assert len(gets) == 1
        assert sum(g.size for g in gets) == pytest.approx(4 * MB)


class TestCPUContention:
    def test_two_functions_share_cores(self, env, cluster):
        """With 1-core nodes, two concurrent executions serialize."""
        from repro.sim import Cluster, ClusterConfig, ContainerSpec, NodeConfig
        from repro.sim import Environment

        env2 = Environment()
        small = Cluster(
            env2,
            ClusterConfig(
                workers=1,
                worker=NodeConfig(cores=1, memory=2 * 1024 * MB),
                container=ContainerSpec(cold_start_time=0.0),
            ),
        )
        runtime, _ = make_runtime(small, ship_data=False)
        dag = linear_dag(service_time=0.5)
        placement = all_on(dag, "worker-0")
        p1 = env2.process(runtime.execute(dag, placement, 1, "f0"))
        p2 = env2.process(runtime.execute(dag, placement, 1, "f1"))
        env2.run(until=env2.all_of([p1, p2]))
        assert env2.now == pytest.approx(1.0, rel=1e-6)


class TestServiceTimeJitter:
    def test_zero_jitter_is_deterministic(self, env, cluster):
        runtime, _ = make_runtime(cluster, ship_data=False)
        assert runtime._service_time(0.5) == 0.5

    def test_jitter_varies_but_preserves_mean(self, env, cluster):
        runtime, _ = make_runtime(
            cluster, ship_data=False, service_time_jitter=0.3
        )
        samples = [runtime._service_time(1.0) for _ in range(3000)]
        assert min(samples) < max(samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(1.0, rel=0.05)

    def test_jitter_is_seeded(self, env, cluster):
        a, _ = make_runtime(
            cluster, ship_data=False, service_time_jitter=0.3, jitter_seed=5
        )
        b, _ = make_runtime(
            cluster, ship_data=False, service_time_jitter=0.3, jitter_seed=5
        )
        assert [a._service_time(1.0) for _ in range(10)] == [
            b._service_time(1.0) for _ in range(10)
        ]

    def test_jitter_affects_execution_duration(self, env, cluster):
        from repro.dag import WorkflowDAG
        from .conftest import all_on, linear_dag

        runtime, _ = make_runtime(
            cluster, ship_data=False, service_time_jitter=0.5, jitter_seed=3
        )
        dag = linear_dag(service_time=0.2)
        placement = all_on(dag, "worker-0")
        r1 = env.run(until=env.process(runtime.execute(dag, placement, 1, "f0")))
        r2 = env.run(until=env.process(runtime.execute(dag, placement, 2, "f0")))
        assert r1.duration != r2.duration

    def test_negative_jitter_rejected(self):
        from repro.core import EngineConfig

        with pytest.raises(ValueError):
            EngineConfig(service_time_jitter=-0.1)

"""Unit and property tests for critical path and weight estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    DAGError,
    WorkflowDAG,
    critical_path,
    estimate_edge_weights,
    path_length,
)

MB = 1024.0 * 1024.0


def chain(times):
    dag = WorkflowDAG("chain")
    prev = None
    for i, t in enumerate(times):
        dag.add_function(f"f{i}", service_time=t)
        if prev is not None:
            dag.add_edge(prev, f"f{i}")
        prev = f"f{i}"
    return dag


class TestCriticalPath:
    def test_single_node(self):
        dag = chain([2.5])
        cp = critical_path(dag)
        assert cp.nodes == ("f0",)
        assert cp.length == pytest.approx(2.5)

    def test_chain_includes_all(self):
        dag = chain([1.0, 2.0, 3.0])
        cp = critical_path(dag)
        assert cp.nodes == ("f0", "f1", "f2")
        assert cp.length == pytest.approx(6.0)

    def test_diamond_picks_heavier_branch(self):
        dag = WorkflowDAG("d")
        dag.add_function("a", service_time=1.0)
        dag.add_function("slow", service_time=5.0)
        dag.add_function("fast", service_time=1.0)
        dag.add_function("z", service_time=1.0)
        dag.add_edge("a", "slow")
        dag.add_edge("a", "fast")
        dag.add_edge("slow", "z")
        dag.add_edge("fast", "z")
        cp = critical_path(dag)
        assert cp.nodes == ("a", "slow", "z")
        assert cp.length == pytest.approx(7.0)

    def test_edge_weights_count(self):
        dag = WorkflowDAG("d")
        dag.add_function("a", service_time=1.0)
        dag.add_function("b", service_time=1.0)
        dag.add_function("c", service_time=1.0)
        dag.add_edge("a", "b", weight=10.0)
        dag.add_edge("a", "c", weight=0.0)
        cp = critical_path(dag)
        assert cp.nodes == ("a", "b")
        assert cp.length == pytest.approx(12.0)

    def test_disconnected_components(self):
        dag = WorkflowDAG("d")
        dag.add_function("a", service_time=1.0)
        dag.add_function("b", service_time=9.0)
        cp = critical_path(dag)
        assert cp.nodes == ("b",)

    def test_path_edges_are_returned(self):
        dag = chain([1.0, 1.0])
        cp = critical_path(dag)
        assert len(cp.edges) == 1
        assert cp.edges[0].key == ("f0", "f1")

    def test_path_length_helper(self):
        dag = chain([1.0, 2.0, 3.0])
        assert path_length(dag, ["f0", "f1"]) == pytest.approx(3.0)


class TestEstimateEdgeWeights:
    def test_weights_scale_with_size(self):
        dag = WorkflowDAG("w")
        dag.add_function("a", output_size=10 * MB)
        dag.add_function("b")
        dag.add_edge("a", "b", data_size=10 * MB)
        estimate_edge_weights(dag, bandwidth=10 * MB, db_op_latency=0.0)
        # put + get round trips.
        assert dag.edge("a", "b").weight == pytest.approx(2.0)

    def test_db_latency_added(self):
        dag = WorkflowDAG("w")
        dag.add_function("a")
        dag.add_function("b")
        dag.add_edge("a", "b", data_size=0)
        estimate_edge_weights(dag, bandwidth=10 * MB, db_op_latency=0.002)
        assert dag.edge("a", "b").weight == pytest.approx(0.004)

    def test_invalid_bandwidth_rejected(self):
        dag = WorkflowDAG("w")
        dag.add_function("a")
        with pytest.raises(DAGError):
            estimate_edge_weights(dag, bandwidth=0)


@st.composite
def weighted_dag(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    dag = WorkflowDAG("random")
    for i in range(n):
        dag.add_function(
            f"f{i}",
            service_time=draw(st.floats(min_value=0.01, max_value=3.0)),
        )
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                dag.add_edge(
                    f"f{i}",
                    f"f{j}",
                    weight=draw(st.floats(min_value=0.0, max_value=2.0)),
                )
    return dag


class TestCriticalPathProperties:
    @settings(max_examples=60, deadline=None)
    @given(weighted_dag())
    def test_critical_path_is_a_real_path(self, dag):
        cp = critical_path(dag)
        for src, dst in zip(cp.nodes, cp.nodes[1:]):
            assert dag.has_edge(src, dst)

    @settings(max_examples=60, deadline=None)
    @given(weighted_dag())
    def test_length_matches_path_length(self, dag):
        cp = critical_path(dag)
        assert cp.length == pytest.approx(
            path_length(dag, list(cp.nodes)), rel=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(weighted_dag())
    def test_no_longer_chain_exists(self, dag):
        """Brute-force check: the critical path dominates every path."""
        cp = critical_path(dag)
        best = 0.0

        def extend(name, acc):
            nonlocal best
            acc += dag.node(name).service_time
            best = max(best, acc)
            for edge in dag.out_edges(name):
                extend(edge.dst, acc + edge.weight)

        for source in dag.sources():
            extend(source, 0.0)
        assert cp.length == pytest.approx(best, rel=1e-9)

"""Fluid network model with max-min fair bandwidth sharing.

The paper's tail-latency results (Figs. 12-14) hinge on functions
contending for the storage node's NIC.  This module models each node's
network interface as a pair of unidirectional links (egress / ingress)
with finite bandwidth.  Bulk data transfers are *flows*: whenever the set
of active flows changes, the remaining bytes of every flow are advanced
and rates are re-allocated with the classic max-min fairness water-filling
algorithm (each flow is bottlenecked by the most-contended link it
crosses).

Two structural optimizations keep the model usable at cluster scale
(100+ nodes, thousands of concurrent flows) without changing a single
output bit relative to flow-by-flow full water-filling:

- **Flow aggregation.**  Max-min fairness gives every flow crossing the
  same (src-egress, dst-ingress) link pair the same rate at all times,
  so same-route flows collapse into one :class:`_FlowClass` with
  per-flow byte accounting.  N parallel transfers on one route cost the
  allocator O(1) instead of O(N).
- **Incremental rebalancing.**  The allocation decomposes over connected
  components of the class/link graph: a flow arriving or finishing can
  only change rates inside the component its links belong to.  Each
  rebalance recomputes just that component (found by BFS from the
  changed links); every other class keeps its rate and its
  remaining-bytes projection.  ``NetworkConfig(incremental=False)``
  forces full water-filling every time — the equivalence tests assert
  both modes produce bit-identical completion times and records.

Small control messages (task assignments, state synchronization) are
latency-dominated and bypass the fluid machinery: they cost propagation
latency plus nominal serialization time.  The threshold separating the
two regimes is configurable.

Progress modes
--------------
``NetworkConfig.progress`` selects how flow byte-counters advance:

- ``"stepped"`` (default) — the historical behavior: every network
  event advances *all* active flows to the current time before rates
  change.  A flow's ``remaining`` is always current, but its value
  depends on the global event cadence (each intermediate event splits
  the float subtraction differently).
- ``"analytic"`` — flows settle only at their *own* component's
  rebalances, and completions are scheduled at absolute times via
  :meth:`Environment.schedule_at`.  Because a class's byte trajectory
  then depends only on the event history of its own connected
  component, two simulations that partition disjoint components across
  shards produce bit-identical completion times — this is the mode the
  shard coordinator runs, and it is also faster (no per-flow global
  advance).  The two modes agree to float tolerance but not bit-for-bit,
  which is why stepped stays the default for the frozen-seed benches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Iterable, Optional

from ..obs.spans import NULL_SPANS, SpanKind
from ..obs.telemetry import NULL_TELEMETRY
from .kernel import Environment, Event, SimulationError, Timeout

__all__ = ["NIC", "Network", "Flow", "TransferRecord", "MB", "KB"]

KB = 1024.0
MB = 1024.0 * 1024.0

_EPS = 1e-9
_INF = float("inf")
# Below this many active classes, skip component discovery and
# water-fill over everything: the BFS would cost more than it saves.
_SMALL_COMPONENT = 8


class _Link:
    """One direction of a NIC: a capacity shared by the classes crossing it."""

    __slots__ = ("name", "bandwidth", "classes", "bytes_carried", "mark")

    def __init__(self, name: str, bandwidth: float):
        self.name = name
        self.bandwidth = float(bandwidth)
        # Insertion-ordered (dict-as-set): deterministic traversal.
        self.classes: dict["_FlowClass", None] = {}
        self.bytes_carried = 0.0
        self.mark = 0  # BFS visit epoch (see Network._component)

    @property
    def allocated_rate(self) -> float:
        """Sum of the rates currently granted across this link."""
        return sum(len(c.flows) * c.rate for c in self.classes)


class NIC:
    """A node's network interface: an egress link and an ingress link.

    A NIC with ``remote=True`` is a *proxy* for a node that lives in a
    different simulation shard: flows targeting it are simulated on the
    source side (local contention only) and their completion records are
    exported through :attr:`Network.cross_outbox` for barrier delivery.
    """

    def __init__(self, name: str, bandwidth: float, remote: bool = False):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be > 0, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.remote = remote
        self.egress = _Link(f"{name}.egress", bandwidth)
        self.ingress = _Link(f"{name}.ingress", bandwidth)

    def set_bandwidth(self, bandwidth: float) -> None:
        """Reconfigure NIC speed (the paper's ``wondershaper`` sweep)."""
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be > 0, got {bandwidth}")
        self.bandwidth = float(bandwidth)
        self.egress.bandwidth = float(bandwidth)
        self.ingress.bandwidth = float(bandwidth)

    @property
    def bytes_sent(self) -> float:
        return self.egress.bytes_carried

    @property
    def bytes_received(self) -> float:
        return self.ingress.bytes_carried

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NIC {self.name} {self.bandwidth / MB:.1f} MB/s>"


class Flow:
    """A bulk transfer in progress."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "remaining",
        "links",
        "done",
        "started_at",
        "tag",
        "fclass",
        "finish_eps",
    )

    def __init__(
        self,
        flow_id: int,
        src: NIC,
        dst: NIC,
        size: float,
        done: Event,
        started_at: float,
        tag: str,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.links = (src.egress, dst.ingress)
        self.done = done
        self.started_at = started_at
        self.tag = tag
        self.fclass: Optional["_FlowClass"] = None
        # Same value as _EPS * max(1.0, size), computed once instead of
        # on every completion scan.
        self.finish_eps = _EPS * (self.size if self.size > 1.0 else 1.0)

    @property
    def rate(self) -> float:
        """Current fair-share rate (lives on the flow's route class)."""
        fclass = self.fclass
        return fclass.rate if fclass is not None else 0.0


class _FlowClass:
    """All active flows sharing one (src-egress, dst-ingress) link pair.

    Flows with identical link sets are interchangeable to max-min water
    filling — they freeze at the same level on the same bottleneck — so
    the allocator works on classes and only the byte accounting stays
    per-flow.
    """

    __slots__ = (
        "links",
        "flows",
        "rate",
        "order",
        "mark",
        "since",
        "least",
        "eps_max",
        "finish_at",
    )

    def __init__(self, links: tuple[_Link, _Link]):
        self.links = links
        # Insertion-ordered; arrival order == ascending flow_id.
        self.flows: dict[Flow, None] = {}
        self.rate = 0.0
        # Id of the oldest active flow: the class's position in the
        # allocation order, i.e. where flow-by-flow water-filling would
        # first encounter this route's links.  Maintained on flow
        # add/remove so sorting needs no per-class function call.
        self.order = 0
        self.mark = 0  # BFS visit epoch (see Network._component)
        # Analytic-progress bookkeeping (unused in stepped mode): time of
        # the last settle, min remaining / max finish_eps over members as
        # of that settle, and the absolute completion time of the member
        # that will finish first at the current rate.
        self.since = 0.0
        self.least = _INF
        self.eps_max = 0.0
        self.finish_at = _INF


_CLASS_ORDER = attrgetter("order")


@dataclass(frozen=True)
class TransferRecord:
    """Ledger entry for one completed transfer (bulk or message)."""

    src: str
    dst: str
    size: float
    started_at: float
    finished_at: float
    kind: str  # "flow", "message", or "local"
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class NetworkConfig:
    """Tuning knobs for the network model."""

    latency: float = 0.0005  # one-way propagation latency, seconds
    message_threshold: float = 64 * KB  # below this, skip the fluid model
    local_copy_rate: float = 4096 * MB  # intra-node memcpy bandwidth
    record_transfers: bool = True
    record_limit: int = 2_000_000
    # False forces full water-filling over every class at each flow
    # event — the reference the incremental allocator is tested against.
    incremental: bool = True
    # "stepped" or "analytic" — see the module docstring.  Sharded runs
    # require "analytic" (cadence-independent byte trajectories).
    progress: str = "stepped"
    extra: dict = field(default_factory=dict)


class Network:
    """The cluster fabric: NIC registry plus the fluid flow scheduler."""

    def __init__(self, env: Environment, config: Optional[NetworkConfig] = None):
        self.env = env
        self.config = config or NetworkConfig()
        if self.config.progress not in ("stepped", "analytic"):
            raise SimulationError(
                f"unknown progress mode {self.config.progress!r} "
                "(expected 'stepped' or 'analytic')"
            )
        self._analytic = self.config.progress == "analytic"
        self._nics: dict[str, NIC] = {}
        # dict-as-ordered-set: iteration order (and with it the fair-share
        # float accumulation order) is start-order of the flows, identical
        # in every process — a plain set iterates in address order, which
        # varies run to run and would break serial/parallel equality.
        self._flows: dict[Flow, None] = {}
        self._classes: dict[tuple[_Link, _Link], _FlowClass] = {}
        self._flow_ids = itertools.count(1)
        self._last_advance = env.now
        self._timer: Optional[Timeout] = None
        self._mark = 0  # BFS epoch for _component visited-stamps
        # Recycled _FlowClass shells: route churn (a class per short
        # transfer burst) otherwise allocates one object per flow.
        self._class_pool: list[_FlowClass] = []
        # Classes are created with ascending ``order``, so _classes
        # iterates in allocation order until a class outlives its oldest
        # flow; this flag records when that sortedness breaks.
        self._order_sorted = True
        self.records: list[TransferRecord] = []
        # Incremental byte counters: exact regardless of record_limit.
        self._pair_bytes: dict[tuple[str, str], float] = {}
        self.total_bytes = 0.0
        self.nonlocal_bytes = 0.0
        self.message_count = 0
        self.flow_count = 0
        # Completed transfers whose destination NIC is a remote proxy:
        # the shard coordinator drains these at each barrier and applies
        # them on the owning shard via ingest_remote().
        self.cross_outbox: list[TransferRecord] = []
        self.remote_ingest_count = 0
        self.remote_ingest_bytes = 0.0
        self.spans = NULL_SPANS
        self.telemetry = NULL_TELEMETRY

    # -- topology ------------------------------------------------------
    def attach(self, name: str, bandwidth: float) -> NIC:
        """Create and register a NIC for node ``name``."""
        if name in self._nics:
            raise SimulationError(f"NIC {name!r} already attached")
        nic = NIC(name, bandwidth)
        self._nics[name] = nic
        return nic

    def attach_remote(self, name: str, bandwidth: float) -> NIC:
        """Register a proxy NIC for a node simulated in another shard.

        Transfers into it run the normal fluid model against the proxy's
        ingress capacity (i.e. the source shard sees its own contention
        for the remote NIC, but not other shards'), and completion
        records are exported via :attr:`cross_outbox`.
        """
        if name in self._nics:
            raise SimulationError(f"NIC {name!r} already attached")
        nic = NIC(name, bandwidth, remote=True)
        self._nics[name] = nic
        return nic

    def ingest_remote(self, record: TransferRecord) -> None:
        """Apply the accounting of a transfer simulated in another shard.

        Only the destination-side ingress byte counter is touched — the
        owning (source) shard already accounted the transfer in its own
        totals, records, and pair counters, so merged metrics count each
        transfer exactly once.
        """
        nic = self._nics[record.dst]
        nic.ingress.bytes_carried += record.size
        self.remote_ingest_count += 1
        self.remote_ingest_bytes += record.size

    def nic(self, name: str) -> NIC:
        return self._nics[name]

    @property
    def nics(self) -> dict[str, NIC]:
        return dict(self._nics)

    # -- transfers -------------------------------------------------------
    def transfer(self, src: NIC, dst: NIC, size: float, tag: str = "") -> Event:
        """Move ``size`` bytes from ``src`` to ``dst``.

        Returns an event that fires when the last byte arrives.  Local
        transfers (same NIC) cost a memcpy; small transfers cost latency
        plus nominal serialization; large transfers enter the fair-share
        fluid model.
        """
        if size < 0:
            raise SimulationError(f"negative transfer size {size}")
        done = self.env.event()
        started = self.env.now
        if src is dst:
            duration = size / self.config.local_copy_rate
            self._complete_later(done, duration, src, dst, size, started, "local", tag)
            return done
        if size <= self.config.message_threshold:
            duration = self.config.latency + size / min(
                src.bandwidth, dst.bandwidth
            )
            self.message_count += 1
            self._complete_later(
                done, duration, src, dst, size, started, "message", tag
            )
            return done
        if not self._analytic:
            self._advance()
        flow = Flow(next(self._flow_ids), src, dst, size, done, started, tag)
        self._flows[flow] = None
        links = flow.links
        fclass = self._classes.get(links)
        if fclass is None:
            pool = self._class_pool
            if pool:
                fclass = pool.pop()
                fclass.links = links
            else:
                fclass = _FlowClass(links)
            fclass.order = flow.flow_id
            if self._analytic:
                fclass.since = started
                fclass.finish_at = _INF
            self._classes[links] = fclass
            for link in links:
                link.classes[fclass] = None
        elif self._analytic:
            # Existing members advance at the pre-arrival rate before the
            # newcomer joins; the rebalance below re-settles with dt=0.
            self._settle_class(fclass, started)
        fclass.flows[flow] = None
        flow.fclass = fclass
        self.flow_count += 1
        if self._analytic:
            self._rebalance_analytic(links)
        else:
            self._rebalance(links)
        return done

    def message(self, src: NIC, dst: NIC, size: float = 1 * KB, tag: str = "") -> Event:
        """A latency-dominated control message, never contention-modeled."""
        if size < 0:
            raise SimulationError(f"negative message size {size}")
        started = self.env.now
        if src is dst:
            duration = self.config.extra.get("loopback_latency", 0.00005)
        else:
            duration = self.config.latency + size / min(src.bandwidth, dst.bandwidth)
        self.message_count += 1
        # The delivery timer doubles as the completion event handed to
        # the caller: its first callback books the transfer, then the
        # waiting process resumes off the same queue entry.  (transfer()
        # keeps a separate done event — flow completion is decided by
        # the bandwidth-sharing model, not by a pre-computed timer.)
        timer = self.env.timeout(duration)

        def _finish(_: Event) -> None:
            self._record(src, dst, size, started, "message", tag)

        timer.callbacks.append(_finish)
        return timer

    # -- internals -------------------------------------------------------
    def _complete_later(
        self,
        done: Event,
        duration: float,
        src: NIC,
        dst: NIC,
        size: float,
        started: float,
        kind: str,
        tag: str,
    ) -> None:
        def _finish(_: Event) -> None:
            self._record(src, dst, size, started, kind, tag)
            done.succeed()

        timer = self.env.timeout(duration)
        timer.callbacks.append(_finish)

    def _record(
        self, src: NIC, dst: NIC, size: float, started: float, kind: str, tag: str
    ) -> None:
        self.total_bytes += size
        src.egress.bytes_carried += size
        if dst is not src:
            dst.ingress.bytes_carried += size
        if kind != "local":
            self.nonlocal_bytes += size
        pair = (src.name, dst.name)
        pair_bytes = self._pair_bytes
        try:
            pair_bytes[pair] += size
        except KeyError:
            pair_bytes[pair] = size
        if self.telemetry.enabled:
            # Labeled by the owning source node so sharded telemetry
            # merges as a disjoint union of label-sets: byte sizes are
            # integer-valued, so these counters are exact and
            # order-independent — merged sharded values equal the
            # single-process run's bit for bit.
            self.telemetry.inc("net.bytes", size, node=src.name, kind=kind)
            self.telemetry.inc("net.transfers", 1.0, node=src.name, kind=kind)
        if self.spans.enabled:
            # Contention-induced slowdown: actual wire time over the
            # uncontended time the same bytes would have taken.
            actual = self.env.now - started
            if src is dst:
                ideal = size / self.config.local_copy_rate
            else:
                ideal = self.config.latency + size / min(
                    src.bandwidth, dst.bandwidth
                )
            self.spans.record(
                SpanKind.NET,
                started,
                self.env.now,
                node=src.name,
                transfer=kind,
                dst=dst.name,
                size=size,
                tag=tag,
                slowdown=round(actual / ideal, 4) if ideal > 0 else 1.0,
            )
        record: Optional[TransferRecord] = None
        if self.config.record_transfers and len(self.records) < self.config.record_limit:
            record = TransferRecord(
                src=src.name,
                dst=dst.name,
                size=size,
                started_at=started,
                finished_at=self.env.now,
                kind=kind,
                tag=tag,
            )
            self.records.append(record)
        if dst.remote:
            if record is None:
                record = TransferRecord(
                    src=src.name,
                    dst=dst.name,
                    size=size,
                    started_at=started,
                    finished_at=self.env.now,
                    kind=kind,
                    tag=tag,
                )
            self.cross_outbox.append(record)

    def set_nic_bandwidth(self, nic: NIC, bandwidth: float) -> None:
        """Reconfigure a NIC mid-run; active flows re-share immediately.

        ``NIC.set_bandwidth`` alone only affects flows admitted later;
        this settles in-flight progress at the old rates first and then
        re-runs water-filling over the affected component, which is what
        a transient degradation window needs.
        """
        if self._analytic:
            nic.set_bandwidth(bandwidth)
            self._rebalance_analytic((nic.egress, nic.ingress))
            return
        self._advance()
        nic.set_bandwidth(bandwidth)
        self._rebalance((nic.egress, nic.ingress))

    def _advance(self) -> None:
        """Progress all active flows up to the current time."""
        dt = self.env.now - self._last_advance
        self._last_advance = self.env.now
        if dt <= 0:
            return
        for fclass in self._classes.values():
            rate = fclass.rate
            if rate <= 0.0:
                continue  # remaining - 0.0 is exact: skipping changes nothing
            shift = rate * dt
            for flow in fclass.flows:
                # Same value as max(0.0, remaining - shift), minus the call.
                left = flow.remaining - shift
                flow.remaining = left if left > 0.0 else 0.0

    def _rebalance(self, changed: Iterable[_Link]) -> None:
        """Re-run water-filling where ``changed`` links can matter, re-arm."""
        self._allocate_rates(changed)
        self._arm_timer()

    def _component(self, seeds: Iterable[_Link]) -> list[_FlowClass]:
        """Classes in the connected component(s) of the seed links.

        Links are vertices and classes edges; a flow change can only
        move rates within the component its two links belong to, so this
        is the exact recomputation frontier.
        """
        # Visited state lives as an epoch stamp on links/classes rather
        # than in per-call sets: bumping one counter resets everything.
        self._mark += 1
        mark = self._mark
        pending = []
        for link in seeds:
            if link.mark != mark:
                link.mark = mark
                pending.append(link)
        out: list[_FlowClass] = []
        while pending:
            link = pending.pop()
            for fclass in link.classes:
                if fclass.mark == mark:
                    continue
                fclass.mark = mark
                out.append(fclass)
                for other in fclass.links:
                    if other.mark != mark:
                        other.mark = mark
                        pending.append(other)
        return out

    def _allocate_rates(self, changed: Iterable[_Link]) -> None:
        """Max-min fair water-filling over the affected classes.

        Bit-for-bit equal to per-flow water-filling over all flows:

        - The allocation order (classes by oldest-flow id) reproduces
          the link first-encounter order of the per-flow loop, so the
          EPS tie-break in bottleneck selection resolves identically.
        - A freezing class subtracts its share once per member flow
          (``n * share`` would not accumulate bit-identically).
        - Per-link fair-share levels are cached and re-divided only when
          a link's spare/count changed — same operands, same quotient.
        - Within one freeze step every subtraction is the same value, so
          freezing straight off the bottleneck's own class list (instead
          of filtering all unfrozen classes) reorders nothing that
          float accumulation can observe.
        """
        classes = self._classes
        if not classes:
            return
        if self.config.incremental and len(classes) > _SMALL_COMPONENT:
            component = self._component(changed)
            from_bfs = True
        else:
            # Tiny working sets: component discovery costs more than it
            # saves, and allocating over every class gives the same
            # result (that is the component-independence invariant the
            # incremental mode is built on).
            component = list(classes.values())
            from_bfs = False
        self._allocate_over(component, from_bfs)

    def _allocate_over(self, component: list[_FlowClass], from_bfs: bool) -> None:
        """Water-fill over an already-discovered set of classes."""
        if not component:
            return
        if len(component) == 1:
            # Isolated route: water-filling reduces to one level.  Same
            # divisions and the same EPS tie-break between the two links
            # as the generic loop, so the rate is bit-identical.
            fclass = component[0]
            n = len(fclass.flows)
            first, second = fclass.links
            share = first.bandwidth / n
            other = second.bandwidth / n
            if other < share - _EPS:
                share = other
            fclass.rate = share
            return
        if from_bfs:
            # BFS emits classes in traversal order.
            component.sort(key=_CLASS_ORDER)
        elif not self._order_sorted:
            # Dict order drifted (a class outlived its oldest flow):
            # sort once and rebuild the registry in allocation order so
            # subsequent full passes skip the sort again.
            component.sort(key=_CLASS_ORDER)
            self._classes = {c.links: c for c in component}
            self._order_sorted = True
        link_spare: dict[_Link, float] = {}
        link_count: dict[_Link, int] = {}
        for fclass in component:
            fclass.rate = 0.0
            n = len(fclass.flows)
            for link in fclass.links:
                if link in link_count:
                    link_count[link] += n
                else:
                    link_spare[link] = link.bandwidth
                    link_count[link] = n
        if len(component) <= _SMALL_COMPONENT:
            # Lean variant of the loop below: for a handful of classes
            # the level cache and list compaction cost more than the
            # divisions they avoid.  Same operands, same quotients.
            unfrozen = dict.fromkeys(component)
            while unfrozen:
                bottleneck = None
                share = _INF
                for link, count in link_count.items():
                    if count <= 0:
                        continue
                    lv = link_spare[link] / count
                    if lv < share - _EPS:
                        share = lv
                        bottleneck = link
                if bottleneck is None:
                    break
                frozen_now = [c for c in bottleneck.classes if c in unfrozen]
                if not frozen_now:  # pragma: no cover - defensive
                    break
                for fclass in frozen_now:
                    fclass.rate = share
                    del unfrozen[fclass]
                    n = len(fclass.flows)
                    for link in fclass.links:
                        spare = link_spare[link]
                        if n == 1:
                            spare -= share
                        else:
                            for _ in range(n):
                                spare -= share
                        link_spare[link] = spare
                        link_count[link] -= n
                link_count[bottleneck] = 0
            return
        # First-appearance order, with cached levels; links whose count
        # hits zero drop out of the scan for good (counts only shrink),
        # and the list is compacted once enough of it has died.
        active = list(link_count)
        level = {link: link_spare[link] / link_count[link] for link in active}
        dead = 0
        unfrozen = dict.fromkeys(component)
        while unfrozen:
            if dead * 2 > len(active):
                active = [l for l in active if link_count[l] > 0]
                dead = 0
            # Most-contended link determines the next fair-share level.
            bottleneck = None
            share = _INF
            for link in active:
                if link_count[link] <= 0:
                    continue
                lv = level[link]
                if lv < share - _EPS:
                    share = lv
                    bottleneck = link
            if bottleneck is None:
                break
            frozen_now = [c for c in bottleneck.classes if c in unfrozen]
            if not frozen_now:  # pragma: no cover - defensive
                break
            for fclass in frozen_now:
                fclass.rate = share
                del unfrozen[fclass]
                n = len(fclass.flows)
                for link in fclass.links:
                    spare = link_spare[link]
                    if n == 1:
                        spare -= share
                    else:
                        for _ in range(n):
                            spare -= share
                    link_spare[link] = spare
                    count = link_count[link] - n
                    link_count[link] = count
                    if count > 0:
                        level[link] = spare / count
                    else:
                        dead += 1
            if link_count[bottleneck] > 0:  # pragma: no cover - defensive
                dead += 1
                link_count[bottleneck] = 0

    def _arm_timer(self) -> None:
        """Schedule a wake-up at the earliest flow completion."""
        timer = self._timer
        if timer is not None:
            # Superseded: drop it from ever running instead of letting a
            # stale heap entry fire into a version check.
            timer.cancel()
            self._timer = None
        soonest = _INF
        for fclass in self._classes.values():
            rate = fclass.rate
            if rate > _EPS:
                least = _INF
                for flow in fclass.flows:
                    remaining = flow.remaining
                    if remaining < least:
                        least = remaining
                # Division is monotonic, so min(remaining)/rate equals
                # min(remaining/rate) bit-for-bit: one divide per class.
                time_left = least / rate
                if time_left < soonest:
                    soonest = time_left
        if soonest == _INF:
            return
        timer = self.env.timeout(max(0.0, soonest))
        timer.callbacks.append(self._on_timer)
        self._timer = timer

    def _on_timer(self, _: Event) -> None:
        self._timer = None
        self._advance()
        finished = [f for f in self._flows if f.remaining <= f.finish_eps]
        changed = self._retire_finished(finished)
        self._rebalance(changed)

    def _retire_finished(self, finished: list[Flow]) -> Iterable[_Link]:
        """Remove completed flows, record them, fire their tail timers.

        Returns the links whose components need rebalancing.  Shared by
        the stepped and analytic completion paths.
        """
        for flow in finished:
            self._flows.pop(flow, None)
            fclass = flow.fclass
            flow.fclass = None
            if fclass is not None:
                fclass.flows.pop(flow, None)
                if not fclass.flows:
                    self._classes.pop(fclass.links, None)
                    for link in fclass.links:
                        link.classes.pop(fclass, None)
                    fclass.rate = 0.0
                    if len(self._class_pool) < 64:
                        self._class_pool.append(fclass)
                else:
                    fclass.order = next(iter(fclass.flows)).flow_id
                    self._order_sorted = False
            self._record(
                flow.src,
                flow.dst,
                flow.size,
                flow.started_at,
                "flow",
                flow.tag,
            )
            # Tail latency of the last byte crossing the wire.
            done = flow.done
            tail = self.env.timeout(self.config.latency)
            tail.callbacks.append(lambda _, d=done: d.succeed())
        if len(finished) == 1:
            return finished[0].links
        touched: dict[_Link, None] = {}
        for flow in finished:
            for link in flow.links:
                touched[link] = None
        return tuple(touched)

    # -- analytic progress mode ------------------------------------------
    def _settle_class(self, fclass: _FlowClass, now: float) -> None:
        """Advance one class's members to ``now`` at the current rate.

        Also refreshes the class's cached min-remaining / max-eps, which
        must track membership changes even when no time has passed.
        Every float here depends only on the class's own event history,
        never on when *other* components happened to have events — that
        is the property that makes sharded runs bit-identical.
        """
        dt = now - fclass.since
        rate = fclass.rate
        least = _INF
        eps_max = 0.0
        if dt > 0.0 and rate > 0.0:
            shift = rate * dt
            for flow in fclass.flows:
                left = flow.remaining - shift
                if left <= 0.0:
                    left = 0.0
                flow.remaining = left
                if left < least:
                    least = left
                if flow.finish_eps > eps_max:
                    eps_max = flow.finish_eps
        else:
            for flow in fclass.flows:
                if flow.remaining < least:
                    least = flow.remaining
                if flow.finish_eps > eps_max:
                    eps_max = flow.finish_eps
        fclass.since = now
        fclass.least = least
        fclass.eps_max = eps_max

    def _rebalance_analytic(self, changed: Iterable[_Link]) -> None:
        """Settle + water-fill the affected component, re-arm the timer.

        Unlike the stepped path this always uses exact component
        discovery (never the whole-registry shortcut): settling a class
        at another component's event time would re-partition its float
        subtractions and break shard/single equivalence.
        """
        component = self._component(changed)
        if component:
            now = self.env.now
            for fclass in component:
                self._settle_class(fclass, now)
            self._allocate_over(component, True)
            for fclass in component:
                rate = fclass.rate
                if rate > _EPS:
                    fclass.finish_at = now + fclass.least / rate
                else:
                    fclass.finish_at = _INF
        self._arm_timer_analytic()

    def _arm_timer_analytic(self) -> None:
        """Re-arm the completion wake-up at the earliest ``finish_at``.

        The timer is scheduled at an *absolute* time, so the fire time
        does not depend on which intermediate events this particular
        simulation happened to process (``now + delay`` would).
        """
        timer = self._timer
        if timer is not None:
            timer.cancel()
            self._timer = None
        soonest = _INF
        for fclass in self._classes.values():
            if fclass.finish_at < soonest:
                soonest = fclass.finish_at
        if soonest == _INF:
            return
        now = self.env.now
        timer = self.env.schedule_at(soonest if soonest > now else now)
        timer.callbacks.append(self._on_timer_analytic)
        self._timer = timer

    def _on_timer_analytic(self, _: Event) -> None:
        self._timer = None
        now = self.env.now
        finished: list[Flow] = []
        for fclass in self._classes.values():
            rate = fclass.rate
            if rate <= _EPS:
                continue
            # Projected min-remaining at ``now``; anything within the
            # class's eps band has (or is about to have) completed.
            if fclass.least - rate * (now - fclass.since) <= fclass.eps_max:
                self._settle_class(fclass, now)
                for flow in fclass.flows:
                    if flow.remaining <= flow.finish_eps:
                        finished.append(flow)
        changed = self._retire_finished(finished)
        self._rebalance_analytic(changed)

    # -- introspection -----------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    @property
    def active_flows(self) -> list[Flow]:
        """Active flows in arrival order (testing/introspection)."""
        return list(self._flows)

    def bytes_between(self, src: str, dst: str) -> float:
        """Total bytes moved from node ``src`` to node ``dst``.

        Backed by an incremental per-pair counter updated as transfers
        complete, so it stays exact past ``record_limit`` — the
        ``records`` ledger is a capped debugging aid, not the
        accounting source.
        """
        return self._pair_bytes.get((src, dst), 0.0)

"""Timeout cancellation semantics (lazy drop at heap pop)."""

import pytest

from repro.sim import Environment, SimulationError, Timeout


def test_cancelled_timeout_callbacks_never_run():
    env = Environment()
    fired = []
    timer = env.timeout(1.0)
    timer.callbacks.append(lambda ev: fired.append(ev))
    timer.cancel()
    env.run()
    assert fired == []
    # Tombstones never advance the clock: the final drain time is the
    # last *live* event's time (here: nothing), identically under every
    # scheduler and independent of compaction timing.
    assert env.now == 0.0


def test_cancel_is_idempotent():
    env = Environment()
    timer = env.timeout(0.5)
    timer.cancel()
    timer.cancel()
    assert timer.cancelled
    env.run()


def test_cancel_after_processed_raises():
    env = Environment()
    timer = env.timeout(0.5)
    env.run()
    with pytest.raises(SimulationError, match="processed"):
        timer.cancel()


def test_cancelled_flag_resets_when_dropped():
    """After the drop, the event reads as processed-and-uncancelled so a
    pooled reuse starts clean."""
    env = Environment()
    timer = env.timeout(0.25)
    timer.cancel()
    assert timer.cancelled
    env.run()
    assert not timer.cancelled
    assert timer.processed


def test_uncancelled_timeouts_unaffected():
    env = Environment()
    fired = []
    keep = env.timeout(1.0, value="keep")
    keep.callbacks.append(lambda ev: fired.append(ev.value))
    drop = env.timeout(1.0, value="drop")
    drop.callbacks.append(lambda ev: fired.append(ev.value))
    drop.cancel()
    env.run()
    assert fired == ["keep"]


def test_process_waiting_on_cancelled_timeout_never_resumes():
    env = Environment()
    log = []

    def waiter(env, timer):
        yield timer
        log.append("resumed")

    timer = Timeout(env, 1.0)
    env.process(waiter(env, timer))
    env.run(until=0.0)  # bootstrap the process onto the timeout
    timer.cancel()
    env.run(until=5.0)
    assert log == []


def test_negative_delay_still_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Timeout(env, -1.0)


def test_cancelled_watchdogs_are_compacted_out_of_the_heap():
    """Long timers cancelled long before their deadline must not make
    the heap grow with throughput: past a threshold the environment
    rebuilds the queue without them.  (Heap-specific: the wheel drops
    tombstones bucket-locally instead of compacting globally.)"""
    env = Environment(scheduler="heap")
    for _ in range(500):
        watchdog = env.timeout(60.0)
        watchdog.cancel()
    assert env.queued_events < 130  # not 500
    env.run(until=1.0)  # and the survivors drop cleanly when popped
    assert env.now == 1.0


def test_compaction_keeps_live_timers():
    env = Environment()
    fired = []
    keep = env.timeout(30.0, value="keep")
    keep.callbacks.append(lambda ev: fired.append(ev.value))
    for _ in range(200):
        env.timeout(60.0).cancel()
    env.run(until=61.0)
    assert fired == ["keep"]


def test_double_cancel_counts_once():
    env = Environment()
    timer = env.timeout(10.0)
    timer.cancel()
    timer.cancel()  # no-op, and must not skew the compaction counter
    assert env._cancelled_timers == 1
    env.run(until=11.0)
    assert env._cancelled_timers == 0


def test_stale_resume_after_completion_is_dropped():
    """An interrupt that lands after the process's completion resume is
    already queued (yield on a processed event) must be discarded, not
    delivered into the exhausted generator."""
    env = Environment()
    log = []
    gate = env.event()
    gate.succeed("done")  # processed before anyone waits on it

    def waiter():
        yield env.timeout(0)
        # Yielding a processed event queues the resume instead of
        # delivering synchronously — the window the guard covers.
        value = yield gate
        log.append(value)

    proc = env.process(waiter())

    def racer():
        # Bootstrap ordering puts this after the waiter's re-entry, so
        # the interrupt is queued *behind* the pending value delivery.
        yield env.timeout(0)
        proc.interrupt("too late")

    env.process(racer())
    env.run(until=1.0)
    assert log == ["done"]
    assert proc.processed and proc.ok


def test_double_interrupt_same_timestep_is_safe():
    from repro.sim.kernel import Interrupt

    env = Environment()
    log = []

    def waiter():
        try:
            yield env.timeout(10.0)
        except Interrupt as interrupt:
            log.append(interrupt.cause)

    proc = env.process(waiter())
    env.run(until=0.0)

    def racer():
        proc.interrupt("first")
        proc.interrupt("second")
        yield env.timeout(0)

    env.process(racer())
    env.run(until=1.0)
    # Only the first interrupt is delivered; the second hits a finished
    # process and is dropped.
    assert log == ["first"]

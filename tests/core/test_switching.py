"""Tests for runtime switch-branch selection."""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    HyperFlowServerlessSystem,
    Kind,
    Tracer,
    hash_partition,
)
from repro.core.switching import is_skipped, selected_case
from repro.wdl import parse_workflow

SWITCH_WDL = """
name: moderation
steps:
  - task: classify
    service_time: 100ms
    output_size: 1MB
  - switch: verdict
    cases:
      - condition: "offensive"
        steps:
          - task: blur
            service_time: 500ms
          - task: re-upload
            service_time: 100ms
      - condition: default
        steps:
          - task: approve
            service_time: 50ms
  - task: publish
    service_time: 50ms
"""


class TestSelectedCase:
    def test_deterministic(self):
        a = selected_case("w", 7, "s", 3)
        b = selected_case("w", 7, "s", 3)
        assert a == b
        assert 0 <= a < 3

    def test_varies_across_invocations(self):
        choices = {selected_case("w", i, "s", 2) for i in range(50)}
        assert choices == {0, 1}

    def test_force_case_overrides(self):
        assert selected_case("w", 7, "s", 3, force_case=2) == 2

    def test_force_case_validated(self):
        with pytest.raises(ValueError):
            selected_case("w", 7, "s", 2, force_case=5)

    def test_case_count_validated(self):
        with pytest.raises(ValueError):
            selected_case("w", 7, "s", 0)


class TestParserAnnotations:
    def test_switch_arms_tagged(self):
        dag = parse_workflow(SWITCH_WDL)
        assert dag.node("blur").metadata["switch"] == "verdict"
        assert dag.node("blur").metadata["switch_case"] == 0
        assert dag.node("re-upload").metadata["switch_case"] == 0
        assert dag.node("approve").metadata["switch_case"] == 1
        assert dag.node("verdict.start").metadata["case_count"] == 2

    def test_non_switch_nodes_untagged(self):
        dag = parse_workflow(SWITCH_WDL)
        assert "switch" not in dag.node("classify").metadata
        assert "switch" not in dag.node("publish").metadata

    def test_parallel_arms_not_tagged(self):
        dag = parse_workflow(
            """
name: p
steps:
  - parallel: fan
    branches:
      - - task: a
      - - task: b
"""
        )
        assert "switch" not in dag.node("a").metadata


class TestIsSkipped:
    def test_exactly_one_arm_selected(self):
        dag = parse_workflow(SWITCH_WDL)
        for invocation in range(10):
            blur_skipped = is_skipped(dag, "blur", invocation)
            approve_skipped = is_skipped(dag, "approve", invocation)
            assert blur_skipped != approve_skipped
            # Same arm for the whole chain.
            assert is_skipped(dag, "re-upload", invocation) == blur_skipped

    def test_non_switch_functions_never_skipped(self):
        dag = parse_workflow(SWITCH_WDL)
        assert not is_skipped(dag, "classify", 1)
        assert not is_skipped(dag, "publish", 1)


class TestEngineExecution:
    def run_system(self, engine_cls, force_case, invocations=1):
        from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=2, container=ContainerSpec(cold_start_time=0.01)
            ),
        )
        tracer = Tracer()
        dag = parse_workflow(SWITCH_WDL)
        dag.node("verdict.start").metadata["force_case"] = force_case
        config = EngineConfig(ship_data=False, evaluate_switches=True)
        if engine_cls is HyperFlowServerlessSystem:
            system = HyperFlowServerlessSystem(cluster, config, tracer=tracer)
            system.register(dag, hash_partition(dag, cluster.worker_names()))
        else:
            system = FaaSFlowSystem(cluster, config, tracer=tracer)
            system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        records = run_closed_loop(system, dag.name, invocations)
        return records, tracer, cluster

    @pytest.mark.parametrize(
        "engine_cls", [FaaSFlowSystem, HyperFlowServerlessSystem]
    )
    def test_only_selected_arm_uses_containers(self, engine_cls):
        records, tracer, cluster = self.run_system(engine_cls, force_case=1)
        assert records[0].status == "ok"
        live = set()
        for worker in cluster.workers:
            live.update(worker.containers._all)
        assert "approve" in live
        assert "blur" not in live  # skipped arm never got a container

    def test_skipped_functions_traced_as_skipped(self):
        _, tracer, _ = self.run_system(FaaSFlowSystem, force_case=1)
        skipped = [
            e.function
            for e in tracer.of_kind(Kind.FUNCTION_EXECUTED)
            if e.detail == "skipped"
        ]
        assert set(skipped) == {"blur", "re-upload"}

    def test_skipping_shortens_latency(self):
        slow_records, _, _ = self.run_system(FaaSFlowSystem, force_case=0)
        fast_records, _, _ = self.run_system(FaaSFlowSystem, force_case=1)
        # Arm 0 runs 600 ms of work; arm 1 runs 50 ms.
        assert fast_records[0].latency < slow_records[0].latency

    def test_disabled_by_default_runs_both_arms(self):
        from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=2, container=ContainerSpec(cold_start_time=0.01)
            ),
        )
        dag = parse_workflow(SWITCH_WDL)
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        run_closed_loop(system, dag.name, 1)
        live = set()
        for worker in cluster.workers:
            live.update(worker.containers._all)
        assert {"blur", "approve"} <= live


class TestSwitchWithDataPlane:
    def test_data_shipping_tolerates_skipped_producers(self):
        """Consumers downstream of a skipped arm must not crash when the
        arm's output was never produced."""
        from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

        wdl = SWITCH_WDL.replace(
            "- task: blur\n            service_time: 500ms",
            "- task: blur\n            service_time: 500ms\n            output_size: 2MB",
        ).replace(
            "- task: approve\n            service_time: 50ms",
            "- task: approve\n            service_time: 50ms\n            output_size: 1MB",
        )
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=2, container=ContainerSpec(cold_start_time=0.01)
            ),
        )
        dag = parse_workflow(wdl)
        system = FaaSFlowSystem(
            cluster, EngineConfig(ship_data=True, evaluate_switches=True)
        )
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        records = run_closed_loop(system, dag.name, 4)
        assert all(r.status == "ok" for r in records)

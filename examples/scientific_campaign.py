#!/usr/bin/env python3
"""A scientific sweep campaign under load: bandwidth, tails, and timeouts.

Scenario: a lab submits Cycles agro-ecosystem sweeps at a steady rate
while the storage network degrades (other tenants take bandwidth).
This is the situation the paper's §5.4 studies — and the reason
FaaSFlow's data locality matters: it decouples workflow latency from
the storage NIC.

The example runs the Cycles benchmark open-loop at 4 invocations/min on
both systems while the storage bandwidth drops 100 -> 50 -> 25 MB/s,
and prints the p99 latency and timeout count at each level.

Run: ``python examples/scientific_campaign.py``
"""

from repro import (
    Cluster,
    ClusterConfig,
    ContainerSpec,
    Environment,
    FaaSFlowSystem,
    GraphScheduler,
    HyperFlowServerlessSystem,
    MB,
    hash_partition,
    run_closed_loop,
    run_open_loop,
)
from repro.workloads import cycles

RATE_PER_MINUTE = 4.0
INVOCATIONS = 25
BANDWIDTHS = (100 * MB, 50 * MB, 25 * MB)


def fresh_cluster(bandwidth):
    env = Environment()
    return Cluster(
        env,
        ClusterConfig(
            storage_bandwidth=bandwidth,
            container=ContainerSpec(cold_start_time=0.5),
        ),
    )


def measure_hyperflow(bandwidth):
    cluster = fresh_cluster(bandwidth)
    system = HyperFlowServerlessSystem(cluster)
    dag = cycles()
    system.register(dag, hash_partition(dag, cluster.worker_names()))
    run_open_loop(system, dag.name, INVOCATIONS, RATE_PER_MINUTE)
    return (
        system.metrics.tail_latency(dag.name, q=99),
        len(system.metrics.timeouts(dag.name)),
    )


def measure_faasflow(bandwidth):
    cluster = fresh_cluster(bandwidth)
    system = FaaSFlowSystem(cluster)
    scheduler = GraphScheduler(cluster)
    dag = cycles()
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    run_closed_loop(system, dag.name, 2)  # warm-up + measurements
    scheduler.absorb_feedback(dag, system.metrics)
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    system.metrics.clear()
    run_open_loop(system, dag.name, INVOCATIONS, RATE_PER_MINUTE)
    return (
        system.metrics.tail_latency(dag.name, q=99),
        len(system.metrics.timeouts(dag.name)),
    )


def main() -> None:
    print(f"cycles campaign: {INVOCATIONS} invocations at "
          f"{RATE_PER_MINUTE}/min, 60 s timeout\n")
    print(f"{'bandwidth':>12}  {'HyperFlow p99':>14}  {'timeouts':>8}  "
          f"{'FaaSFlow p99':>13}  {'timeouts':>8}")
    for bandwidth in BANDWIDTHS:
        hyper_p99, hyper_to = measure_hyperflow(bandwidth)
        faas_p99, faas_to = measure_faasflow(bandwidth)
        print(f"{bandwidth / MB:>9.0f} MB/s  {hyper_p99:>12.1f} s  "
              f"{hyper_to:>8}  {faas_p99:>11.1f} s  {faas_to:>8}")
    print("\nAs bandwidth shrinks, the MasterSP baseline degrades toward "
          "the 60 s cap while FaaSFlow's locality keeps tails bounded "
          "(paper §5.4: localized transfer multiplies the usable "
          "bandwidth 1.5-4x).")


if __name__ == "__main__":
    main()

"""Table 4 — total data-movement latency over all edges.

Both systems ship data (§5.3): HyperFlow-serverless through the remote
store, FaaSFlow-FaaStore with the grouped placement and reclaimed
in-memory quotas.  The metric is the summed latency of every storage
operation in the DAG per invocation (not just the critical path), which
is why the paper's numbers exceed end-to-end latencies.

Paper rows (seconds): HyperFlow 204.2 / 2.23 / 29.26 / 10.06 / 4.02 /
0.20 / 1.29 / 1.46; FaaSFlow-FaaStore cuts them by 95 / 69 / 24 / 5.2 /
74 / 35 / 62 / 70 percent (Cyc..WC order).
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..workloads import ALL_BENCHMARKS, BENCHMARKS, build
from .common import (
    ExperimentResult,
    deploy_with_feedback,
    make_cluster,
    make_faasflow,
    make_hyperflow,
    register_hyperflow,
)

__all__ = ["run"]

_PAPER = {
    "cycles": (204.2, 95),
    "epigenomics": (2.23, 69),
    "genome": (29.26, 24),
    "soykb": (10.06, 5.2),
    "video-ffmpeg": (4.02, 74),
    "illegal-recognizer": (0.20, 35),
    "file-processing": (1.29, 62),
    "word-count": (1.46, 70),
}


def _mean_transfer_latency(system, workflow: str, records, dag) -> float:
    """Mean per-invocation latency of *edge* transfers.

    Terminal outputs (a sink function durably storing its result for
    the user) are not edges of the DAG, so they are excluded — Table 4
    measures "data movement in all edges".
    """
    consumed = {
        node.name for node in dag.real_nodes() if dag.data_consumers(node.name)
    }
    ids = {r.invocation_id for r in records}
    total = sum(
        t.duration
        for t in system.metrics.transfers_of(workflow)
        if t.invocation_id in ids and t.producer in consumed
    )
    return total / len(records)


def run(invocations: int = 5, benchmarks: list[str] | None = None) -> ExperimentResult:
    names = benchmarks or ALL_BENCHMARKS
    rows = []
    for name in names:
        # Baseline: MasterSP + remote-store-only.
        cluster_m = make_cluster()
        hyper = make_hyperflow(cluster_m, ship_data=True)
        dag_m = build(name)
        register_hyperflow(hyper, dag_m)
        records = run_closed_loop(hyper, name, invocations)
        hyper_latency = _mean_transfer_latency(hyper, name, records, dag_m)

        # FaaSFlow-FaaStore: feedback-grouped placement + quotas.
        cluster_w = make_cluster()
        faasflow, scheduler = make_faasflow(cluster_w, ship_data=True)
        dag_w = build(name)
        deploy_with_feedback(faasflow, scheduler, dag_w, warmup_invocations=1)
        faasflow.metrics.clear()  # drop warm-up measurements
        records = run_closed_loop(faasflow, name, invocations)
        faas_latency = _mean_transfer_latency(faasflow, name, records, dag_w)
        local_pct = 100 * faasflow.metrics.local_fraction(name)

        reduction = (
            100 * (1 - faas_latency / hyper_latency) if hyper_latency else 0.0
        )
        paper = _PAPER.get(name, ("-", "-"))
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                round(hyper_latency, 2),
                round(faas_latency, 2),
                f"{reduction:.0f}%",
                f"{local_pct:.0f}%",
                f"{paper[0]}s / {paper[1]}%",
            ]
        )
    return ExperimentResult(
        experiment="tab04",
        title="Total data-movement latency over all edges (per invocation)",
        headers=[
            "benchmark",
            "HyperFlow (s)",
            "FaaSFlow-FaaStore (s)",
            "reduction",
            "local bytes",
            "paper (latency / reduction)",
        ],
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

"""Additional WDL parser coverage: nesting, defaults, and hard errors."""

import pytest

from repro.wdl import WDLError, parse_workflow, workflow_from_dict

MB = 1024.0 * 1024.0


class TestDeepNesting:
    def test_sequence_inside_parallel_inside_parallel(self):
        dag = parse_workflow(
            """
name: deep
steps:
  - task: start
    output_size: 1MB
  - parallel: outer
    branches:
      - - parallel: inner
          branches:
            - - sequence: s1
                steps:
                  - task: a1
                  - task: a2
            - - task: b
      - - task: c
"""
        )
        dag.validate()
        assert dag.has_edge("a1", "a2")
        assert dag.has_edge("inner.start", "a1")
        assert dag.has_edge("a2", "inner.end")

    def test_foreach_after_foreach(self):
        dag = parse_workflow(
            """
name: fefe
steps:
  - foreach: first
    items: 2
    steps:
      - task: m1
        output_size: 2MB
  - foreach: second
    items: 3
    steps:
      - task: m2
"""
        )
        dag.validate()
        assert dag.node("m1").map_factor == 2
        assert dag.node("m2").map_factor == 3
        assert dag.has_edge("first.end", "second.start")
        # m2 consumes m1's output through the virtual chain.
        assert dag.data_dependencies("m2") == [("m1", 2 * MB)]

    def test_switch_inside_parallel(self):
        dag = parse_workflow(
            """
name: sp
steps:
  - task: head
  - parallel: p
    branches:
      - - switch: s
          cases:
            - condition: "x"
              steps: [ {task: yes-branch} ]
            - condition: default
              steps: [ {task: no-branch} ]
      - - task: plain
"""
        )
        dag.validate()
        assert dag.node("s.start").step_type == "switch"
        assert dag.has_edge("p.start", "s.start")


class TestDefaults:
    def test_defaults_override_and_inherit(self):
        dag = workflow_from_dict(
            {
                "name": "d",
                "defaults": {
                    "service_time": "1s",
                    "memory": "100MB",
                    "output_size": "5MB",
                },
                "steps": [
                    {"task": "inherits"},
                    {"task": "overrides", "service_time": "2s",
                     "output_size": 0},
                ],
            }
        )
        assert dag.node("inherits").service_time == 1.0
        assert dag.node("inherits").output_size == 5 * MB
        assert dag.node("overrides").service_time == 2.0
        assert dag.node("overrides").output_size == 0

    def test_unknown_default_key_rejected(self):
        with pytest.raises(WDLError):
            workflow_from_dict(
                {
                    "name": "d",
                    "defaults": {"cpu": 2},
                    "steps": [{"task": "t"}],
                }
            )

    def test_non_mapping_defaults_rejected(self):
        with pytest.raises(WDLError):
            workflow_from_dict(
                {"name": "d", "defaults": [1], "steps": [{"task": "t"}]}
            )


class TestMetadata:
    def test_task_metadata_preserved(self):
        dag = workflow_from_dict(
            {
                "name": "m",
                "steps": [
                    {"task": "t", "metadata": {"owner": "team-x", "gpu": True}}
                ],
            }
        )
        assert dag.node("t").metadata["owner"] == "team-x"
        assert dag.node("t").metadata["gpu"] is True

    def test_non_mapping_metadata_rejected(self):
        with pytest.raises(WDLError):
            workflow_from_dict(
                {"name": "m", "steps": [{"task": "t", "metadata": [1]}]}
            )


class TestHardErrors:
    @pytest.mark.parametrize(
        "document",
        [
            {"name": "x", "steps": [{"task": ""}]},  # empty name
            {"name": "x", "steps": [{"task": 42}]},  # non-string name
            {"name": "x", "steps": ["just-a-string"]},  # non-mapping step
            {"name": "x", "steps": [{"parallel": "p", "branches": "nope"}]},
            {"name": "x", "steps": [{"switch": "s", "cases": []}]},
            {"name": "x", "steps": [{"foreach": "f", "items": 2}]},  # no body
            {"name": "x", "steps": [{"sequence": "s", "steps": []}]},
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(WDLError):
            workflow_from_dict(document)

    def test_empty_branch_rejected(self):
        with pytest.raises(WDLError):
            workflow_from_dict(
                {
                    "name": "x",
                    "steps": [
                        {"parallel": "p", "branches": [[], [{"task": "t"}]]}
                    ],
                }
            )

    def test_step_name_colliding_with_virtual_node(self):
        """A task literally named 'p.start' collides with the parallel
        step's virtual node and must be rejected at build time."""
        with pytest.raises(Exception):
            workflow_from_dict(
                {
                    "name": "x",
                    "steps": [
                        {"task": "p.start"},
                        {
                            "parallel": "p",
                            "branches": [[{"task": "a"}], [{"task": "b"}]],
                        },
                    ],
                }
            )


class TestDataFlowThroughSteps:
    def test_sequence_inside_branch_forwards_sizes(self):
        dag = parse_workflow(
            """
name: flow
steps:
  - task: head
    output_size: 4MB
  - parallel: p
    branches:
      - - task: first
          output_size: 2MB
        - task: second
          output_size: 1MB
      - - task: other
  - task: tail
"""
        )
        # 'second' consumes only its chain predecessor.
        assert dag.data_dependencies("second") == [("first", 2 * MB)]
        # 'tail' consumes both branch exits.
        deps = dict(dag.data_dependencies("tail"))
        assert deps == {"second": 1 * MB, "other": 0.0}

"""Storage substrates: remote key-value store and node-local memory store.

:class:`RemoteKVStore` stands in for the paper's CouchDB instance on the
storage node — every put/get crosses the network to the storage node's
NIC (which is exactly the bottleneck §5.4 sweeps) plus a database
operation latency.

:class:`LocalMemStore` stands in for the per-node Redis that FaaStore
uses for co-located functions: puts and gets are memory-speed and bounded
by the FaaStore quota reclaimed from containers (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .kernel import Environment, Event, SimulationError
from .network import NIC, Network
from .sync import Resource

__all__ = ["RemoteKVStore", "LocalMemStore", "StorageStats", "KeyNotFoundError"]


class KeyNotFoundError(KeyError):
    """Lookup of a key that was never stored (or already deleted)."""


@dataclass
class StorageStats:
    """Byte/op counters for one storage backend."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_in: float = 0.0
    bytes_out: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.bytes_in + self.bytes_out


class RemoteKVStore:
    """A CouchDB-like store living behind the storage node's NIC."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        nic: NIC,
        op_latency: float = 0.002,
        concurrency: int = 8,
    ):
        if op_latency < 0:
            raise SimulationError("op_latency must be >= 0")
        self.env = env
        self.network = network
        self.nic = nic
        self.op_latency = op_latency
        # The database serves a bounded number of requests at once
        # (worker threads / disk IOPS); excess requests queue FIFO.
        self._slots = Resource(env, capacity=concurrency)
        self._data: dict[str, float] = {}
        self.stats = StorageStats()

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def size_of(self, key: str) -> float:
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def put(self, key: str, size: float, src: NIC, tag: str = "") -> Event:
        """Ship ``size`` bytes from ``src`` into the store.

        Fires when the write is durable (transfer + db-op latency).
        """
        if size < 0:
            raise SimulationError(f"negative object size {size}")
        done = self.env.event()
        slot = self._slots.request()

        def _start(_: Event) -> None:
            transfer = self.network.transfer(
                src, self.nic, size, tag=tag or f"put:{key}"
            )
            transfer.callbacks.append(_after_transfer)

        def _after_transfer(_: Event) -> None:
            op = self.env.timeout(self.op_latency)
            op.callbacks.append(
                lambda __: self._commit_put(key, size, done, slot)
            )

        slot.callbacks.append(_start)
        return done

    def _commit_put(self, key: str, size: float, done: Event, slot) -> None:
        self._slots.release(slot)
        self._data[key] = size
        self.stats.puts += 1
        self.stats.bytes_in += size
        done.succeed()

    def get(self, key: str, dst: NIC, tag: str = "") -> Event:
        """Fetch ``key`` to ``dst``; fires with the object size."""
        if key not in self._data:
            done = self.env.event()
            done.fail(KeyNotFoundError(key))
            return done
        size = self._data[key]
        done = self.env.event()
        slot = self._slots.request()

        def _start(_: Event) -> None:
            op = self.env.timeout(self.op_latency)
            op.callbacks.append(_after_op)

        def _after_op(_: Event) -> None:
            transfer = self.network.transfer(
                self.nic, dst, size, tag=tag or f"get:{key}"
            )
            transfer.callbacks.append(
                lambda __: self._commit_get(size, done, slot)
            )

        slot.callbacks.append(_start)
        return done

    def _commit_get(self, size: float, done: Event, slot) -> None:
        self._slots.release(slot)
        self.stats.gets += 1
        self.stats.bytes_out += size
        done.succeed(size)

    def delete(self, key: str) -> None:
        if self._data.pop(key, None) is not None:
            self.stats.deletes += 1

    @property
    def stored_bytes(self) -> float:
        return sum(self._data.values())

    @property
    def key_count(self) -> int:
        return len(self._data)


class LocalMemStore:
    """A Redis-like in-memory store local to one worker node.

    Capacity is the FaaStore quota (Eq. 2): :meth:`try_put` refuses
    objects that would overflow it, and FaaStore falls back to the remote
    store in that case.  Access latency is a per-op constant (loopback
    RPC to the co-located store process).
    """

    def __init__(
        self,
        env: Environment,
        node_name: str,
        quota: float = 0.0,
        op_latency: float = 0.0002,
        copy_rate: float = 4096 * 1024 * 1024,
    ):
        if quota < 0:
            raise SimulationError("quota must be >= 0")
        self.env = env
        self.node_name = node_name
        self.quota = float(quota)
        self.op_latency = op_latency
        self.copy_rate = copy_rate
        self._data: dict[str, float] = {}
        self._used = 0.0
        self.stats = StorageStats()
        self.rejected_puts = 0

    def __contains__(self, key: str) -> bool:
        return key in self._data

    @property
    def used(self) -> float:
        return self._used

    @property
    def free(self) -> float:
        return self.quota - self._used

    def set_quota(self, quota: float) -> None:
        """Update the quota (a new reclamation round may grow or shrink it).

        Shrinking below current usage is allowed — existing objects stay
        until consumed, but new puts are refused.
        """
        if quota < 0:
            raise SimulationError("quota must be >= 0")
        self.quota = float(quota)

    def try_put(self, key: str, size: float) -> Optional[Event]:
        """Store locally if the quota allows; ``None`` means caller must
        fall back to the remote store.  Re-putting an existing key is an
        idempotent no-op (concurrent read-through misses may race)."""
        if size < 0:
            raise SimulationError(f"negative object size {size}")
        if key in self._data:
            done = self.env.event()
            done.succeed()
            return done
        if self._used + size > self.quota + 1e-9:
            self.rejected_puts += 1
            return None
        self._used += size
        self._data[key] = size
        self.stats.puts += 1
        self.stats.bytes_in += size
        done = self.env.event()
        timer = self.env.timeout(self.op_latency + size / self.copy_rate)
        timer.callbacks.append(lambda _: done.succeed())
        return done

    def get(self, key: str) -> Event:
        """Fires with the object size; fails if the key is absent."""
        done = self.env.event()
        if key not in self._data:
            done.fail(KeyNotFoundError(key))
            return done
        size = self._data[key]
        self.stats.gets += 1
        self.stats.bytes_out += size
        timer = self.env.timeout(self.op_latency + size / self.copy_rate)
        timer.callbacks.append(lambda _: done.succeed(size))
        return done

    def delete(self, key: str) -> None:
        size = self._data.pop(key, None)
        if size is not None:
            # Clamp: float accumulation must never leave phantom usage.
            self._used = max(0.0, self._used - size)
            self.stats.deletes += 1

    def clear(self) -> None:
        self._data.clear()
        self._used = 0.0

    @property
    def key_count(self) -> int:
        return len(self._data)

"""Causal spans: the tree-structured execution trace.

Every invocation becomes a span tree — one ``invocation`` root, one
``function`` span per function task, and child spans for each stage the
task passed through (``queue-wait``, ``cold-start``, ``execute``,
``put``/``get``) — plus control-plane ``state-sync`` spans and
node-track spans from the simulation substrate itself (network
transfers with their contention-induced slowdown, container lifecycle
events, FaaStore spills).

The tracer is opt-in and *zero-cost when disabled*: every producer
holds :data:`NULL_SPANS`, a :class:`NullSpanTracer` whose methods are
no-ops, and guards any attribute collection behind ``spans.enabled``.

Completed spans live in a bounded ring (drop-oldest, ``dropped``
counted) so long runs keep their tail instead of losing it.

:func:`decompose` turns one invocation's spans into a measured latency
breakdown whose components sum *exactly* to the end-to-end latency: the
invocation window is partitioned into segments, each segment is labeled
with the highest-priority span category active during it, and whatever
no span covers is the residual ``engine`` time (scheduling overhead +
idle) — the quantity the paper's §2.3 estimates by static subtraction.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "Span",
    "SpanKind",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_SPANS",
    "BREAKDOWN_COMPONENTS",
    "category_of",
    "decompose",
    "span_tree",
    "format_span_tree",
]


class SpanKind:
    """Span kinds emitted by the instrumented producers."""

    INVOCATION = "invocation"
    FUNCTION = "function"
    QUEUE_WAIT = "queue-wait"
    COLD_START = "cold-start"
    EXECUTE = "execute"
    STATE_SYNC = "state-sync"
    PUT = "put"
    GET = "get"
    # Node-track spans from the substrate (not part of the breakdown —
    # the data plane's puts/gets already account for the wire time).
    NET = "net"
    CONTAINER = "container"
    SPILL = "spill"
    # Fault-tolerance annotations: infrastructure faults fired by a
    # FaultDriver and retry/cancellation decisions in the task runtime.
    FAULT = "fault"
    RETRY = "retry"


@dataclass
class Span:
    """One timed, attributed, causally-linked occurrence."""

    span_id: int
    parent_id: Optional[int]
    kind: str
    start: float
    end: Optional[float] = None  # None while the span is open
    workflow: str = ""
    invocation_id: int = 0
    function: str = ""
    node: str = ""
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def __repr__(self) -> str:  # pragma: no cover
        tail = f" fn={self.function}" if self.function else ""
        return (
            f"<Span #{self.span_id} {self.kind} "
            f"[{self.start:.4f}, {self.end}]{tail}>"
        )


# Breakdown categories, highest priority first: an instant covered by
# several span categories is attributed to the first one listed.
_PRIORITY = (
    SpanKind.EXECUTE,
    SpanKind.COLD_START,
    "transfer",
    SpanKind.QUEUE_WAIT,
    "sync",
)

BREAKDOWN_COMPONENTS = (
    "execute",
    "cold_start",
    "transfer",
    "queue_wait",
    "sync",
    "engine",
)

_CATEGORY = {
    SpanKind.EXECUTE: "execute",
    SpanKind.COLD_START: "cold_start",
    SpanKind.PUT: "transfer",
    SpanKind.GET: "transfer",
    SpanKind.QUEUE_WAIT: "queue_wait",
    SpanKind.STATE_SYNC: "sync",
}

_RANK = {
    SpanKind.EXECUTE: 0,
    SpanKind.COLD_START: 1,
    SpanKind.PUT: 2,
    SpanKind.GET: 2,
    SpanKind.QUEUE_WAIT: 3,
    SpanKind.STATE_SYNC: 4,
}

_RANK_TO_COMPONENT = ("execute", "cold_start", "transfer", "queue_wait", "sync")


def category_of(kind: str) -> Optional[str]:
    """Breakdown component a span kind contributes to (None: excluded)."""
    return _CATEGORY.get(kind)


def decompose(
    spans: Iterable[Span], window: tuple[float, float]
) -> dict[str, float]:
    """Measured latency decomposition of one invocation.

    Sweeps the ``window`` (usually ``[started_at, finished_at]``),
    attributing each elementary segment to the highest-priority span
    category active during it; uncovered time is ``engine``.  The
    returned components sum to ``window[1] - window[0]`` exactly (up to
    float summation error), whatever the spans' overlap structure.
    """
    lo, hi = window
    components = dict.fromkeys(BREAKDOWN_COMPONENTS, 0.0)
    if hi <= lo:
        return components
    # Boundary events: (time, +1/-1, rank), clamped to the window.
    events: list[tuple[float, int, int]] = []
    for span in spans:
        rank = _RANK.get(span.kind)
        if rank is None:
            continue
        end = span.end if span.end is not None else hi
        start = max(span.start, lo)
        end = min(end, hi)
        if end <= start:
            continue
        events.append((start, +1, rank))
        events.append((end, -1, rank))
    if not events:
        components["engine"] = hi - lo
        return components
    events.sort(key=lambda e: (e[0], e[1]))
    active = [0] * len(_RANK_TO_COMPONENT)
    cursor = lo
    index = 0
    while index < len(events):
        time = events[index][0]
        if time > cursor:
            label = "engine"
            for rank, count in enumerate(active):
                if count > 0:
                    label = _RANK_TO_COMPONENT[rank]
                    break
            components[label] += time - cursor
            cursor = time
        while index < len(events) and events[index][0] == time:
            _, delta, rank = events[index]
            active[rank] += delta
            index += 1
    if hi > cursor:
        label = "engine"
        for rank, count in enumerate(active):
            if count > 0:
                label = _RANK_TO_COMPONENT[rank]
                break
        components[label] += hi - cursor
    return components


def span_tree(spans: Iterable[Span]) -> list[tuple[int, Span]]:
    """Depth-first (depth, span) pairs of a span list.

    Orphans (spans whose parent is absent — e.g. evicted from the ring)
    appear at depth 0 alongside the proper roots.
    """
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    ids = {s.span_id for s in ordered}
    by_parent: dict[Optional[int], list[Span]] = {}
    for span in ordered:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    out: list[tuple[int, Span]] = []

    def walk(span: Span, depth: int) -> None:
        out.append((depth, span))
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return out


def format_span_tree(spans: Iterable[Span]) -> str:
    """Human-readable rendering of :func:`span_tree`."""
    lines = []
    for depth, span in span_tree(spans):
        subject = f" {span.function}" if span.function else ""
        location = f" @{span.node}" if span.node else ""
        status = f" [{span.status}]" if span.status != "ok" else ""
        lines.append(
            f"{span.start:10.4f} {span.duration * 1000:9.3f}ms  "
            f"{'  ' * depth}{span.kind}{subject}{location}{status}"
        )
    return "\n".join(lines)


class SpanTracer:
    """Collects causal spans against a simulation environment's clock."""

    enabled = True

    def __init__(self, env, limit: int = 1_000_000):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.env = env
        self.limit = limit
        # Completed spans, bounded ring: at capacity the *oldest* span
        # is evicted so the tail of a long run survives.
        self.spans: deque[Span] = deque(maxlen=limit)
        self.dropped = 0
        self._ids = itertools.count(1)
        self._open: dict[int, Span] = {}
        self._roots: dict[int, Span] = {}
        self._contexts: dict[tuple[int, str], Span] = {}

    # -- recording -------------------------------------------------------
    def start(
        self,
        kind: str,
        *,
        workflow: str = "",
        invocation_id: int = 0,
        function: str = "",
        node: str = "",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            kind=kind,
            start=self.env.now,
            workflow=workflow,
            invocation_id=invocation_id,
            function=function,
            node=node,
            attrs=attrs,
        )
        self._open[span.span_id] = span
        return span

    def end(self, span: Span, status: str = "ok", **attrs) -> Span:
        if span.end is not None:
            return span
        span.end = self.env.now
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._open.pop(span.span_id, None)
        self._append(span)
        return span

    def record(
        self,
        kind: str,
        start: float,
        end: Optional[float] = None,
        *,
        workflow: str = "",
        invocation_id: int = 0,
        function: str = "",
        node: str = "",
        parent: Optional[Span] = None,
        status: str = "ok",
        **attrs,
    ) -> Span:
        """Append a retrospective (already finished) span."""
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            kind=kind,
            start=start,
            end=self.env.now if end is None else end,
            workflow=workflow,
            invocation_id=invocation_id,
            function=function,
            node=node,
            status=status,
            attrs=attrs,
        )
        self._append(span)
        return span

    def event(self, kind: str, **kwargs) -> Span:
        """A zero-duration marker span at the current simulated time."""
        now = self.env.now
        return self.record(kind, now, now, **kwargs)

    def _append(self, span: Span) -> None:
        if len(self.spans) >= self.limit:
            evicted = self.spans[0]
            if evicted.kind == SpanKind.INVOCATION:
                self._roots.pop(evicted.invocation_id, None)
            self.dropped += 1
        self.spans.append(span)

    # -- invocation / function context -----------------------------------
    def start_invocation(
        self, invocation_id: int, *, workflow: str = "", **attrs
    ) -> Span:
        span = self.start(
            SpanKind.INVOCATION,
            workflow=workflow,
            invocation_id=invocation_id,
            **attrs,
        )
        self._roots[invocation_id] = span
        return span

    def root_of(self, invocation_id: int) -> Optional[Span]:
        return self._roots.get(invocation_id)

    def set_context(
        self, invocation_id: int, function: str, span: Span
    ) -> None:
        """Register ``span`` as the parent for the task's data-plane ops."""
        self._contexts[(invocation_id, function)] = span

    def clear_context(self, invocation_id: int, function: str) -> None:
        self._contexts.pop((invocation_id, function), None)

    def context_of(
        self, invocation_id: int, function: str
    ) -> Optional[Span]:
        return self._contexts.get((invocation_id, function))

    # -- lifecycle -------------------------------------------------------
    def finalize(self) -> int:
        """Close any still-open spans (timeout stragglers) at ``now``.

        Returns how many spans were force-closed; they keep
        ``status="open"`` so exports can tell them apart.
        """
        closed = 0
        for span in list(self._open.values()):
            span.end = self.env.now
            span.status = "open"
            self._append(span)
            closed += 1
        self._open.clear()
        return closed

    def clear(self) -> None:
        self.spans.clear()
        self._open.clear()
        self._roots.clear()
        self._contexts.clear()
        self.dropped = 0

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self._open)

    def all_spans(self) -> list[Span]:
        """Completed + still-open spans, in recording order."""
        return list(self.spans) + list(self._open.values())

    def spans_of(self, invocation_id: int) -> list[Span]:
        return [
            s for s in self.all_spans() if s.invocation_id == invocation_id
        ]

    def of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.all_spans() if s.kind == kind]

    def invocation_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for span in self.spans:
            if span.kind == SpanKind.INVOCATION:
                seen[span.invocation_id] = None
        return list(seen)

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.all_spans() if s.parent_id == span_id]

    def tree(self, invocation_id: int) -> list[tuple[int, Span]]:
        """Depth-first (depth, span) pairs of one invocation's tree."""
        return span_tree(self.spans_of(invocation_id))

    def format_tree(self, invocation_id: int) -> str:
        """Human-readable span tree of one invocation."""
        return format_span_tree(self.spans_of(invocation_id))

    def breakdown_of(self, invocation_id: int) -> Optional[dict[str, float]]:
        """Measured decomposition over the invocation root's interval."""
        root = self.root_of(invocation_id)
        if root is None or root.end is None:
            return None
        return decompose(
            self.spans_of(invocation_id), (root.start, root.end)
        )


class NullSpanTracer:
    """The disabled tracer: every operation is a no-op.

    Producers hold this singleton by default so instrumentation costs
    one truthiness check (``spans.enabled``) — or, at worst, one no-op
    method call — when tracing is off.
    """

    enabled = False
    dropped = 0
    limit = 0

    _NULL_SPAN = Span(span_id=0, parent_id=None, kind="null", start=0.0, end=0.0)

    def start(self, *args, **kwargs) -> Span:
        return self._NULL_SPAN

    def end(self, span, *args, **kwargs) -> Span:
        return span

    def record(self, *args, **kwargs) -> Span:
        return self._NULL_SPAN

    def event(self, *args, **kwargs) -> Span:
        return self._NULL_SPAN

    def start_invocation(self, *args, **kwargs) -> Span:
        return self._NULL_SPAN

    def root_of(self, invocation_id: int) -> Optional[Span]:
        return None

    def set_context(self, *args, **kwargs) -> None:
        return None

    def clear_context(self, *args, **kwargs) -> None:
        return None

    def context_of(self, *args, **kwargs) -> Optional[Span]:
        return None

    def finalize(self) -> int:
        return 0

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def all_spans(self) -> list[Span]:
        return []

    def spans_of(self, invocation_id: int) -> list[Span]:
        return []

    def of_kind(self, kind: str) -> list[Span]:
        return []

    def invocation_ids(self) -> list[int]:
        return []


NULL_SPANS = NullSpanTracer()

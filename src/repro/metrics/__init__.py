"""Measurement and aggregation for workflow experiments."""

from .collector import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
    TransferEvent,
    percentile,
)

__all__ = [
    "InvocationRecord",
    "InvocationStatus",
    "MetricsCollector",
    "percentile",
    "TransferEvent",
]

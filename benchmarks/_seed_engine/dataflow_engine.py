# FROZEN pre-PR copy for the engine-throughput A/B benchmark.
#
# Do not edit: this is the seed-side baseline that
# benchmarks/test_bench_engine.py races the live engines against.
# Imports of shared substrate (sim kernel, network, faults, policy,
# metrics) point at the live repro.* modules; the frozen modules
# (engines, state, runtime, clients) import each other relatively.

"""DataflowSP: function-level dataflow triggering with eager shipping.

FaaSFlow's WorkerSP decentralizes triggering to sub-graph granularity:
each worker runs one serialized engine loop that bookkeeps its local
sub-graph.  The paper's two closest descendants (DFlow, DataFlower —
see PAPERS.md) go one level further and both beat it the same way:

- **Function-level triggering.**  There is no per-node engine loop to
  serialize behind.  Every finished predecessor sends a *token*
  straight at the consumer function; the token handler that completes
  the function's input set fires it immediately.  Tokens are handled
  in parallel (:meth:`DataflowEngine._token_step` has no lock), each
  paying only the small constant ``config.dataflow_trigger_time``.
- **Eager data shipping.**  The moment a producer writes an output
  chunk, the chunk is pushed worker-to-worker into each remote
  consumer node's FaaStore (``config.eager_ship``), so the transfer
  overlaps the rest of the upstream compute and the consumer's own
  cold start / queue wait.  By the time the consumer's last token
  lands, its inputs are usually already node-local.  Shipping is a
  pure pre-fetch: a lost or quota-refused push degrades to the normal
  read-through path, never to a wrong answer.

Everything below the trigger paradigm — containers, retries, straggler
watchdogs, cancellation, spans, telemetry — is the same substrate the
other two engines use, which is what makes the three-way comparison
(`faasflow-experiment fig12/fig13/dataflow`) apples-to-apples.
"""

from __future__ import annotations

from typing import Generator

from repro.obs.spans import SpanKind
from repro.sim import Node
from repro.core.faults import FunctionFailure, TaskCancelled
from .state import InvocationID, WorkflowStructure
from repro.core.switching import is_skipped
from repro.core.tracing import Kind
from .worker_engine import FaaSFlowSystem

__all__ = ["DataflowEngine", "DataflowSystem"]


class DataflowEngine:
    """Function-level dataflow triggering on one worker node.

    Holds the same deployed :class:`WorkflowStructure` sub-graphs as a
    WorkerSP engine (deployment is placement-driven either way), but
    consumes *tokens* instead of running a serialized engine loop: any
    number of tokens make progress in the same instant, each paying
    ``dataflow_trigger_time`` of handling cost.
    """

    def __init__(self, system: "DataflowSystem", node: Node):
        self.system = system
        self.node = node
        self.env = node.env
        # (workflow, version) -> structure for the local sub-graph.
        self._structures: dict[tuple[str, int], WorkflowStructure] = {}
        self.tokens_received = 0  # cross-worker dataflow tokens received
        self.events_handled = 0  # token-handler activations
        self.busy_time = 0.0  # summed token-handling cost
        self.pushes_started = 0  # eager chunk pushes spawned
        # Crash state: while down, incoming tokens queue (the senders'
        # TCP stacks retry the connection) and replay on recovery.
        self.down = False
        self.crash_count = 0
        self._deferred: list[tuple[str, str, int, InvocationID, str]] = []

    # -- deployment ---------------------------------------------------------
    def deploy(self, structure: WorkflowStructure) -> None:
        self._structures[(structure.workflow, structure.version)] = structure

    def retire(self, workflow: str, version: int) -> None:
        """Red-black support: drop an out-of-date sub-graph version."""
        structure = self._structures.pop((workflow, version), None)
        if structure is None:
            return
        for function in structure.local_functions:
            if not structure.info(function).is_virtual:
                self.node.containers.recycle_version(function, version + 1)

    def structure(self, workflow: str, version: int) -> WorkflowStructure:
        try:
            return self._structures[(workflow, version)]
        except KeyError:
            raise KeyError(
                f"no sub-graph of {workflow!r} v{version} on {self.node.name}"
            ) from None

    def has_structure(self, workflow: str, version: int) -> bool:
        return (workflow, version) in self._structures

    @property
    def deployed_count(self) -> int:
        return len(self._structures)

    # -- token handling -------------------------------------------------------
    def _token_step(self) -> Generator:
        # Deliberately lock-free: dataflow triggering has no sub-graph
        # engine loop, so concurrent tokens never queue behind each
        # other.  This (not a smaller constant) is the structural
        # difference from WorkerSP's serialized ``_engine_step``.
        yield self.env.timeout(self.system.config.dataflow_trigger_time)
        self.events_handled += 1
        self.busy_time += self.system.config.dataflow_trigger_time

    def receive_token(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """A dataflow token for ``function`` arrived: one input is ready."""
        if self.down:
            self._deferred.append(
                ("token", workflow, version, invocation_id, function)
            )
            return
        yield from self._token_step()
        structure = self.structure(workflow, version)
        info = structure.info(function)
        state = structure.invocation(invocation_id).state_of(function)
        state.mark_predecessor_done()
        if state.ready(info.predecessors_count):
            # The last input became ready: fire immediately.
            state.triggered = True
            self.system.spawn_registered(
                self.run_function(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"dataflow:{self.node.name}:{function}",
            )

    def trigger_source(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """Invocation request for an entry function arrived at this node."""
        if self.down:
            self._deferred.append(
                ("trigger", workflow, version, invocation_id, function)
            )
            return
        yield from self._token_step()
        structure = self.structure(workflow, version)
        state = structure.invocation(invocation_id).state_of(function)
        if not state.triggered:
            state.triggered = True
            self.system.spawn_registered(
                self.run_function(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"dataflow:{self.node.name}:{function}",
            )

    # -- local execution -----------------------------------------------------
    def run_function(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        structure = self.structure(workflow, version)
        info = structure.info(function)
        self.system.trace(
            Kind.FUNCTION_TRIGGERED, workflow, invocation_id,
            function=function, node=self.node.name,
        )
        skipped = (
            self.system.config.evaluate_switches
            and not info.is_virtual
            and is_skipped(structure.dag, function, invocation_id)
        )
        produced = False
        if info.is_virtual or skipped:
            # Virtual step markers (and non-selected switch arms) cost
            # one local bookkeeping action, no container and no data.
            yield self.env.timeout(self.system.config.local_trigger_time)
            if skipped:
                self.system.trace(
                    Kind.FUNCTION_EXECUTED, workflow, invocation_id,
                    function=function, node=self.node.name, detail="skipped",
                )
        else:
            execute_proc = self.system.spawn_registered(
                self.system.runtime.execute(
                    structure.dag,
                    structure.placement,
                    invocation_id,
                    function,
                    version=version,
                ),
                invocation_id,
                node=self.node.name,
                name=f"execute:{self.node.name}:{function}",
            )
            try:
                result = yield execute_proc
            except TaskCancelled:
                return  # whoever cancelled us owns the invocation's fate
            except FunctionFailure:
                # The task exhausted its retries: report the failure to
                # the client like a sink would report success.
                report_start = self.env.now
                yield self.system.network.message(
                    self.node.nic,
                    self.system.client_node.nic,
                    self.system.config.result_message_size,
                    tag=f"failure:{function}",
                )
                spans = self.system.spans
                if spans.enabled:
                    spans.record(
                        SpanKind.STATE_SYNC,
                        report_start,
                        self.env.now,
                        workflow=workflow,
                        invocation_id=invocation_id,
                        function=function,
                        node=self.node.name,
                        parent=spans.root_of(invocation_id),
                        role="failure-report",
                        dst=self.system.client_node.name,
                    )
                self.system.invocation_failed(
                    structure.workflow, invocation_id, function
                )
                return
            if result is None:
                # The execute process was cancelled (invocation abort or
                # node crash) and exited quietly; so do we.
                return
            context = self.system.context(invocation_id)
            if context is not None:
                context.record.cold_starts += result.cold_starts
                context.record.retries += result.retries
            if result.cold_starts:
                self.system.trace(
                    Kind.COLD_START, workflow, invocation_id,
                    function=function, node=self.node.name,
                    detail=str(result.cold_starts),
                )
            produced = True
        structure.invocation(invocation_id).state_of(function).executed = True
        self.system.trace(
            Kind.FUNCTION_EXECUTED, workflow, invocation_id,
            function=function, node=self.node.name,
        )
        self._propagate(structure, invocation_id, function, produced)

    def _propagate(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        function: str,
        produced: bool,
    ) -> None:
        """Fan out tokens, eager data pushes, and sink reports.

        Deliberately yield-free: once a function is marked ``executed``
        its notifications are committed atomically, so a node crash can
        never leave a half-propagated function.  The spawned messages
        are registered *invocation-bound* (not node-bound) — they model
        packets already handed to the TCP stack, which survive the
        sender's crash but die with the invocation.
        """
        if produced:
            self._ship_outputs(structure, invocation_id, function)
        info = structure.info(function)
        if not info.successors:
            self.system.spawn_registered(
                self._report_sink(structure, invocation_id, function),
                invocation_id,
                name=f"sink-report:{function}",
            )
            return
        for successor in info.successors:
            target = info.successor_locations[successor]
            if target == self.node.name:
                self.system.spawn_registered(
                    self._notify_local(structure, invocation_id, successor),
                    invocation_id,
                    name=f"token:{function}->{successor}",
                )
            else:
                self.system.spawn_registered(
                    self._notify_remote(structure, invocation_id, successor, target),
                    invocation_id,
                    name=f"token:{function}->{successor}",
                )

    def _ship_outputs(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        function: str,
    ) -> None:
        """Spawn eager pushes of every output chunk to remote consumers.

        Pushes launch in the same atomic step as the dataflow tokens,
        but carry the *data*: one worker-to-worker transfer per (chunk,
        remote consumer node).  The tokens (1 KB) land long before the
        chunks (MBs), so a consumer that fires early coalesces on the
        in-flight push through the FaaStore single-flight map rather
        than starting a redundant remote read.
        """
        config = self.system.config
        policy = self.system.policy
        if (
            not config.eager_ship
            or not config.ship_data
            or not policy.supports_eager_push
        ):
            return
        dag = structure.dag
        node_meta = dag.node(function)
        if node_meta.output_size <= 0:
            return
        if dag.node(function).metadata.get("storage_type") == "DB":
            return  # Algorithm 1 marked this producer remote-only
        placement = structure.placement
        per_node: dict[str, int] = {}
        for consumer in dag.data_consumers(function):
            target = placement.node_of(consumer)
            if target != self.node.name:
                per_node[target] = per_node.get(target, 0) + 1
        if not per_node:
            return
        chunks = max(1, int(round(node_meta.map_factor)))
        chunk_size = node_meta.output_size / chunks
        for target, consumers_on_node in sorted(per_node.items()):
            dst_node = self.system.cluster.node(target)
            for chunk in range(chunks):
                self.system.spawn_registered(
                    policy.eager_push(
                        self.node, dst_node, dag, placement, invocation_id,
                        function, chunk, chunk_size, consumers_on_node,
                    ),
                    invocation_id,
                    name=f"push:{function}/{chunk}->{target}",
                )
                self.pushes_started += 1

    def _report_sink(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """A sink finished: report the execution state to the client."""
        report_start = self.env.now
        yield self.system.network.message(
            self.node.nic,
            self.system.client_node.nic,
            self.system.config.result_message_size,
            tag=f"sink:{function}",
        )
        spans = self.system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                report_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=function,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="sink-report",
                dst=self.system.client_node.name,
            )
        self.system.sink_completed(structure.workflow, invocation_id)

    def _notify_local(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        successor: str,
    ) -> Generator:
        yield self.env.timeout(self.system.config.local_trigger_time)
        yield from self.receive_token(
            structure.workflow, structure.version, invocation_id, successor
        )

    def _notify_remote(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        successor: str,
        target: str,
    ) -> Generator:
        remote_engine = self.system.engine(target)
        sync_start = self.env.now
        yield self.system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            self.system.config.state_message_size,
            tag=f"token:{successor}",
        )
        spans = self.system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=successor,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="token",
                dst=remote_engine.node.name,
            )
        remote_engine.tokens_received += 1
        self.system.trace(
            Kind.STATE_SYNC, structure.workflow, invocation_id,
            function=successor, node=remote_engine.node.name,
            detail=f"token from {self.node.name}",
        )
        yield from remote_engine.receive_token(
            structure.workflow, structure.version, invocation_id, successor
        )

    # -- crash and recovery ---------------------------------------------------
    def fail(self) -> list[tuple[str, int, InvocationID, str]]:
        """The node crashed: mark the engine down, collect lost tasks.

        Every local function that was triggered but had not finished
        executing is reset to untriggered and returned so the system
        can re-trigger it on recovery.  (``run_function`` marks a
        function executed and spawns its tokens/pushes in one atomic
        step, so ``executed`` functions never need replay.)
        """
        self.down = True
        self.crash_count += 1
        pending: list[tuple[str, int, InvocationID, str]] = []
        for (workflow, version), structure in self._structures.items():
            for invocation_id, inv_state in structure.invocation_items():
                for function, state in inv_state.functions.items():
                    if state.triggered and not state.executed:
                        state.triggered = False
                        pending.append(
                            (workflow, version, invocation_id, function)
                        )
        return pending

    def recover(self) -> None:
        """The node came back: replay the queued tokens.

        Deferred tokens re-enter through the normal handlers (each
        paying a token step, like a real backlog drain would).
        """
        self.down = False
        deferred, self._deferred = self._deferred, []
        for kind, workflow, version, invocation_id, function in deferred:
            if (
                self.system.context(invocation_id) is None
                or not self.has_structure(workflow, version)
            ):
                continue  # the invocation died while we were down
            handler = (
                self.receive_token if kind == "token" else self.trigger_source
            )
            self.system.spawn_registered(
                handler(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"replay:{self.node.name}:{function}",
            )

    def retrigger(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> bool:
        """Re-run a task the crash killed, unless it already restarted."""
        structure = self.structure(workflow, version)
        state = structure.invocation(invocation_id).state_of(function)
        if state.triggered or state.executed:
            return False  # a replayed token beat us to it
        state.triggered = True
        self.system.spawn_registered(
            self.run_function(workflow, version, invocation_id, function),
            invocation_id,
            node=self.node.name,
            name=f"retrigger:{self.node.name}:{function}",
        )
        return True


class DataflowSystem(FaaSFlowSystem):
    """The DataflowSP workflow system: dataflow-triggered distributed engines.

    Client-side plumbing (deployment, versioned rollout, invocation
    lifecycle, timeout/cancellation, fault hooks) is shared with
    WorkerSP — both are placement-driven decentralized systems — but
    every engine on a worker is a :class:`DataflowEngine`, so
    triggering is function-level and outputs ship eagerly.
    """

    mode = "dataflow-sp"
    engine_label = "dataflow"
    engine_class = DataflowEngine

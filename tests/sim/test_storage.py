"""Unit tests for the remote KV store and local memory store."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.network import MB, Network, NetworkConfig
from repro.sim.storage import KeyNotFoundError, LocalMemStore, RemoteKVStore


@pytest.fixture
def env():
    return Environment()


def make_remote(env, bandwidth=10 * MB, op_latency=0.0):
    net = Network(env, NetworkConfig(latency=0.0, message_threshold=0.0))
    store_nic = net.attach("storage", bandwidth)
    worker_nic = net.attach("worker-0", 100 * MB)
    store = RemoteKVStore(env, net, store_nic, op_latency=op_latency)
    return store, worker_nic, net


class TestRemoteKVStore:
    def test_put_transfers_over_network(self, env):
        store, worker, _ = make_remote(env)
        done = store.put("k", 10 * MB, src=worker)
        env.run(until=done)
        assert env.now == pytest.approx(1.0, rel=1e-6)
        assert "k" in store
        assert store.size_of("k") == 10 * MB

    def test_get_transfers_back(self, env):
        store, worker, _ = make_remote(env)
        env.run(until=store.put("k", 10 * MB, src=worker))
        t0 = env.now
        size = env.run(until=store.get("k", dst=worker))
        assert size == 10 * MB
        assert env.now - t0 == pytest.approx(1.0, rel=1e-6)

    def test_get_missing_key_fails(self, env):
        store, worker, _ = make_remote(env)
        with pytest.raises(KeyNotFoundError):
            env.run(until=store.get("absent", dst=worker))

    def test_op_latency_added(self, env):
        store, worker, _ = make_remote(env, op_latency=0.01)
        env.run(until=store.put("k", 1 * MB, src=worker))
        assert env.now == pytest.approx(0.1 + 0.01, rel=1e-4)

    def test_delete(self, env):
        store, worker, _ = make_remote(env)
        env.run(until=store.put("k", 1 * MB, src=worker))
        store.delete("k")
        assert "k" not in store
        assert store.stats.deletes == 1
        store.delete("k")  # idempotent
        assert store.stats.deletes == 1

    def test_stats_accumulate(self, env):
        store, worker, _ = make_remote(env)
        env.run(until=store.put("a", 2 * MB, src=worker))
        env.run(until=store.put("b", 3 * MB, src=worker))
        env.run(until=store.get("a", dst=worker))
        assert store.stats.puts == 2
        assert store.stats.gets == 1
        assert store.stats.bytes_in == pytest.approx(5 * MB)
        assert store.stats.bytes_out == pytest.approx(2 * MB)
        assert store.stored_bytes == pytest.approx(5 * MB)
        assert store.key_count == 2

    def test_contention_between_puts(self, env):
        store, worker, net = make_remote(env)
        worker2 = net.attach("worker-1", 100 * MB)
        d1 = store.put("a", 10 * MB, src=worker)
        d2 = store.put("b", 10 * MB, src=worker2)
        env.run(until=env.all_of([d1, d2]))
        # Both share the storage NIC's 10 MB/s ingress.
        assert env.now == pytest.approx(2.0, rel=1e-5)


class TestLocalMemStore:
    def test_put_within_quota(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        done = store.try_put("k", 5 * MB)
        assert done is not None
        env.run(until=done)
        assert store.used == 5 * MB
        assert "k" in store

    def test_put_over_quota_refused(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        assert store.try_put("a", 8 * MB) is not None
        assert store.try_put("b", 5 * MB) is None
        assert store.rejected_puts == 1
        assert "b" not in store

    def test_get_returns_size(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        env.run(until=store.try_put("k", 4 * MB))
        size = env.run(until=store.get("k"))
        assert size == 4 * MB

    def test_get_missing_fails(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        with pytest.raises(KeyNotFoundError):
            env.run(until=store.get("nope"))

    def test_local_access_is_fast(self, env):
        store = LocalMemStore(env, "worker-0", quota=100 * MB)
        env.run(until=store.try_put("k", 50 * MB))
        # Memory-speed: far below what any NIC could do.
        assert env.now < 0.05

    def test_delete_frees_quota(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        env.run(until=store.try_put("k", 8 * MB))
        store.delete("k")
        assert store.used == 0
        assert store.try_put("k2", 8 * MB) is not None

    def test_quota_shrink_keeps_data(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        env.run(until=store.try_put("k", 8 * MB))
        store.set_quota(5 * MB)
        assert "k" in store  # existing data stays
        assert store.try_put("k2", 1 * MB) is None  # but no new puts

    def test_zero_quota_rejects_everything(self, env):
        store = LocalMemStore(env, "worker-0", quota=0)
        assert store.try_put("k", 1) is None

    def test_clear(self, env):
        store = LocalMemStore(env, "worker-0", quota=10 * MB)
        env.run(until=store.try_put("k", 4 * MB))
        store.clear()
        assert store.used == 0
        assert store.key_count == 0

"""Unit tests for the span tracer, ring semantics, and decompose()."""

import pytest

from repro.obs import (
    BREAKDOWN_COMPONENTS,
    NULL_SPANS,
    Span,
    SpanKind,
    SpanTracer,
    category_of,
    decompose,
    format_span_tree,
    span_tree,
)
from repro.sim import Environment


def make_tracer(limit=1_000_000):
    return SpanTracer(Environment(), limit=limit)


class TestSpanLifecycle:
    def test_start_end_records_interval(self):
        tracer = make_tracer()
        span = tracer.start(SpanKind.FUNCTION, function="f")
        assert span.open
        tracer.env.run(until=0.5)
        tracer.end(span)
        assert span.end == 0.5
        assert tracer.all_spans() == [span]

    def test_end_is_idempotent(self):
        tracer = make_tracer()
        span = tracer.start(SpanKind.FUNCTION)
        tracer.end(span, status="ok")
        tracer.end(span, status="failed")
        assert span.status == "ok"
        assert len(tracer.all_spans()) == 1

    def test_record_retrospective(self):
        tracer = make_tracer()
        span = tracer.record(SpanKind.EXECUTE, 1.0, 2.0, function="f")
        assert span.start == 1.0 and span.end == 2.0
        assert not span.open

    def test_event_zero_duration(self):
        tracer = make_tracer()
        span = tracer.event(SpanKind.SPILL, node="worker-0")
        assert span.duration == 0.0

    def test_parent_linkage(self):
        tracer = make_tracer()
        root = tracer.start_invocation(7, workflow="w")
        child = tracer.start(SpanKind.FUNCTION, parent=root, invocation_id=7)
        assert child.parent_id == root.span_id
        assert tracer.root_of(7) is root

    def test_context_registry(self):
        tracer = make_tracer()
        span = tracer.start(SpanKind.FUNCTION, invocation_id=1, function="f")
        tracer.set_context(1, "f", span)
        assert tracer.context_of(1, "f") is span
        tracer.clear_context(1, "f")
        assert tracer.context_of(1, "f") is None

    def test_finalize_closes_stragglers_as_open(self):
        tracer = make_tracer()
        span = tracer.start(SpanKind.FUNCTION)
        tracer.env.run(until=3.0)
        closed = tracer.finalize()
        assert closed == 1
        assert span.end == 3.0
        assert span.status == "open"

    def test_len_counts_open_and_closed(self):
        tracer = make_tracer()
        tracer.start(SpanKind.FUNCTION)
        tracer.record(SpanKind.EXECUTE, 0.0, 1.0)
        assert len(tracer) == 2


class TestRingSemantics:
    def test_drop_oldest_keeps_tail(self):
        tracer = make_tracer(limit=3)
        for i in range(6):
            tracer.record(SpanKind.EXECUTE, float(i), float(i) + 0.5)
        kept = [s.start for s in tracer.all_spans()]
        assert kept == [3.0, 4.0, 5.0]
        assert tracer.dropped == 3

    def test_evicted_root_forgotten(self):
        tracer = make_tracer(limit=2)
        root = tracer.start_invocation(1, workflow="w")
        tracer.end(root)
        tracer.record(SpanKind.EXECUTE, 0.0, 1.0)
        tracer.record(SpanKind.EXECUTE, 1.0, 2.0)  # evicts the root
        assert tracer.root_of(1) is None

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            make_tracer(limit=0)

    def test_clear_resets_everything(self):
        tracer = make_tracer()
        tracer.start_invocation(1)
        tracer.record(SpanKind.EXECUTE, 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.root_of(1) is None


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_SPANS.enabled is False
        span = NULL_SPANS.start(SpanKind.FUNCTION, function="f")
        assert NULL_SPANS.end(span) is span
        NULL_SPANS.record(SpanKind.EXECUTE, 0.0, 1.0)
        NULL_SPANS.event(SpanKind.SPILL)
        NULL_SPANS.start_invocation(1)
        assert NULL_SPANS.root_of(1) is None
        assert NULL_SPANS.context_of(1, "f") is None
        assert NULL_SPANS.all_spans() == []
        assert len(NULL_SPANS) == 0
        assert NULL_SPANS.finalize() == 0


def _span(kind, start, end, span_id=0, **kwargs):
    return Span(
        span_id=span_id, parent_id=None, kind=kind, start=start, end=end,
        **kwargs,
    )


class TestDecompose:
    def test_components_sum_to_window(self):
        spans = [
            _span(SpanKind.QUEUE_WAIT, 0.0, 1.0),
            _span(SpanKind.COLD_START, 0.5, 1.5),
            _span(SpanKind.EXECUTE, 1.0, 2.0),
            _span(SpanKind.PUT, 2.5, 3.0),
        ]
        parts = decompose(spans, (0.0, 4.0))
        assert sum(parts.values()) == pytest.approx(4.0, abs=1e-12)
        assert set(parts) == set(BREAKDOWN_COMPONENTS)

    def test_priority_execute_wins_overlap(self):
        spans = [
            _span(SpanKind.QUEUE_WAIT, 0.0, 2.0),
            _span(SpanKind.EXECUTE, 0.0, 2.0),
        ]
        parts = decompose(spans, (0.0, 2.0))
        assert parts["execute"] == pytest.approx(2.0)
        assert parts["queue_wait"] == 0.0

    def test_uncovered_time_is_engine(self):
        parts = decompose([_span(SpanKind.EXECUTE, 1.0, 2.0)], (0.0, 3.0))
        assert parts["engine"] == pytest.approx(2.0)
        assert parts["execute"] == pytest.approx(1.0)

    def test_empty_spans_all_engine(self):
        parts = decompose([], (0.0, 5.0))
        assert parts["engine"] == 5.0

    def test_spans_clamped_to_window(self):
        parts = decompose([_span(SpanKind.EXECUTE, -1.0, 10.0)], (0.0, 2.0))
        assert parts["execute"] == pytest.approx(2.0)
        assert sum(parts.values()) == pytest.approx(2.0)

    def test_open_span_extends_to_window_end(self):
        parts = decompose([_span(SpanKind.EXECUTE, 1.0, None)], (0.0, 3.0))
        assert parts["execute"] == pytest.approx(2.0)

    def test_excluded_kinds_ignored(self):
        spans = [
            _span(SpanKind.NET, 0.0, 2.0),
            _span(SpanKind.CONTAINER, 0.0, 2.0),
            _span(SpanKind.FUNCTION, 0.0, 2.0),
            _span(SpanKind.INVOCATION, 0.0, 2.0),
        ]
        parts = decompose(spans, (0.0, 2.0))
        assert parts["engine"] == pytest.approx(2.0)

    def test_degenerate_window(self):
        parts = decompose([_span(SpanKind.EXECUTE, 0.0, 1.0)], (1.0, 1.0))
        assert all(v == 0.0 for v in parts.values())

    def test_category_of(self):
        assert category_of(SpanKind.PUT) == "transfer"
        assert category_of(SpanKind.GET) == "transfer"
        assert category_of(SpanKind.STATE_SYNC) == "sync"
        assert category_of(SpanKind.NET) is None


class TestSpanTree:
    def test_children_under_parents(self):
        root = _span(SpanKind.INVOCATION, 0.0, 3.0, span_id=1)
        child = Span(
            span_id=2, parent_id=1, kind=SpanKind.FUNCTION, start=0.5, end=2.0
        )
        grand = Span(
            span_id=3, parent_id=2, kind=SpanKind.EXECUTE, start=1.0, end=1.5
        )
        tree = span_tree([grand, root, child])
        assert [(d, s.span_id) for d, s in tree] == [(0, 1), (1, 2), (2, 3)]

    def test_orphans_surface_at_root(self):
        orphan = Span(
            span_id=5, parent_id=99, kind=SpanKind.EXECUTE, start=0.0, end=1.0
        )
        tree = span_tree([orphan])
        assert tree == [(0, orphan)]

    def test_format_renders_status_and_node(self):
        span = _span(
            SpanKind.EXECUTE, 0.0, 1.0, function="f", node="worker-0",
            status="crashed",
        )
        text = format_span_tree([span])
        assert "execute f @worker-0 [crashed]" in text

"""Unit tests for closed-loop / open-loop invocation clients."""

import pytest

from repro.clients import (
    ClosedLoopClient,
    OpenLoopClient,
    run_closed_loop,
    run_open_loop,
)
from repro.core import EngineConfig, FaaSFlowSystem, Placement
from repro.dag import WorkflowDAG
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

MB = 1024.0 * 1024.0


def make_system(service_time=0.1):
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(workers=2, container=ContainerSpec(cold_start_time=0.05)),
    )
    dag = WorkflowDAG("w")
    dag.add_function("f", service_time=service_time, output_size=0)
    system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
    system.deploy(
        dag, Placement(workflow="w", assignment={"f": "worker-0"})
    )
    return system


class TestClosedLoop:
    def test_one_at_a_time(self):
        system = make_system(service_time=0.2)
        records = run_closed_loop(system, "w", 5)
        assert len(records) == 5
        # Strictly sequential: each starts after the previous finished.
        for prev, cur in zip(records, records[1:]):
            assert cur.started_at >= prev.finished_at

    def test_invocation_count_validated(self):
        system = make_system()
        with pytest.raises(ValueError):
            ClosedLoopClient(system, "w", 0)

    def test_records_match_metrics(self):
        system = make_system()
        records = run_closed_loop(system, "w", 3)
        assert len(system.metrics.invocations_of("w")) == 3
        assert [r.invocation_id for r in records] == [
            r.invocation_id for r in system.metrics.invocations_of("w")
        ]


class TestOpenLoop:
    def test_arrivals_overlap_when_rate_exceeds_service(self):
        system = make_system(service_time=5.0)
        records = run_open_loop(
            system, "w", 4, rate_per_minute=120, poisson=False
        )
        assert len(records) == 4
        starts = sorted(r.started_at for r in system.metrics.invocations_of("w"))
        # Deterministic arrivals every 0.5 s despite 5 s service times.
        assert starts[1] - starts[0] == pytest.approx(0.5, abs=0.01)

    def test_poisson_arrivals_are_seeded(self):
        r1 = run_open_loop(make_system(), "w", 5, 60, poisson=True, seed=3)
        r2 = run_open_loop(make_system(), "w", 5, 60, poisson=True, seed=3)
        assert [round(a.started_at, 9) for a in r1] == [
            round(a.started_at, 9) for a in r2
        ]

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            OpenLoopClient(make_system(), "w", 5, rate_per_minute=0)

    def test_all_records_collected_before_return(self):
        system = make_system(service_time=1.0)
        records = run_open_loop(
            system, "w", 6, rate_per_minute=600, poisson=False
        )
        assert len(records) == 6
        assert all(r.status == "ok" for r in records)

"""Pluggable event schedulers for the simulation kernel.

The :class:`~repro.sim.kernel.Environment` keeps simulated time moving
by repeatedly extracting the minimum ``(when, eid)`` entry from a
priority structure.  This module provides that structure behind a small
:class:`Scheduler` interface with two implementations:

- :class:`HeapScheduler` — the binary heap the kernel has always used
  (``heapq`` on a plain list).  O(log n) insert/extract with a very
  small C constant; the default, and the one the frozen-seed kernel
  benchmark (``BENCH_kernel.json``) pins.
- :class:`WheelScheduler` — a calendar-queue / hierarchical timer
  wheel: an array of buckets covering the active rotation, an overflow
  tier for far-future timers, and lazy per-bucket sorting.  O(1)
  amortized insert and bucket-local tombstone dropping, which is the
  shape discrete-event literature (and the Netherite/DFlow-style
  orchestrators we benchmark against) uses once timer populations get
  large and churny — exactly what container keep-alives and per-
  invocation watchdogs produce at millions of invocations.

**Determinism is the hard contract**: both schedulers realize the exact
same total order over ``(when, eid)`` keys — ``eid`` is the kernel's
monotonically increasing tie-breaker, so the order is total and
identical no matter which structure holds the entries.  Engine records,
telemetry snapshots, and sharded runs are therefore bit-identical under
either scheduler; ``benchmarks/test_bench_sched.py`` and
``tests/sim/test_scheduler.py`` assert this.

Entries are the same ``(when, eid, event)`` tuples the heap has always
used; ``eid`` uniqueness guarantees tuple comparison never falls
through to the (uncomparable) event object.

Select a scheduler per environment (``Environment(scheduler="wheel")``),
via ``--scheduler`` in ``faasflow-run`` / ``faasflow-experiment``, or
process-wide with the ``FAASFLOW_SCHEDULER`` environment variable
(inherited by ``--jobs`` / ``--shards`` worker processes).
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional, Union

from .kernel import PROCESSED, SimulationError, Timeout, _POOL_CAP, _getrefcount

__all__ = [
    "Scheduler",
    "HeapScheduler",
    "WheelScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "resolve_scheduler_name",
    "set_default_scheduler",
    "DEFAULT_SCHEDULER_ENV",
]

_INF = float("inf")

# Process-wide default, inherited by worker processes (fork and spawn
# both pass the OS environment down), so one ``--scheduler wheel`` at a
# CLI covers every Environment a run constructs — including shard
# workers and ``--jobs`` pool children.
DEFAULT_SCHEDULER_ENV = "FAASFLOW_SCHEDULER"


class Scheduler:
    """Interface the kernel's event queue hides behind.

    Implementations hold ``(when, eid, event)`` tuples and must realize
    the exact total order by ``(when, eid)`` — ties in ``when`` fire in
    ``eid`` (creation) order.  The environment owns ``eid`` assignment
    and the free-list recycling; schedulers call back into
    ``env._retire_cancelled`` when they drop a lazily-cancelled timer
    without dispatching it.
    """

    name = "scheduler"

    def __init__(self, env):
        self.env = env

    def insert(self, when: float, eid: int, event: Any) -> None:
        """Add an entry.  ``when`` must be ``>= env.now``."""
        raise NotImplementedError

    def pop(self) -> tuple:
        """Remove and return the minimum entry; IndexError when empty.

        Cancelled-but-queued timers are returned like any other entry
        (the dispatch loop drops them without running callbacks), so the
        observable clock/order behavior is identical across schedulers.
        """
        raise NotImplementedError

    def pop_until(self, deadline: float) -> Optional[tuple]:
        """Pop the minimum entry if its time is ``<= deadline``.

        Returns ``None`` when the queue is empty or the head is beyond
        the deadline — the one call per event the deadline-bounded run
        loop needs.
        """
        raise NotImplementedError

    def peek(self) -> float:
        """Time of the next entry that will actually fire, or ``inf``.

        Lazily-cancelled timeouts parked at the head are retired on the
        way (through ``env._retire_cancelled``): they would otherwise
        make ``peek`` report a time at which nothing observable happens.
        The shard coordinator's conservative-window lookahead depends on
        this — a stale head would both shrink windows needlessly and,
        worse, keep a drained shard looking busy forever.  This is the
        single shared implementation of the skip; ``Environment.peek``
        and the barrier protocol both delegate here.
        """
        raise NotImplementedError

    def note_cancelled(self, count: int) -> bool:
        """React to a lazily-cancelled timer (``count`` pending total).

        Returns True when the scheduler compacted its structure and the
        environment should reset its cancelled-timer counter.  The heap
        rebuilds itself past the ``timer_compaction_threshold``; the
        wheel never needs to — tombstones are dropped bucket-locally
        when their bucket is loaded, so this is a no-op there.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        """Entries queued, including cancelled-but-queued tombstones."""
        raise NotImplementedError


class HeapScheduler(Scheduler):
    """The classic binary-heap event queue (the default).

    ``heap`` is a plain list the environment aliases as ``_queue`` so
    its inlined dispatch loops (see ``Environment.run``) can keep using
    C-level ``heappush``/``heappop`` directly — the interface methods
    here serve ``step``/``peek``/compaction and any code that treats the
    scheduler generically.
    """

    name = "heap"

    __slots__ = ("env", "heap")

    def __init__(self, env):
        self.env = env
        self.heap: list[tuple] = []

    def insert(self, when, eid, event):
        heappush(self.heap, (when, eid, event))

    def pop(self):
        heap = self.heap
        if not heap:
            raise IndexError("pop from empty scheduler")
        return heappop(heap)

    def pop_until(self, deadline):
        heap = self.heap
        if not heap or heap[0][0] > deadline:
            return None
        return heappop(heap)

    def peek(self):
        heap = self.heap
        env = self.env
        while heap:
            when, _, event = heap[0]
            if type(event) is Timeout and event._cancelled:
                heappop(heap)
                env._retire_cancelled(event)
                # Separate call so the refcount proof sees exactly one
                # caller frame holding the event (see _recycle).
                env._recycle(event)
                continue
            return when
        return _INF

    def note_cancelled(self, count):
        """Rebuild the heap without tombstones once they dominate.

        Long-deadline watchdogs that are cancelled on every completion
        (one 60 s execution timeout per invocation, say) would otherwise
        accumulate for their full nominal delay and make the heap grow
        with throughput instead of with live work.  Triggers once the
        cancelled population passes ``timer_compaction_threshold`` AND
        makes up more than half of the queue.
        """
        env = self.env
        heap = self.heap
        if count < env._compaction_threshold or count * 2 < len(heap):
            return False
        keep = []
        retire = env._retire_cancelled
        recycle = env._recycle
        for entry in heap:
            event = entry[2]
            if type(event) is Timeout and event._cancelled:
                retire(event)
                recycle(event)
            else:
                keep.append(entry)
        heapify(keep)
        # In-place: the environment's inlined dispatch loops hold a
        # local alias of this list, so the identity must not change.
        heap[:] = keep
        return True

    def __len__(self):
        return len(self.heap)


class WheelScheduler(Scheduler):
    """Calendar-queue / timer-wheel scheduler with O(1) amortized insert.

    Structure (three tiers, nearest to farthest):

    - ``_cur`` — the *active bucket*: entries sorted descending by
      ``(when, eid)`` and consumed from the tail, so extraction is an
      O(1) ``list.pop()`` and the per-bucket sort amortizes to
      O(log k) C-speed comparisons per entry.
    - ``_near`` — a small binary heap for entries that land at or
      before the active bucket *after* it was sorted (the dominant
      pattern: zero-delay resumes and sub-width timers scheduled by the
      very callbacks the active bucket is firing).  It drains
      continuously, so it stays tiny.
    - the *rotation array*: ``buckets`` unsorted lists covering
      absolute buckets ``(cur, cur + buckets)``; insert is an index
      computation plus ``list.append``.
    - the *overflow tier*: far-future entries (beyond one rotation)
      keyed by absolute bucket number in a dict, with a lazy min-heap
      of bucket numbers.  Overflow buckets migrate into the rotation
      array exactly once, when the window slides over them — and when
      the whole rotation is empty the wheel jumps straight to the
      earliest overflow bucket instead of scanning empty slots.

    Cancelled timers are tombstones wherever they sit; they are dropped
    *bucket-locally* when their bucket is loaded (no global compaction
    pass — ``note_cancelled`` is a no-op and the environment's
    ``timer_compaction_threshold`` knob is heap-only).

    ``width`` is a pure performance knob (bucket span in simulated
    seconds): the extraction order is always the exact ``(when, eid)``
    total order, bit-identical to the heap, because entries carry their
    full keys and every bucket is sorted before it drains.
    """

    name = "wheel"

    __slots__ = (
        "env",
        "_width",
        "_inv",
        "_nb",
        "_mask",
        "_buckets",
        "_acount",
        "_cur",
        "_near",
        "_cur_bucket",
        "_overflow",
        "_oheap",
        "_ocount",
    )

    def __init__(self, env, width: float = 0.01, buckets: int = 4096):
        if width <= 0:
            raise SimulationError(f"wheel width must be > 0, got {width}")
        if buckets < 2 or buckets & (buckets - 1):
            raise SimulationError(
                f"wheel bucket count must be a power of two >= 2, got {buckets}"
            )
        if env.now < 0:
            raise SimulationError(
                "wheel scheduler requires a non-negative clock "
                f"(int-truncation bucketing), got initial time {env.now}"
            )
        self.env = env
        self._width = float(width)
        self._inv = 1.0 / self._width
        self._nb = buckets
        self._mask = buckets - 1
        self._buckets: list[list[tuple]] = [[] for _ in range(buckets)]
        self._acount = 0
        # Stable list/heap objects: the environment's inlined wheel
        # dispatch loop aliases them, so they are filled in place and
        # never rebound.
        self._cur: list[tuple] = []
        self._near: list[tuple] = []
        # int() truncation is monotonic nondecreasing over floats, which
        # is all bucketing needs (order comes from the full keys).
        self._cur_bucket = int(env.now * self._inv)
        self._overflow: dict[int, list[tuple]] = {}
        self._oheap: list[int] = []
        self._ocount = 0

    # -- insert -------------------------------------------------------
    def insert(self, when, eid, event):
        try:
            b = int(when * self._inv)
        except (OverflowError, ValueError):
            raise SimulationError(
                f"wheel scheduler cannot schedule at t={when}"
            ) from None
        cur = self._cur_bucket
        if b <= cur:
            # At or before the active bucket (same-timestep resumes,
            # sub-width timers): merge through the near heap.  ``when``
            # can never be in the simulated past, so these fire in
            # correct order ahead of everything still in the rotation.
            heappush(self._near, (when, eid, event))
        elif b - cur < self._nb:
            self._buckets[b & self._mask].append((when, eid, event))
            self._acount += 1
        else:
            lst = self._overflow.get(b)
            if lst is None:
                self._overflow[b] = [(when, eid, event)]
                heappush(self._oheap, b)
            else:
                lst.append((when, eid, event))
            self._ocount += 1

    # -- bucket machinery ---------------------------------------------
    def _pull_overflow(self):
        """Migrate overflow buckets that slid into the rotation window.

        Each overflow bucket migrates at most once (the current bucket
        only ever advances), keeping the far-future tier O(1) amortized
        per entry.
        """
        oheap = self._oheap
        if not oheap:
            return
        horizon = self._cur_bucket + self._nb
        overflow = self._overflow
        buckets = self._buckets
        mask = self._mask
        while oheap and oheap[0] < horizon:
            b = heappop(oheap)
            lst = overflow.pop(b, None)
            if lst is None:  # stale heap entry; bucket already migrated
                continue
            slot = buckets[b & mask]
            if slot:
                slot.extend(lst)
            else:
                buckets[b & mask] = lst
            self._acount += len(lst)
            self._ocount -= len(lst)

    def _fill_cur(self, entries):
        """Sort a raw bucket into the active slot, dropping tombstones.

        This is the bucket-local lazy cancellation: cancelled timers
        are retired here in bulk (same lifecycle bookkeeping as a
        tombstone popped by the dispatch loop) instead of flowing
        through the queue to their nominal deadline.
        """
        cur = self._cur
        keep = [
            e for e in entries
            if not (type(e[2]) is Timeout and e[2]._cancelled)
        ]
        n_dropped = len(entries) - len(keep)
        if n_dropped:
            dropped = [
                e[2] for e in entries
                if type(e[2]) is Timeout and e[2]._cancelled
            ]
            # Release the entry tuples before retiring so the free-list
            # refcount proof can see sole ownership and actually pool.
            # Retirement is inlined (same lifecycle as
            # Environment._retire_cancelled + _recycle, minus the two
            # method calls per tombstone): churn-heavy workloads drop
            # thousands per bucket and the calls dominate.
            del entries[:]
            env = self.env
            env._cancelled_timers -= n_dropped
            pool = env._timeout_pool
            while dropped:
                event = dropped.pop()
                event._cancelled = False
                event._state = PROCESSED
                event.callbacks.clear()
                if (
                    _getrefcount is not None
                    and len(pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    pool.append(event)
        if keep:
            keep.sort(reverse=True)
            cur.extend(keep)
            return True
        return False

    def _load_next(self):
        """Advance to the next nonempty bucket; False when drained."""
        while True:
            if self._acount:
                b = self._cur_bucket
                buckets = self._buckets
                mask = self._mask
                while True:
                    b += 1
                    lst = buckets[b & mask]
                    if lst:
                        break
                self._cur_bucket = b
                buckets[b & mask] = []
                self._acount -= len(lst)
                self._pull_overflow()
            else:
                oheap = self._oheap
                overflow = self._overflow
                while oheap:
                    b0 = heappop(oheap)
                    lst = overflow.pop(b0, None)
                    if lst is not None:
                        break
                else:
                    return False
                self._cur_bucket = b0
                self._ocount -= len(lst)
                self._pull_overflow()
            if self._fill_cur(lst):
                return True
            # Bucket was all tombstones; keep advancing.

    def _head_entry(self):
        """The minimum entry without removing it, or ``None``."""
        while True:
            cur = self._cur
            near = self._near
            if cur:
                if near and near[0] < cur[-1]:
                    return near[0]
                return cur[-1]
            if near:
                return near[0]
            if not self._load_next():
                return None

    # -- interface ----------------------------------------------------
    def pop(self):
        entry = self._head_entry()
        if entry is None:
            raise IndexError("pop from empty scheduler")
        near = self._near
        if near and near[0] is entry:
            return heappop(near)
        return self._cur.pop()

    def pop_until(self, deadline):
        entry = self._head_entry()
        if entry is None or entry[0] > deadline:
            return None
        near = self._near
        if near and near[0] is entry:
            return heappop(near)
        return self._cur.pop()

    def peek(self):
        while True:
            entry = self._head_entry()
            if entry is None:
                return _INF
            event = entry[2]
            if type(event) is Timeout and event._cancelled:
                near = self._near
                if near and near[0] is entry:
                    heappop(near)
                else:
                    self._cur.pop()
                entry = None  # drop the tuple so retirement can pool
                env = self.env
                env._retire_cancelled(event)
                env._recycle(event)
                continue
            return entry[0]

    def note_cancelled(self, count):
        # Tombstones are dropped bucket-locally in _fill_cur; a global
        # compaction pass would be pure overhead.
        return False

    def __len__(self):
        return (
            len(self._cur) + len(self._near) + self._acount + self._ocount
        )


SCHEDULERS: dict[str, Callable[..., Scheduler]] = {
    "heap": HeapScheduler,
    "wheel": WheelScheduler,
}


def resolve_scheduler_name(spec: Optional[str] = None) -> str:
    """Resolve a scheduler name: explicit > $FAASFLOW_SCHEDULER > heap."""
    name = spec or os.environ.get(DEFAULT_SCHEDULER_ENV) or "heap"
    if name not in SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {name!r} (choose from {sorted(SCHEDULERS)}, "
            f"or pass a factory callable)"
        )
    return name


def set_default_scheduler(name: Optional[str]) -> None:
    """Set the process-wide default scheduler (and for worker children).

    ``None`` clears the override back to the heap default.  Exported so
    the CLIs can make one ``--scheduler`` flag cover every environment
    a run constructs, including ``--jobs`` pool children and shard
    worker processes (both inherit the OS environment).
    """
    if name is None:
        os.environ.pop(DEFAULT_SCHEDULER_ENV, None)
        return
    resolve_scheduler_name(name)  # validate
    os.environ[DEFAULT_SCHEDULER_ENV] = name


def make_scheduler(
    env, spec: Union[str, Callable[..., Scheduler], None] = None
) -> Scheduler:
    """Build the scheduler for an environment.

    ``spec`` may be a name (``"heap"``/``"wheel"``), ``None`` (resolve
    the process default), or a callable ``factory(env) -> Scheduler``
    for custom implementations.
    """
    if callable(spec):
        sched = spec(env)
        for method in ("insert", "pop", "pop_until", "peek", "note_cancelled"):
            if not callable(getattr(sched, method, None)):
                raise SimulationError(
                    f"scheduler factory {spec!r} returned {sched!r} "
                    f"without a callable {method}()"
                )
        return sched
    return SCHEDULERS[resolve_scheduler_name(spec)](env)

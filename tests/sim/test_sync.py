"""Unit tests for Resource / Store / Level synchronization primitives."""

import pytest

from repro.sim.kernel import Environment, SimulationError
from repro.sim.sync import Level, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        granted = []

        def worker(env, res, name):
            with res.request() as req:
                yield req
                granted.append((name, env.now))
                yield env.timeout(10.0)

        for name in ["a", "b", "c"]:
            env.process(worker(env, res, name))
        env.run(until=5.0)
        assert [g[0] for g in granted] == ["a", "b"]
        env.run()
        assert ("c", 10.0) in granted

    def test_release_is_idempotent(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        env.run()
        res.release(req)
        res.release(req)
        assert res.in_use == 0

    def test_fifo_ordering(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(env, res, name):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1.0)

        for name in "abcde":
            env.process(worker(env, res, name))
        env.run()
        assert order == list("abcde")

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_oversized_request_rejected(self, env):
        res = Resource(env, capacity=2)
        with pytest.raises(SimulationError):
            res.request(3)

    def test_multi_slot_request(self, env):
        res = Resource(env, capacity=4)
        log = []

        def big(env, res):
            with res.request(3) as req:
                yield req
                log.append(("big", env.now))
                yield env.timeout(5.0)

        def small(env, res):
            yield env.timeout(0.1)
            with res.request(2) as req:
                yield req
                log.append(("small", env.now))

        env.process(big(env, res))
        env.process(small(env, res))
        env.run()
        assert log == [("big", 0.0), ("small", 5.0)]

    def test_context_manager_releases_on_interrupt(self, env):
        res = Resource(env, capacity=1)

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(100.0)

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        p = env.process(holder(env, res))
        env.process(attacker(env, p))
        env.run()
        assert res.in_use == 0

    def test_queue_length(self, env):
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        env.run()
        assert res.in_use == 1
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def producer(env, store):
            yield store.put("x")

        def consumer(env, store):
            item = yield store.get()
            return item

        env.process(producer(env, store))
        c = env.process(consumer(env, store))
        assert env.run(until=c) == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        result = []

        def consumer(env, store):
            item = yield store.get()
            result.append((item, env.now))

        def producer(env, store):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert result == [("late", 3.0)]

    def test_fifo_items(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        taken = []

        def consumer(env, store):
            for _ in range(5):
                item = yield store.get()
                taken.append(item)

        env.process(consumer(env, store))
        env.run()
        assert taken == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        events = []

        def producer(env, store):
            yield store.put("a")
            events.append(("a-in", env.now))
            yield store.put("b")
            events.append(("b-in", env.now))

        def consumer(env, store):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert events == [("a-in", 0.0), ("b-in", 5.0)]

    def test_len_and_items(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2
        assert store.items == ("a", "b")

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestLevel:
    def test_initial_level(self, env):
        level = Level(env, capacity=100, initial=40)
        assert level.level == 40

    def test_get_blocks_until_put(self, env):
        level = Level(env, capacity=100)
        got = []

        def getter(env, level):
            yield level.get(30)
            got.append(env.now)

        def putter(env, level):
            yield env.timeout(2.0)
            level.put(50)

        env.process(getter(env, level))
        env.process(putter(env, level))
        env.run()
        assert got == [2.0]
        assert level.level == pytest.approx(20)

    def test_try_get(self, env):
        level = Level(env, capacity=10, initial=5)
        assert level.try_get(3)
        assert not level.try_get(3)
        assert level.level == pytest.approx(2)

    def test_put_over_capacity_rejected(self, env):
        level = Level(env, capacity=10, initial=8)
        with pytest.raises(SimulationError):
            level.put(5)

    def test_get_over_capacity_rejected(self, env):
        level = Level(env, capacity=10)
        with pytest.raises(SimulationError):
            level.get(11)

    def test_negative_amounts_rejected(self, env):
        level = Level(env, capacity=10, initial=5)
        with pytest.raises(SimulationError):
            level.put(-1)
        with pytest.raises(SimulationError):
            level.get(-1)

    def test_initial_validation(self, env):
        with pytest.raises(SimulationError):
            Level(env, capacity=10, initial=11)
        with pytest.raises(SimulationError):
            Level(env, capacity=0)

    def test_fifo_getters(self, env):
        level = Level(env, capacity=100)
        order = []

        def getter(env, level, name, amount):
            yield level.get(amount)
            order.append(name)

        env.process(getter(env, level, "first", 60))
        env.process(getter(env, level, "second", 10))
        level.put(70)
        env.run()
        assert order == ["first", "second"]

"""Import Pegasus workflow instances in the WfCommons format.

The paper's scientific benchmarks are "workflow execution instances
generated from Pegasus workflow executions" published by the WfCommons
project (reference [3]).  The traces are JSON documents describing
tasks, their runtimes, parent links, and the files they read/write.
This module loads such a document into a :class:`WorkflowDAG`, so real
trace files can be replayed on the simulated cluster:

    dag = load_wfcommons("epigenomics-chameleon-100.json")
    summary = run_workflow(dag)

Both WfFormat generations are accepted: task lists under
``workflow.tasks`` or ``workflow.jobs``, runtimes as ``runtime`` or
``runtimeInSeconds``, and file sizes as ``sizeInBytes`` or ``size``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..dag import WorkflowDAG

__all__ = ["load_wfcommons", "WfCommonsError"]

MB = 1024.0 * 1024.0


class WfCommonsError(ValueError):
    """Unparseable or structurally invalid trace document."""


def load_wfcommons(
    source: Union[str, Path, dict],
    default_memory: float = 128 * MB,
    name: str = "",
) -> WorkflowDAG:
    """Build a workflow DAG from a WfCommons trace.

    ``source`` may be a path to a JSON file or an already-loaded dict.
    Task memory comes from the trace's ``memory`` field (bytes) when
    present, else ``default_memory``.
    """
    document = _load_document(source)
    tasks = _task_list(document)
    workflow_name = (
        name
        or document.get("name")
        or document.get("workflow", {}).get("name")
        or "wfcommons"
    )
    dag = WorkflowDAG(str(workflow_name))
    outputs_by_task: dict[str, dict[str, float]] = {}
    parents_of: dict[str, list[str]] = {}
    for task in tasks:
        task_name = task.get("name") or task.get("id")
        if not task_name:
            raise WfCommonsError("task without a name/id")
        task_name = str(task_name)
        if dag.has_node(task_name):
            raise WfCommonsError(f"duplicate task {task_name!r}")
        inputs, outputs = _file_sizes(task)
        outputs_by_task[task_name] = outputs
        parents_of[task_name] = [str(p) for p in task.get("parents", [])]
        dag.add_function(
            task_name,
            service_time=_runtime(task),
            memory=float(task.get("memory", default_memory)),
            output_size=sum(outputs.values()),
        )
        # Stash inputs for edge-size resolution below.
        dag.node(task_name).metadata["wf_inputs"] = inputs
    for child, parents in parents_of.items():
        child_inputs = dag.node(child).metadata.get("wf_inputs", {})
        for parent in parents:
            if not dag.has_node(parent):
                raise WfCommonsError(
                    f"task {child!r} lists unknown parent {parent!r}"
                )
            produced = outputs_by_task.get(parent, {})
            shared = set(produced) & set(child_inputs)
            if shared:
                data = sum(produced[f] for f in shared)
            else:
                # No file-level match: the dependency is control-only or
                # the trace omitted file links; fall back to the
                # parent's whole output (what a data-shipping runtime
                # would fetch).
                data = sum(produced.values())
            dag.add_edge(parent, child, data_size=data)
    dag.validate()
    return dag


def _load_document(source) -> dict:
    if isinstance(source, dict):
        return source
    path = Path(source)
    try:
        document = json.loads(path.read_text())
    except OSError as error:
        raise WfCommonsError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise WfCommonsError(f"invalid JSON in {path}: {error}") from error
    if not isinstance(document, dict):
        raise WfCommonsError("trace document must be a JSON object")
    return document


def _task_list(document: dict) -> list[dict]:
    workflow = document.get("workflow", document)
    tasks = workflow.get("tasks", workflow.get("jobs"))
    if not isinstance(tasks, list) or not tasks:
        raise WfCommonsError(
            "no tasks found (expected workflow.tasks or workflow.jobs)"
        )
    return tasks


def _runtime(task: dict) -> float:
    for key in ("runtimeInSeconds", "runtime"):
        if key in task:
            value = float(task[key])
            if value < 0:
                raise WfCommonsError(
                    f"negative runtime for {task.get('name')!r}"
                )
            return value
    return 0.1  # traces without runtimes: nominal execution


def _file_sizes(task: dict) -> tuple[dict[str, float], dict[str, float]]:
    """(inputs, outputs) file-name -> bytes."""
    inputs: dict[str, float] = {}
    outputs: dict[str, float] = {}
    for entry in task.get("files", []) or []:
        file_name = str(entry.get("name", ""))
        size = entry.get("sizeInBytes", entry.get("size", 0)) or 0
        size = float(size)
        if size < 0:
            raise WfCommonsError(f"negative file size for {file_name!r}")
        link = entry.get("link", "").lower()
        if link == "output":
            outputs[file_name] = size
        else:
            inputs[file_name] = size
    return inputs, outputs

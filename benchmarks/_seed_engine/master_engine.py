# FROZEN pre-PR copy for the engine-throughput A/B benchmark.
#
# Do not edit: this is the seed-side baseline that
# benchmarks/test_bench_engine.py races the live engines against.
# Imports of shared substrate (sim kernel, network, faults, policy,
# metrics) point at the live repro.* modules; the frozen modules
# (engines, state, runtime, clients) import each other relatively.

"""HyperFlow-serverless: the MasterSP baseline (paper §2.2-2.3).

A single central workflow engine holds every function's state.  For
each function it (1) decides the trigger in its serialized event loop,
(2) ships a task assignment to the worker over the network, (3) waits
for the worker to execute, and (4) processes the returned execution
state — again in the serialized loop — before checking successors.

The two network hops per function and the master's serialization are
exactly the scheduling overhead WorkerSP removes; keeping them explicit
here is what lets Fig. 4 / Fig. 11 be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.dag import WorkflowDAG, critical_path
from repro.metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
)
from repro.obs.spans import SpanKind
from repro.obs.telemetry import record_invocation_metrics
from repro.sim import Cluster, Node, Resource
from repro.core.config import EngineConfig
from repro.core.faastore import DataPolicy, RemoteStorePolicy
from repro.core.faults import (
    CancelCause,
    CancelKind,
    FaultInjector,
    FunctionFailure,
    ProcessRegistry,
    TaskCancelled,
)
from .runtime import FunctionRuntime
from repro.core.switching import is_skipped
from .state import (
    InvocationID,
    InvocationState,
    Placement,
    new_invocation_id,
)
from repro.core.tracing import Kind, Tracer

__all__ = ["HyperFlowServerlessSystem"]


@dataclass
class _RegisteredWorkflow:
    dag: WorkflowDAG
    placement: Placement
    critical_exec: float


def static_critical_exec(dag: WorkflowDAG) -> float:
    """Execution time of the critical path's function nodes (§2.3).

    Edge weights are zeroed: the metric deducts only *execution* time,
    so whatever transmission/scheduling remains in the end-to-end
    latency is counted as overhead.
    """
    stripped = dag.copy()
    for edge in stripped.edges:
        edge.weight = 0.0
    return critical_path(stripped).length


class HyperFlowServerlessSystem:
    """The MasterSP workflow system: central engine + worker executors."""

    mode = "master-sp"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        policy: Optional[DataPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        master: Optional[Node] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or EngineConfig()
        self.tracer = tracer
        self.spans = cluster.spans
        self.telemetry = cluster.telemetry
        self.metrics = metrics if metrics is not None else MetricsCollector()
        if self.spans.enabled:
            self.metrics.spans = self.spans
        self.policy = policy or RemoteStorePolicy(cluster, self.metrics)
        self.registry = ProcessRegistry()
        self.runtime = FunctionRuntime(
            cluster, self.config, self.policy, faults=faults,
            registry=self.registry,
        )
        # The paper deploys the central engine next to the invocation
        # generator and storage; we host it on the storage node.
        self.master = master or cluster.storage_node
        self._engine_lock = Resource(self.env, capacity=1)
        self._workflows: dict[str, _RegisteredWorkflow] = {}
        self.messages_sent = 0
        self.events_handled = 0
        self.busy_time = 0.0
        self.node_crashes = 0

    # -- registration -----------------------------------------------------
    def register(self, dag: WorkflowDAG, placement: Placement) -> None:
        dag.validate()
        placement.validate_against(dag)
        self._workflows[dag.name] = _RegisteredWorkflow(
            dag=dag,
            placement=placement,
            critical_exec=static_critical_exec(dag),
        )

    def registered(self, workflow: str) -> _RegisteredWorkflow:
        try:
            return self._workflows[workflow]
        except KeyError:
            raise KeyError(f"workflow {workflow!r} is not registered") from None

    # -- invocation ---------------------------------------------------------
    def invoke(self, workflow: str) -> Generator:
        """Simulation process: one end-to-end invocation.

        Returns the :class:`InvocationRecord` (also stored in metrics).
        """
        registered = self.registered(workflow)
        dag, placement = registered.dag, registered.placement
        invocation_id = new_invocation_id()
        record = InvocationRecord(
            workflow=workflow,
            invocation_id=invocation_id,
            mode=self.mode,
            started_at=self.env.now,
            critical_path_exec=registered.critical_exec,
        )
        state = InvocationState(invocation_id)
        all_done = self.env.event()
        failed = self.env.event()
        remaining = {"count": len(dag.node_names)}

        def spawn(function: str) -> None:
            # Task coordinators live on the master, not on any worker:
            # they survive worker crashes (the runtime retries under
            # them) and die only with the invocation.
            proc = self.env.process(
                self._run_task(
                    dag, placement, invocation_id, function, state,
                    remaining, all_done, failed, record,
                ),
                name=f"master:{workflow}:{function}",
            )
            self.registry.register(proc, invocation_id)

        self.trace(Kind.INVOCATION_START, workflow, invocation_id)
        if self.spans.enabled:
            self.spans.start_invocation(
                invocation_id, workflow=workflow, mode=self.mode
            )
        for source in dag.sources():
            state.state_of(source).triggered = True
            spawn(source)

        timeout = self.env.timeout(self.config.execution_timeout)
        yield self.env.any_of([all_done, failed, timeout])
        # Failure first: if the last task's completion and a failure
        # land in the same timestep, the invocation failed.
        if failed.triggered:
            record.status = InvocationStatus.FAILED
            record.finished_at = self.env.now
        elif all_done.triggered:
            record.finished_at = self.env.now
        else:
            record.status = InvocationStatus.TIMEOUT
            record.finished_at = record.started_at + self.config.execution_timeout
        if not timeout.processed:
            # Don't leave a live 60-second timer per finished invocation
            # in the kernel heap.
            timeout.cancel()
        if record.status != InvocationStatus.OK:
            cancelled = self.registry.cancel_invocation(
                invocation_id,
                CancelCause(CancelKind.INVOCATION_ABORT, detail=record.status),
            )
            if cancelled:
                self.trace(
                    Kind.CANCELLED, workflow, invocation_id,
                    detail=f"{cancelled} process(es)",
                )
        self.registry.release_invocation(invocation_id)
        self.policy.cleanup_invocation(dag, invocation_id)
        self.metrics.record_invocation(record)
        if self.telemetry.enabled:
            record_invocation_metrics(
                self.telemetry, record, self.config.tenant, self.mode
            )
        self.trace(
            Kind.INVOCATION_END, workflow, invocation_id, detail=record.status
        )
        if self.spans.enabled:
            root = self.spans.root_of(invocation_id)
            if root is not None:
                self.spans.end(root, status=record.status)
        return record

    def trace(self, kind: str, workflow: str, invocation_id: InvocationID,
              function: str = "", node: str = "", detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, kind, workflow, invocation_id,
                function=function, node=node, detail=detail,
            )

    # -- internals -------------------------------------------------------
    def _engine_step(self) -> Generator:
        """One serialized event-handling step of the central engine."""
        # Context-managed so an interrupt while *waiting* for the lock
        # cancels the queued request instead of leaking it.
        with self._engine_lock.request() as request:
            yield request
            yield self.env.timeout(self.config.master_process_time)
            self.events_handled += 1
            self.busy_time += self.config.master_process_time

    def _run_task(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        state: InvocationState,
        remaining: dict,
        all_done,
        failed,
        record: InvocationRecord,
    ) -> Generator:
        node_meta = dag.node(function)
        skipped = (
            self.config.evaluate_switches
            and not node_meta.is_virtual
            and is_skipped(dag, function, invocation_id)
        )
        # Stage 1: the master engine decides and dispatches the trigger.
        yield from self._engine_step()
        if not node_meta.is_virtual and not skipped:
            worker = self.cluster.node(placement.node_of(function))
            self.trace(
                Kind.TASK_ASSIGNED, dag.name, invocation_id,
                function=function, node=worker.name,
            )
            self.messages_sent += 1
            assign_start = self.env.now
            yield self.cluster.network.message(
                self.master.nic,
                worker.nic,
                self.config.assign_message_size,
                tag=f"assign:{function}",
            )
            if self.spans.enabled:
                self.spans.record(
                    SpanKind.STATE_SYNC,
                    assign_start,
                    self.env.now,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=self.master.name,
                    parent=self.spans.root_of(invocation_id),
                    role="assign",
                    dst=worker.name,
                )
            # Stage 2: the worker executes the function task.  The
            # execute process is registered invocation-bound (NOT
            # node-bound): MasterSP recovery happens *inside* the
            # runtime's retry ladder, so a node crash must interrupt
            # only the instances, which then retry against the worker's
            # (offline, queueing) container pool.
            execute_proc = self.env.process(
                self.runtime.execute(
                    dag, placement, invocation_id, function,
                    version=placement.version,
                ),
                name=f"execute:{worker.name}:{function}",
            )
            self.registry.register(execute_proc, invocation_id)
            try:
                result = yield execute_proc
            except FunctionFailure as error:
                if not failed.triggered:
                    failed.succeed(error)
                return
            except TaskCancelled:
                return
            if result is None:
                return  # cancelled mid-flight; the canceller owns cleanup
            record.cold_starts += result.cold_starts
            record.retries += result.retries
            # Stage 3: the execution state returns to the master.
            self.messages_sent += 1
            result_start = self.env.now
            yield self.cluster.network.message(
                worker.nic,
                self.master.nic,
                self.config.result_message_size,
                tag=f"result:{function}",
            )
            if self.spans.enabled:
                self.spans.record(
                    SpanKind.STATE_SYNC,
                    result_start,
                    self.env.now,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=worker.name,
                    parent=self.spans.root_of(invocation_id),
                    role="result",
                    dst=self.master.name,
                )
        # Completion handling in the serialized engine loop.
        yield from self._engine_step()
        state.state_of(function).executed = True
        self.trace(
            Kind.FUNCTION_EXECUTED, dag.name, invocation_id,
            function=function,
            node="" if node_meta.is_virtual else placement.node_of(function),
        )
        remaining["count"] -= 1
        if remaining["count"] == 0 and not all_done.triggered:
            all_done.succeed()
            return
        for successor in dag.successors(function):
            successor_state = state.state_of(successor)
            successor_state.mark_predecessor_done()
            if successor_state.ready(len(dag.predecessors(successor))):
                successor_state.triggered = True
                proc = self.env.process(
                    self._run_task(
                        dag, placement, invocation_id, successor, state,
                        remaining, all_done, failed, record,
                    ),
                    name=f"master:{dag.name}:{successor}",
                )
                self.registry.register(proc, invocation_id)

    # -- fault hooks (called by FaultDriver) ----------------------------------
    def on_node_crash(self, node_name: str) -> None:
        """MasterSP recovery: runtime-level retry.

        The master survives worker crashes, so the in-flight instances
        are killed with the *retryable* NODE_CRASH cause; their retry
        ladders back off and re-acquire containers from the worker's
        pool, which queues requests until the node recovers.
        """
        self.node_crashes += 1
        self.registry.cancel_node(
            node_name, CancelCause(CancelKind.NODE_CRASH, detail=node_name)
        )
        self.trace(Kind.NODE_CRASH, "", 0, node=node_name)

    def on_node_recovery(self, node_name: str) -> None:
        """Nothing to replay: the container pool drains its own backlog."""
        self.trace(Kind.NODE_RECOVERY, "", 0, node=node_name)

"""Fig. 14 — co-location interference across the 8 benchmarks.

All benchmarks run simultaneously on one shared cluster (§5.5), each
driven by its own closed-loop client, and each benchmark's mean e2e
latency is compared against its solo run.  The paper reports heavy
HyperFlow-serverless degradation for the bandwidth-hungry benchmarks
(Cyc 50.3%, Gen 48.5%, Vid 84.4%, WC 66.2%) and much smaller
degradation under FaaSFlow-FaaStore.
"""

from __future__ import annotations

from ..clients import ClosedLoopClient, run_closed_loop
from ..workloads import ALL_BENCHMARKS, BENCHMARKS, build
from .common import (
    ExperimentResult,
    deploy_with_feedback,
    make_cluster,
    make_faasflow,
    make_hyperflow,
    register_hyperflow,
)

__all__ = ["run"]

_PAPER_HYPER = {
    "cycles": 50.3,
    "genome": 48.5,
    "video-ffmpeg": 84.4,
    "word-count": 66.2,
}


def _mean_warm_latency(records) -> float:
    warm = records[1:] or records
    return sum(r.latency for r in warm) / len(warm)


def _solo_latencies(mode: str, names, invocations, bandwidth) -> dict[str, float]:
    result = {}
    for name in names:
        cluster = make_cluster(storage_bandwidth=bandwidth)
        dag = build(name)
        if mode == "hyper":
            system = make_hyperflow(cluster, ship_data=True)
            register_hyperflow(system, dag)
        else:
            system, scheduler = make_faasflow(cluster, ship_data=True)
            deploy_with_feedback(system, scheduler, dag, warmup_invocations=1)
        records = run_closed_loop(system, name, invocations)
        result[name] = _mean_warm_latency(records)
    return result


def _corun_latencies(mode: str, names, invocations, bandwidth) -> dict[str, float]:
    cluster = make_cluster(storage_bandwidth=bandwidth)
    clients = []
    if mode == "hyper":
        system = make_hyperflow(cluster, ship_data=True)
        for name in names:
            register_hyperflow(system, build(name))
    else:
        system, scheduler = make_faasflow(cluster, ship_data=True)
        for name in names:
            deploy_with_feedback(
                system, scheduler, build(name), warmup_invocations=1
            )
    env = cluster.env
    processes = []
    for name in names:
        client = ClosedLoopClient(system, name, invocations)
        clients.append((name, client))
        processes.append(env.process(client.run(), name=f"client:{name}"))
    env.run(until=env.all_of(processes))
    return {
        name: _mean_warm_latency(client.records) for name, client in clients
    }


def run(
    invocations: int = 10,
    benchmarks: list[str] | None = None,
    bandwidth: float = 100 * 1024 * 1024,
) -> ExperimentResult:
    """Co-location uses the unthrottled Sec. 5.1 setup (the 25-100 MB/s
    throttling applies only to the Sec. 5.4 sweep)."""
    names = benchmarks or ALL_BENCHMARKS
    rows = []
    for mode_label, mode in (
        ("HyperFlow-serverless", "hyper"),
        ("FaaSFlow-FaaStore", "faasflow"),
    ):
        solo = _solo_latencies(mode, names, invocations, bandwidth)
        corun = _corun_latencies(mode, names, invocations, bandwidth)
        for name in names:
            degradation = 100 * (corun[name] / solo[name] - 1)
            paper = _PAPER_HYPER.get(name)
            rows.append(
                [
                    mode_label,
                    BENCHMARKS[name].abbrev,
                    round(solo[name], 2),
                    round(corun[name], 2),
                    f"{degradation:.1f}%",
                    f"{paper}%" if paper and mode == "hyper" else "",
                ]
            )
    return ExperimentResult(
        experiment="fig14",
        title="Co-location interference: solo vs all-8-together (mean e2e)",
        headers=[
            "system",
            "benchmark",
            "solo (s)",
            "co-run (s)",
            "degradation",
            "paper (HyperFlow)",
        ],
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

"""Tests for the WfCommons trace importer."""

import json

import pytest

from repro.workloads import WfCommonsError, load_wfcommons

MB = 1024.0 * 1024.0

SAMPLE = {
    "name": "epigenomics-sample",
    "workflow": {
        "tasks": [
            {
                "name": "fastqSplit",
                "runtime": 2.5,
                "parents": [],
                "files": [
                    {"link": "input", "name": "reads.fastq", "sizeInBytes": 8_000_000},
                    {"link": "output", "name": "chunk1.fastq", "sizeInBytes": 4_000_000},
                    {"link": "output", "name": "chunk2.fastq", "sizeInBytes": 4_000_000},
                ],
            },
            {
                "name": "map1",
                "runtime": 10.0,
                "memory": 256_000_000,
                "parents": ["fastqSplit"],
                "files": [
                    {"link": "input", "name": "chunk1.fastq", "sizeInBytes": 4_000_000},
                    {"link": "output", "name": "map1.out", "sizeInBytes": 1_000_000},
                ],
            },
            {
                "name": "map2",
                "runtime": 11.0,
                "parents": ["fastqSplit"],
                "files": [
                    {"link": "input", "name": "chunk2.fastq", "sizeInBytes": 4_000_000},
                    {"link": "output", "name": "map2.out", "sizeInBytes": 1_200_000},
                ],
            },
            {
                "name": "merge",
                "runtime": 3.0,
                "parents": ["map1", "map2"],
                "files": [
                    {"link": "input", "name": "map1.out", "sizeInBytes": 1_000_000},
                    {"link": "input", "name": "map2.out", "sizeInBytes": 1_200_000},
                    {"link": "output", "name": "final.bam", "sizeInBytes": 2_000_000},
                ],
            },
        ]
    },
}


class TestLoadFromDict:
    def test_structure(self):
        dag = load_wfcommons(SAMPLE)
        assert dag.name == "epigenomics-sample"
        assert sorted(dag.node_names) == ["fastqSplit", "map1", "map2", "merge"]
        assert dag.has_edge("fastqSplit", "map1")
        assert dag.has_edge("map2", "merge")
        dag.validate()

    def test_runtimes_become_service_times(self):
        dag = load_wfcommons(SAMPLE)
        assert dag.node("map1").service_time == pytest.approx(10.0)

    def test_edge_sizes_resolved_by_file_match(self):
        dag = load_wfcommons(SAMPLE)
        # map1 consumes only chunk1 of fastqSplit's two outputs.
        assert dag.edge("fastqSplit", "map1").data_size == 4_000_000
        assert dag.edge("map1", "merge").data_size == 1_000_000

    def test_output_size_is_sum_of_output_files(self):
        dag = load_wfcommons(SAMPLE)
        assert dag.node("fastqSplit").output_size == 8_000_000

    def test_memory_field_honored(self):
        dag = load_wfcommons(SAMPLE, default_memory=64 * MB)
        assert dag.node("map1").memory == 256_000_000
        assert dag.node("map2").memory == 64 * MB

    def test_jobs_key_and_legacy_size(self):
        legacy = {
            "name": "legacy",
            "workflow": {
                "jobs": [
                    {"name": "a", "runtimeInSeconds": 1.0, "parents": [],
                     "files": [{"link": "output", "name": "f", "size": 1024}]},
                    {"name": "b", "parents": ["a"],
                     "files": [{"link": "input", "name": "f", "size": 1024}]},
                ]
            },
        }
        dag = load_wfcommons(legacy)
        assert dag.edge("a", "b").data_size == 1024
        assert dag.node("b").service_time == pytest.approx(0.1)  # default

    def test_control_only_dependency_falls_back_to_full_output(self):
        doc = {
            "name": "ctl",
            "workflow": {
                "tasks": [
                    {"name": "a", "runtime": 1, "parents": [],
                     "files": [{"link": "output", "name": "x", "sizeInBytes": 500}]},
                    {"name": "b", "runtime": 1, "parents": ["a"], "files": []},
                ]
            },
        }
        dag = load_wfcommons(doc)
        assert dag.edge("a", "b").data_size == 500


class TestLoadFromFile:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(SAMPLE))
        dag = load_wfcommons(path)
        assert len(dag.node_names) == 4

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WfCommonsError):
            load_wfcommons(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WfCommonsError):
            load_wfcommons(path)


class TestValidation:
    def test_no_tasks_rejected(self):
        with pytest.raises(WfCommonsError):
            load_wfcommons({"workflow": {"tasks": []}})

    def test_unknown_parent_rejected(self):
        with pytest.raises(WfCommonsError):
            load_wfcommons(
                {"workflow": {"tasks": [
                    {"name": "a", "runtime": 1, "parents": ["ghost"]}
                ]}}
            )

    def test_duplicate_task_rejected(self):
        with pytest.raises(WfCommonsError):
            load_wfcommons(
                {"workflow": {"tasks": [
                    {"name": "a", "runtime": 1, "parents": []},
                    {"name": "a", "runtime": 1, "parents": []},
                ]}}
            )

    def test_nameless_task_rejected(self):
        with pytest.raises(WfCommonsError):
            load_wfcommons({"workflow": {"tasks": [{"runtime": 1}]}})

    def test_negative_runtime_rejected(self):
        with pytest.raises(WfCommonsError):
            load_wfcommons(
                {"workflow": {"tasks": [
                    {"name": "a", "runtime": -1, "parents": []}
                ]}}
            )


class TestEndToEnd:
    def test_trace_runs_on_the_simulator(self):
        from repro.runner import run_workflow

        dag = load_wfcommons(SAMPLE)
        summary = run_workflow(dag, invocations=2, workers=3)
        assert summary.completed == 2

# FROZEN pre-PR copy for the engine-throughput A/B benchmark.
#
# Do not edit: this is the seed-side baseline that
# benchmarks/test_bench_engine.py races the live engines against.
# Imports of shared substrate (sim kernel, network, faults, policy,
# metrics) point at the live repro.* modules; the frozen modules
# (engines, state, runtime, clients) import each other relatively.

"""Function task execution on a worker node.

Both schedule patterns run function tasks the same way (what differs is
*who triggers them and how state moves*): acquire a container (cold
start if no warm one), fetch the predecessors' outputs through the
storage policy, execute on a CPU core for the service time, store the
output, release the container.

A foreach node executes as ``map_factor`` parallel instances
(auto-scaling in the data plane, paper §4.1.2): each instance gets its
own container, fetches its share of the input chunks, and writes one
output chunk.  The runtime reports the instance count so the graph
scheduler's feedback metrics (``Scale``/``Map``) can be updated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.dag import WorkflowDAG
from repro.obs.spans import SpanKind
from repro.sim import Cluster, ContainerState, Node
from repro.sim.kernel import Interrupt
from repro.core.config import EngineConfig
from repro.core.faastore import DataPolicy
from repro.core.faults import (
    CancelCause,
    CancelKind,
    FaultInjector,
    FunctionFailure,
    ProcessRegistry,
    RetryPolicy,
    TaskCancelled,
    cause_of_interrupt,
)
from .state import InvocationID, Placement

__all__ = ["FunctionRuntime", "ExecutionResult"]


@dataclass
class ExecutionResult:
    """What one function task's execution looked like."""

    function: str
    instances: int = 1
    cold_starts: int = 0
    retries: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class FunctionRuntime:
    """Executes function tasks on simulated worker nodes."""

    def __init__(
        self,
        cluster: Cluster,
        config: EngineConfig,
        policy: DataPolicy,
        faults: Optional[FaultInjector] = None,
        registry: Optional[ProcessRegistry] = None,
    ):
        self.cluster = cluster
        self.config = config
        self.policy = policy
        self.faults = faults
        self.registry = registry
        self.retry_policy = RetryPolicy.from_config(config)
        self.env = cluster.env
        self.spans = cluster.spans
        self.telemetry = cluster.telemetry
        self._jitter_rng = (
            random.Random(config.jitter_seed)
            if config.service_time_jitter > 0
            else None
        )

    def _service_time(self, nominal: float) -> float:
        """Apply the configured execution-time variance."""
        if self._jitter_rng is None or nominal <= 0:
            return nominal
        sigma = self.config.service_time_jitter
        return nominal * self._jitter_rng.lognormvariate(
            -0.5 * sigma * sigma, sigma
        )

    def execute(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        version: int = 1,
    ) -> Generator:
        """Simulation process: run ``function`` once; returns a result."""
        node_meta = dag.node(function)
        if node_meta.is_virtual:
            raise ValueError(f"virtual node {function!r} cannot execute")
        worker = self.cluster.node(placement.node_of(function))
        instances = max(1, int(round(node_meta.map_factor)))
        result = ExecutionResult(
            function=function, instances=instances, started_at=self.env.now
        )
        spans = self.spans
        fn_span = None
        if spans.enabled:
            fn_span = spans.start(
                SpanKind.FUNCTION,
                workflow=dag.name,
                invocation_id=invocation_id,
                function=function,
                node=worker.name,
                parent=spans.root_of(invocation_id),
                instances=instances,
            )
            spans.set_context(invocation_id, function, fn_span)
        instance_procs = [
            self.env.process(
                self._run_instance_with_retries(
                    dag, placement, invocation_id, function, worker,
                    version, index, instances, result,
                ),
                name=f"{function}#{index}",
            )
            for index in range(instances)
        ]
        if self.registry is not None:
            for proc in instance_procs:
                self.registry.register(proc, invocation_id, node=worker.name)
        try:
            yield self.env.all_of(instance_procs)
        except FunctionFailure:
            # One instance exhausted its retries: the function is doomed,
            # so stop the surviving siblings from burning CPU/containers.
            self._cancel_instances(
                instance_procs,
                CancelCause(CancelKind.SIBLING_FAILED, detail=function),
            )
            if fn_span is not None:
                spans.end(
                    fn_span,
                    status="failed",
                    cold_starts=result.cold_starts,
                    retries=result.retries,
                )
                spans.clear_context(invocation_id, function)
            raise
        except TaskCancelled as cancelled:
            # An instance died to a terminal cancel that reached the
            # AllOf before this process was interrupted itself.  Mop up
            # and end quietly — the canceller owns the invocation's fate.
            self._cancel_instances(instance_procs, cancelled.cause)
            if fn_span is not None:
                spans.end(
                    fn_span,
                    status="cancelled",
                    cold_starts=result.cold_starts,
                    retries=result.retries,
                    cancel=cancelled.cause.kind,
                )
                spans.clear_context(invocation_id, function)
            return None
        except Interrupt as interrupt:
            cause = cause_of_interrupt(interrupt)
            self._cancel_instances(instance_procs, cause)
            if fn_span is not None:
                spans.end(
                    fn_span,
                    status="cancelled",
                    cold_starts=result.cold_starts,
                    retries=result.retries,
                    cancel=cause.kind,
                )
                spans.clear_context(invocation_id, function)
            raise
        result.finished_at = self.env.now
        if fn_span is not None:
            spans.end(
                fn_span,
                cold_starts=result.cold_starts,
                retries=result.retries,
            )
            spans.clear_context(invocation_id, function)
        return result

    def _cancel_instances(self, instance_procs, cause: CancelCause) -> int:
        cancelled = 0
        for proc in instance_procs:
            if proc.is_alive:
                proc.interrupt(cause)
                cancelled += 1
        return cancelled

    def _run_instance_with_retries(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        worker: Node,
        version: int,
        index: int,
        instances: int,
        result: ExecutionResult,
    ) -> Generator:
        policy = self.retry_policy
        attempt = 1
        while True:
            try:
                if self.config.function_timeout > 0:
                    yield from self._timed_attempt(
                        dag, placement, invocation_id, function, worker,
                        version, index, instances, result, attempt,
                    )
                else:
                    yield from self._attempt(
                        dag, placement, invocation_id, function, worker,
                        version, index, instances, result, attempt,
                    )
                return
            except FunctionFailure as failure:
                cause_kind = "crash"
                final_error = failure
            except TaskCancelled as cancelled:
                if not cancelled.cause.retryable:
                    # The invocation was aborted or WorkerSP's engine
                    # recovery owns the re-trigger: stop here.
                    raise
                cause_kind = cancelled.cause.kind
                final_error = FunctionFailure(function, attempts=attempt)
            if attempt > policy.max_retries:
                raise final_error
            result.retries += 1
            delay = policy.delay(attempt, key=(function, invocation_id, index))
            if self.telemetry.enabled:
                self.telemetry.inc(
                    "function.retries", 1.0,
                    workflow=dag.name, function=function, node=worker.name,
                    cause=cause_kind,
                )
            if self.spans.enabled:
                self.spans.event(
                    SpanKind.RETRY,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=worker.name,
                    parent=self.spans.context_of(invocation_id, function),
                    instance=index,
                    attempt=attempt,
                    cause=cause_kind,
                    backoff=delay,
                )
            if delay > 0:
                yield self.env.timeout(delay)
            attempt += 1

    def _attempt(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        worker: Node,
        version: int,
        index: int,
        instances: int,
        result: ExecutionResult,
        attempt: int,
    ) -> Generator:
        """One attempt, with interrupts surfaced as :class:`TaskCancelled`.

        The conversion matters: an :class:`Interrupt` that escapes a
        process makes the kernel treat it as a normal exit, so waiters
        could not tell cancellation from success.  Raising
        ``TaskCancelled`` instead fails the attempt with its cause.
        """
        try:
            yield from self._run_instance(
                dag, placement, invocation_id, function, worker,
                version, index, instances, result, attempt,
            )
        except Interrupt as interrupt:
            raise TaskCancelled(cause_of_interrupt(interrupt)) from None

    def _timed_attempt(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        worker: Node,
        version: int,
        index: int,
        instances: int,
        result: ExecutionResult,
        attempt: int,
    ) -> Generator:
        """Race one attempt against ``config.function_timeout``.

        A straggler attempt is killed and surfaced as a retryable
        :class:`TaskCancelled` so the retry ladder treats it exactly
        like a crash.
        """
        proc = self.env.process(
            self._attempt(
                dag, placement, invocation_id, function, worker,
                version, index, instances, result, attempt,
            ),
            name=f"{function}#{index}.{attempt}",
        )
        if self.registry is not None:
            self.registry.register(proc, invocation_id, node=worker.name)
        timer = self.env.timeout(self.config.function_timeout)
        try:
            yield self.env.any_of([proc, timer])
        except Interrupt as interrupt:
            cause = cause_of_interrupt(interrupt)
            if proc.is_alive:
                proc.interrupt(cause)
            raise TaskCancelled(cause) from None
        finally:
            if not timer.processed:
                timer.cancel()
        if proc.is_alive:
            # The timer won: kill the straggler and count it as a retry.
            cause = CancelCause(
                CancelKind.STRAGGLER,
                detail=f"{function}#{index} attempt {attempt} exceeded "
                f"{self.config.function_timeout:g}s",
            )
            proc.interrupt(cause)
            raise TaskCancelled(cause)

    def _run_instance(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        worker: Node,
        version: int,
        index: int,
        instances: int,
        result: ExecutionResult,
        attempt: int = 1,
    ) -> Generator:
        node_meta = dag.node(function)
        spans = self.spans
        acquire_start = self.env.now
        acquire = worker.containers.acquire(function, version)
        try:
            container = yield acquire
        except Interrupt:
            worker.containers.abandon(acquire)
            raise
        cold = container.invocations == 1
        if cold:
            result.cold_starts += 1
        if spans.enabled or self.telemetry.enabled:
            # Split the acquire wait into cold-start time (bounded by the
            # configured cold-start cost) and pure queueing for a slot.
            elapsed = self.env.now - acquire_start
            cold_time = (
                min(worker.containers.spec.cold_start_time, elapsed)
                if cold
                else 0.0
            )
            queue_time = elapsed - cold_time
            if self.telemetry.enabled and queue_time > 1e-12:
                self.telemetry.observe(
                    "function.queue_wait_seconds", queue_time,
                    workflow=dag.name, function=function, node=worker.name,
                    resource="container",
                )
        if spans.enabled:
            ctx = spans.context_of(invocation_id, function)
            if queue_time > 1e-12:
                spans.record(
                    SpanKind.QUEUE_WAIT,
                    acquire_start,
                    acquire_start + queue_time,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=worker.name,
                    parent=ctx,
                    resource="container",
                    instance=index,
                )
            if cold_time > 0:
                spans.record(
                    SpanKind.COLD_START,
                    self.env.now - cold_time,
                    self.env.now,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=worker.name,
                    parent=ctx,
                    container=container.container_id,
                    instance=index,
                )
        crashed = False
        try:
            if self.config.ship_data:
                yield from self._fetch_inputs(
                    dag, placement, invocation_id, function, worker,
                    index, instances,
                )
            cpu_wait_start = self.env.now
            cpu_request = worker.cpu.request(1)
            try:
                yield cpu_request
            except Interrupt:
                worker.cpu.cancel(cpu_request)
                raise
            if (
                self.telemetry.enabled
                and self.env.now - cpu_wait_start > 1e-12
            ):
                self.telemetry.observe(
                    "function.queue_wait_seconds",
                    self.env.now - cpu_wait_start,
                    workflow=dag.name, function=function, node=worker.name,
                    resource="cpu",
                )
            if spans.enabled and self.env.now - cpu_wait_start > 1e-12:
                spans.record(
                    SpanKind.QUEUE_WAIT,
                    cpu_wait_start,
                    self.env.now,
                    workflow=dag.name,
                    invocation_id=invocation_id,
                    function=function,
                    node=worker.name,
                    parent=spans.context_of(invocation_id, function),
                    resource="cpu",
                    instance=index,
                )
            exec_start = self.env.now
            status = "ok"
            try:
                duration = self._service_time(node_meta.service_time)
                if self.faults is not None and self.faults.should_crash(
                    function
                ):
                    # The process dies partway through its work.
                    yield self.env.timeout(duration / 2)
                    crashed = True
                    status = "crashed"
                    raise FunctionFailure(function, attempts=attempt)
                yield self.env.timeout(duration)
            except Interrupt:
                status = "cancelled"
                raise
            finally:
                worker.cpu.release(cpu_request)
                if self.telemetry.enabled:
                    self.telemetry.observe(
                        "function.execute_seconds", self.env.now - exec_start,
                        workflow=dag.name, function=function,
                        node=worker.name, status=status,
                    )
                if spans.enabled:
                    spans.record(
                        SpanKind.EXECUTE,
                        exec_start,
                        self.env.now,
                        workflow=dag.name,
                        invocation_id=invocation_id,
                        function=function,
                        node=worker.name,
                        parent=spans.context_of(invocation_id, function),
                        instance=index,
                        container=container.container_id,
                        attempt=attempt,
                        status=status,
                    )
            container.note_memory_use(node_meta.memory)
            if self.config.ship_data and node_meta.output_size > 0:
                yield from self.policy.save_output(
                    worker, dag, placement, invocation_id, function,
                    chunk=index, size=node_meta.output_size / instances,
                )
        finally:
            # A node crash destroys the container out from under us; the
            # pool already reclaimed it, so only live containers return.
            if container.state is not ContainerState.DEAD:
                if crashed:
                    worker.containers.crash(container)
                else:
                    worker.containers.release(container)

    def _fetch_inputs(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        worker: Node,
        index: int,
        instances: int,
    ) -> Generator:
        """Fetch this instance's share of every producer's chunks.

        Chunks are assigned round-robin across the consumer's instances,
        so each chunk is fetched exactly once per consumer function and
        the bytes moved per (producer, consumer) pair equal the
        producer's full output.
        """
        fetches = []
        for producer, total_size in dag.data_dependencies(function):
            if total_size <= 0:
                continue
            producer_chunks = max(1, int(round(dag.node(producer).map_factor)))
            chunk_size = total_size / producer_chunks
            for chunk in range(producer_chunks):
                if chunk % instances != index:
                    continue
                fetches.append(
                    self.env.process(
                        self.policy.fetch_input(
                            worker, dag, placement, invocation_id,
                            producer, function, chunk, chunk_size,
                        ),
                        name=f"fetch:{producer}->{function}/{chunk}",
                    )
                )
        if fetches:
            try:
                yield self.env.all_of(fetches)
            except Interrupt:
                # The storage layer is callback-driven (its operations
                # complete without the waiting process), so abandoning a
                # fetch mid-flight is safe; just stop the fetch processes
                # themselves from proceeding to further operations.
                for fetch in fetches:
                    if fetch.is_alive:
                        fetch.interrupt(CancelCause(CancelKind.INVOCATION_ABORT))
                raise

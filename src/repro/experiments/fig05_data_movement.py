"""Fig. 5 — data movement: monolithic vs FaaS deployment.

For each benchmark, one invocation runs (a) as a monolithic application
on a single server (functions inter-call directly, intermediate data
materialized in process memory once) and (b) as a serverless workflow
under the data-shipping pattern (every edge round-trips through the
remote store).  The paper's anchors: Vid grows from 4.23 MB to
96.82 MB (22.86x) and Cyc from 23.95 MB to 1182.3 MB.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..workloads import ALL_BENCHMARKS, BENCHMARKS, build
from .common import (
    ExperimentResult,
    MB,
    make_cluster,
    make_hyperflow,
    register_hyperflow,
)
from ..core import MonolithicSystem

__all__ = ["run"]

_PAPER = {"video-ffmpeg": (4.23, 96.82), "cycles": (23.95, 1182.3)}


def run(benchmarks: list[str] | None = None) -> ExperimentResult:
    names = benchmarks or ALL_BENCHMARKS
    rows = []
    for name in names:
        # Monolithic deployment on one server.
        cluster_mono = make_cluster(workers=1)
        mono = MonolithicSystem(cluster_mono)
        dag = build(name)
        mono.register(dag)
        record = run_closed_loop(mono, name, 1)[0]
        mono_mb = mono.metrics.data_moved(name, record.invocation_id) / MB

        # FaaS data-shipping deployment.
        cluster_faas = make_cluster()
        faas = make_hyperflow(cluster_faas, ship_data=True)
        dag_faas = build(name)
        register_hyperflow(faas, dag_faas)
        record = run_closed_loop(faas, name, 1)[0]
        faas_mb = faas.metrics.data_moved(name, record.invocation_id) / MB

        amplification = faas_mb / mono_mb if mono_mb else float("inf")
        paper = _PAPER.get(name)
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                round(mono_mb, 2),
                round(faas_mb, 2),
                f"{amplification:.1f}x",
                f"{paper[0]} -> {paper[1]}" if paper else "",
            ]
        )
    return ExperimentResult(
        experiment="fig05",
        title="Data movement per invocation: monolithic vs FaaS",
        headers=[
            "benchmark",
            "monolithic (MB)",
            "FaaS (MB)",
            "amplification",
            "paper (MB)",
        ],
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

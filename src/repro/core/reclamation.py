"""FaaStore memory reclamation (paper §4.3, Equations 1-2).

A function rarely uses all the memory its container is provisioned
with.  For a function whose observed peak working set is ``S`` inside a
container of ``Mem(v)``, FaaStore reclaims ``Mem(v) - S - mu`` (never
negative), leaving a pessimistic safety margin ``mu`` for occasional
spikes.  Mapped (foreach) nodes multiply by their average executor
count.  The per-workflow in-memory quota is the sum over all function
nodes (Eq. 2); deployed per node, it is the sum over the functions
placed there — so FaaStore never takes memory beyond what the
workflow's own containers gave up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dag import WorkflowDAG
from .state import Placement

__all__ = [
    "ReclamationConfig",
    "MemoryUsageHistory",
    "over_provisioned",
    "workflow_quota",
    "per_node_quotas",
]

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class ReclamationConfig:
    """Reclamation policy knobs."""

    container_memory: float = 256 * _MB  # Mem(v): the provisioned limit
    mu: float = 32 * _MB  # pessimistic safety margin

    def __post_init__(self) -> None:
        if self.container_memory <= 0:
            raise ValueError("container_memory must be > 0")
        if self.mu < 0:
            raise ValueError("mu must be >= 0")


class MemoryUsageHistory:
    """High-water marks of per-function memory use (the ``S`` of Eq. 1).

    Before any runtime feedback exists, the declared node memory is the
    (conservative) estimate.
    """

    def __init__(self) -> None:
        self._peaks: dict[str, float] = {}

    def observe(self, function: str, used: float) -> None:
        if used < 0:
            raise ValueError(f"negative memory observation for {function!r}")
        current = self._peaks.get(function, 0.0)
        self._peaks[function] = max(current, used)

    def peak(self, function: str, default: float) -> float:
        return self._peaks.get(function, default)

    def known(self, function: str) -> bool:
        return function in self._peaks

    def __len__(self) -> int:
        return len(self._peaks)


def over_provisioned(
    dag: WorkflowDAG,
    function: str,
    config: ReclamationConfig,
    history: Optional[MemoryUsageHistory] = None,
) -> float:
    """Eq. 1: reclaimable bytes of one function node.

    ``O(v) = max(Mem(v) - S - mu, 0) * Map(v)``
    """
    node = dag.node(function)
    if node.is_virtual:
        return 0.0
    peak = node.memory
    if history is not None:
        peak = history.peak(function, default=node.memory)
    surplus = max(config.container_memory - peak - config.mu, 0.0)
    return surplus * max(node.map_factor, 1.0)


def workflow_quota(
    dag: WorkflowDAG,
    config: ReclamationConfig,
    history: Optional[MemoryUsageHistory] = None,
) -> float:
    """Eq. 2: the workflow's total in-memory storage quota."""
    return sum(
        over_provisioned(dag, node.name, config, history)
        for node in dag.nodes
    )


def per_node_quotas(
    dag: WorkflowDAG,
    placement: Placement,
    config: ReclamationConfig,
    history: Optional[MemoryUsageHistory] = None,
) -> dict[str, float]:
    """Split the workflow quota across workers by function placement.

    Each worker's FaaStore pool is backed exactly by the memory
    reclaimed from the containers scheduled onto it, so the pool adds no
    pressure to the node (paper §4.3.1).
    """
    quotas: dict[str, float] = {}
    for node in dag.nodes:
        if node.is_virtual:
            continue
        worker = placement.node_of(node.name)
        quotas.setdefault(worker, 0.0)
        quotas[worker] += over_provisioned(dag, node.name, config, history)
    return quotas

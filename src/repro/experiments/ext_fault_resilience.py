"""Extension — workflow success under function crashes.

Not a paper artifact: an extension study enabled by the library's fault
injector.  Function executions crash with probability ``p``; the engine
retries each task up to its budget.  The study reports the invocation
success rate and the latency cost of retries for both schedule
patterns, and how the retry budget moves the success curve.

The structural expectation: success rate falls roughly like
``(1 - p^(r+1))^n`` for n tasks and r retries, so even modest budgets
rescue large workflows from per-task crash rates that would otherwise
doom nearly every invocation.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..core import (
    EngineConfig,
    FaaSFlowSystem,
    FaultDriver,
    FaultInjector,
    FaultPlan,
    HyperFlowServerlessSystem,
    hash_partition,
)
from ..workloads import build
from .common import ExperimentResult, make_cluster

__all__ = ["run", "run_node_crashes", "run_backoff"]


def _build_system(engine: str, config: EngineConfig, cluster, faults=None):
    dag = build("epigenomics")
    if engine == "master":
        system = HyperFlowServerlessSystem(cluster, config, faults=faults)
        system.register(dag, hash_partition(dag, cluster.worker_names()))
    else:
        system = FaaSFlowSystem(cluster, config, faults=faults)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
    return system, dag


def _measure(engine: str, rate: float, retries: int, invocations: int):
    cluster = make_cluster()
    faults = FaultInjector(default_rate=rate, seed=42)
    config = EngineConfig(ship_data=False, max_retries=retries)
    dag = build("epigenomics")
    if engine == "master":
        system = HyperFlowServerlessSystem(cluster, config, faults=faults)
        system.register(dag, hash_partition(dag, cluster.worker_names()))
    else:
        system = FaaSFlowSystem(cluster, config, faults=faults)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
    records = run_closed_loop(system, dag.name, invocations)
    ok = [r for r in records if r.status == "ok"]
    return {
        "success_rate": len(ok) / len(records),
        "mean_ok_latency": (
            sum(r.latency for r in ok) / len(ok) if ok else float("nan")
        ),
        "injected": faults.injected,
    }


def run(
    invocations: int = 10,
    rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    retry_budgets: tuple[int, ...] = (0, 2),
) -> ExperimentResult:
    rows = []
    for engine in ("worker", "master"):
        for rate in rates:
            for retries in retry_budgets:
                stats = _measure(engine, rate, retries, invocations)
                rows.append(
                    [
                        "FaaSFlow" if engine == "worker" else "HyperFlow",
                        f"{100 * rate:.0f}%",
                        retries,
                        f"{100 * stats['success_rate']:.0f}%",
                        round(stats["mean_ok_latency"], 2),
                        stats["injected"],
                    ]
                )
    notes = [
        "retries rescue success rates at the cost of latency on the "
        "crashed paths; both schedule patterns degrade alike (failure "
        "handling is orthogonal to trigger placement)",
    ]
    return ExperimentResult(
        experiment="ext-faults",
        title="Extension: invocation success under function crash rates",
        headers=[
            "engine",
            "crash rate",
            "retry budget",
            "success rate",
            "mean ok latency (s)",
            "crashes injected",
        ],
        rows=rows,
        notes=notes,
    )


def _crash_measure(
    engine: str,
    invocations: int,
    crashes: int,
    recovery: float,
    degradations: int,
    seed: int,
):
    """One fault-plan scenario against a no-fault baseline of equal size."""
    # The baseline run doubles as the horizon estimate for the plan, so
    # injected faults land while the workload is actually running.
    # Crash scenarios keep data out of the (volatile) local stores —
    # the crash model kills the compute plane only; degradation-only
    # scenarios ship data so the throttled links actually carry load.
    config = EngineConfig(
        ship_data=(crashes == 0), max_retries=3, execution_timeout=120.0
    )
    base_system, base_dag = _build_system(engine, config, make_cluster())
    baseline = run_closed_loop(base_system, base_dag.name, invocations)
    horizon = max(r.finished_at for r in baseline)
    base_ok = [r for r in baseline if r.status == "ok"]
    cluster = make_cluster()
    system, dag = _build_system(engine, config, cluster)
    plan = FaultPlan.random(
        cluster.worker_names(),
        horizon,
        crashes=crashes,
        recovery=recovery,
        degradations=degradations,
        seed=seed,
    )
    driver = FaultDriver(cluster, plan).attach(system)
    driver.start()
    records = run_closed_loop(system, dag.name, invocations)
    ok = [r for r in records if r.status == "ok"]
    return {
        "success_rate": len(ok) / len(records),
        "mean_ok_latency": (
            sum(r.latency for r in ok) / len(ok) if ok else float("nan")
        ),
        "baseline_latency": sum(r.latency for r in base_ok) / len(base_ok),
        "crashes_fired": driver.node_crashes_fired,
        "degradations_fired": driver.degradations_fired,
        "retries": sum(r.retries for r in records),
        "retriggered": getattr(system, "retriggered", 0),
    }


def run_node_crashes(
    invocations: int = 8,
    crashes: tuple[int, ...] = (1, 2),
    recovery: float = 3.0,
    degradations: int = 1,
    seed: int = 7,
) -> ExperimentResult:
    """Node crashes and network degradation against both engines.

    Exercises the recovery asymmetry: WorkerSP re-triggers the crashed
    node's pending sub-graph tasks at engine level (visible in the
    ``retriggered`` column), while MasterSP retries inside the runtime's
    ladder (visible in ``retries``).  Deterministic under ``seed``.
    """
    rows = []
    for engine in ("worker", "master"):
        scenarios = [(c, 0) for c in crashes] + [(0, degradations)]
        for crash_count, degrade_count in scenarios:
            stats = _crash_measure(
                engine, invocations, crash_count, recovery, degrade_count, seed
            )
            label = (
                f"{crash_count} crash(es)"
                if crash_count
                else f"{degrade_count} degradation(s)"
            )
            rows.append(
                [
                    "FaaSFlow" if engine == "worker" else "HyperFlow",
                    label,
                    f"{100 * stats['success_rate']:.0f}%",
                    round(stats["mean_ok_latency"], 2),
                    round(stats["baseline_latency"], 2),
                    stats["crashes_fired"] + stats["degradations_fired"],
                    stats["retries"],
                    stats["retriggered"],
                ]
            )
    notes = [
        "WorkerSP recovers crashed nodes by re-triggering their pending "
        "sub-graph tasks at engine level (retriggered column); MasterSP "
        "survives at the master and retries inside the runtime "
        "(retries column)",
        "network degradation slows transfers without killing tasks, so "
        "success stays at 100% and only latency moves",
    ]
    return ExperimentResult(
        experiment="ext-faults-nodes",
        title="Extension: worker crashes and degraded links",
        headers=[
            "engine",
            "scenario",
            "success rate",
            "mean ok latency (s)",
            "baseline (s)",
            "faults fired",
            "retries",
            "retriggered",
        ],
        rows=rows,
        notes=notes,
    )


def run_backoff(
    invocations: int = 8,
    rate: float = 0.08,
    bases: tuple[float, ...] = (0.0, 0.05, 0.2),
    jitter: float = 0.1,
) -> ExperimentResult:
    """Retry-backoff sweep at a fixed crash rate for both engines.

    Backoff trades latency on crashed paths for pressure relief; in the
    simulator (retries always succeed in grabbing a container) the
    visible effect is the added mean latency per backoff step.
    """
    rows = []
    for engine in ("worker", "master"):
        for base in bases:
            cluster = make_cluster()
            faults = FaultInjector(default_rate=rate, seed=42)
            config = EngineConfig(
                ship_data=False,
                max_retries=3,
                retry_backoff_base=base,
                # Jitter multiplies the base, so base 0 (the immediate-
                # retry sweep point) must not configure jitter — the
                # combination is a validation warning.
                retry_jitter=jitter if base > 0 else 0.0,
            )
            system, dag = _build_system(engine, config, cluster, faults=faults)
            records = run_closed_loop(system, dag.name, invocations)
            ok = [r for r in records if r.status == "ok"]
            rows.append(
                [
                    "FaaSFlow" if engine == "worker" else "HyperFlow",
                    base,
                    f"{100 * len(ok) / len(records):.0f}%",
                    round(
                        sum(r.latency for r in ok) / len(ok), 2
                    ) if ok else float("nan"),
                    round(sum(r.retries for r in records) / len(records), 2),
                    faults.injected,
                ]
            )
    notes = [
        "exponential backoff (base * factor^(attempt-1), jittered) "
        "delays each retry; at simulator crash rates the success rate "
        "is set by the budget, so larger bases only add latency",
    ]
    return ExperimentResult(
        experiment="ext-faults-backoff",
        title="Extension: retry backoff sweep under function crashes",
        headers=[
            "engine",
            "backoff base (s)",
            "success rate",
            "mean ok latency (s)",
            "mean retries",
            "crashes injected",
        ],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
    run_node_crashes().print()
    run_backoff().print()

"""Paper-reproduction experiments: one module per table/figure.

| module | paper artifact |
|--------|----------------|
| fig04_master_overhead       | Fig. 4 - MasterSP scheduling overhead |
| fig05_data_movement         | Fig. 5 - monolithic vs FaaS data movement |
| fig11_sched_overhead        | Fig. 11 - MasterSP vs WorkerSP overhead |
| tab04_transfer_latency      | Table 4 - per-edge transfer latency |
| fig12_bandwidth_sweep       | Fig. 12 - p99 vs load across bandwidths |
| fig13_tail_latency          | Fig. 13 - p99 at 50 MB/s, 6 inv/min |
| fig14_colocation            | Fig. 14 - co-location interference |
| fig15_grouping              | Fig. 15 - grouping & scheduling result |
| fig16_scheduler_scalability | Fig. 16 - scheduler cost vs size |
| sec57_component_overhead    | Sec. 5.7 - worker-engine overhead |
"""

from .common import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]

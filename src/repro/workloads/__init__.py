"""The paper's 8 workflow benchmarks (Table 1)."""

from .pegasus import cycles, epigenomics, genome, soykb
from .realworld import (
    file_processing,
    illegal_recognizer,
    video_ffmpeg,
    word_count,
)
from .synthetic import chain, diamond, fan, layered_random, tree
from .wfcommons import WfCommonsError, load_wfcommons
from .registry import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    BenchmarkSpec,
    REAL_WORLD,
    SCIENTIFIC,
    build,
    build_all,
)

__all__ = [
    "ALL_BENCHMARKS",
    "chain",
    "diamond",
    "fan",
    "layered_random",
    "load_wfcommons",
    "tree",
    "WfCommonsError",
    "BENCHMARKS",
    "BenchmarkSpec",
    "build",
    "build_all",
    "cycles",
    "epigenomics",
    "file_processing",
    "genome",
    "illegal_recognizer",
    "REAL_WORLD",
    "SCIENTIFIC",
    "soykb",
    "video_ffmpeg",
    "word_count",
]

"""Ambient trace collection for the experiment harness.

The paper-reproduction experiments build their own clusters and systems
internally (one fresh cluster per cell), so a caller-supplied tracer
cannot reach them through arguments without threading a parameter
through every experiment.  Instead, ``faasflow-experiment --trace-out``
activates a :class:`TraceCollector`; ``make_cluster`` (the shared
cluster factory every experiment uses) asks the active collector to
instrument each cluster it builds — a span tracer is installed on the
cluster's producers and a resource sampler starts ticking — and the CLI
flushes one trace bundle per instrumented run at the end.

Worker processes spawned by ``--jobs`` never inherit the collector, so
parallel sweeps simply emit no spans from their children; run tracing
with ``--jobs 1`` (the default) to capture everything.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .export import export_trace
from .sampler import ResourceSampler
from .spans import SpanTracer

__all__ = ["TraceCollector", "activate", "deactivate", "active_collector"]

_active: Optional["TraceCollector"] = None


class TraceCollector:
    """Accumulates (tracer, sampler, cluster) triples for later export."""

    def __init__(
        self,
        directory: Union[str, Path],
        sample_interval: float = 0.25,
        span_limit: int = 1_000_000,
    ):
        self.directory = Path(directory)
        self.sample_interval = sample_interval
        self.span_limit = span_limit
        self.label = "run"
        self._runs: list[tuple[str, SpanTracer, ResourceSampler]] = []

    def set_label(self, label: str) -> None:
        """Name the bundles of subsequently instrumented clusters."""
        self.label = label

    def instrument(self, cluster) -> SpanTracer:
        """Attach a fresh tracer + sampler to a newly built cluster."""
        tracer = SpanTracer(cluster.env, limit=self.span_limit)
        cluster.install_spans(tracer)
        sampler = ResourceSampler(cluster, interval=self.sample_interval)
        sampler.start()
        self._runs.append((self.label, tracer, sampler))
        return tracer

    def flush(self) -> list[Path]:
        """Write one bundle per instrumented run; returns all paths."""
        paths: list[Path] = []
        counters: dict[str, int] = {}
        for label, tracer, sampler in self._runs:
            counters[label] = counters.get(label, 0) + 1
            prefix = f"{label}-{counters[label]:03d}"
            bundle = export_trace(
                self.directory, tracer, sampler=sampler, prefix=prefix
            )
            paths.extend(bundle.values())
        self._runs.clear()
        return paths

    @property
    def run_count(self) -> int:
        return len(self._runs)


def activate(collector: TraceCollector) -> None:
    global _active
    _active = collector


def deactivate() -> None:
    global _active
    _active = None


def active_collector() -> Optional[TraceCollector]:
    return _active

"""Frozen pre-PR engine trio + state/runtime/clients for A/B benching."""

from .clients import ClosedLoopClient, OpenLoopClient  # noqa: F401
from .dataflow_engine import DataflowSystem  # noqa: F401
from .master_engine import HyperFlowServerlessSystem  # noqa: F401
from .worker_engine import FaaSFlowSystem  # noqa: F401

"""Tests for the synthetic workflow generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import chain, diamond, fan, layered_random, tree

MB = 1024.0 * 1024.0


class TestChain:
    def test_length_and_structure(self):
        dag = chain(length=5)
        assert len(dag.node_names) == 5
        assert len(dag.edges) == 4
        assert dag.sources() == ["f0"]
        assert dag.sinks() == ["f4"]

    def test_single_node(self):
        dag = chain(length=1)
        assert dag.sources() == dag.sinks() == ["f0"]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            chain(length=0)


class TestFan:
    def test_gathered_fan(self):
        dag = fan(width=4)
        assert len(dag.successors("hub")) == 4
        assert len(dag.predecessors("gather")) == 4

    def test_ungathered_fan(self):
        dag = fan(width=3, gather=False)
        assert len(dag.sinks()) == 3

    def test_hub_data_fans_out(self):
        dag = fan(width=2, hub_output=4 * MB)
        for branch in dag.successors("hub"):
            assert dag.edge("hub", branch).data_size == 4 * MB


class TestDiamond:
    def test_shape(self):
        dag = diamond(width=3)
        dag.validate()
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 1


class TestTree:
    def test_node_count(self):
        dag = tree(depth=3, fanout=2)
        assert len(dag.node_names) == 1 + 2 + 4 + 8

    def test_depth_zero_is_single_node(self):
        assert len(tree(depth=0).node_names) == 1

    def test_every_nonroot_has_one_parent(self):
        dag = tree(depth=2, fanout=3)
        for name in dag.node_names:
            if name != "n0":
                assert len(dag.predecessors(name)) == 1


class TestLayeredRandom:
    @settings(max_examples=30, deadline=None)
    @given(
        layers=st.integers(1, 5),
        width=st.integers(1, 5),
        density=st.floats(0, 1),
        seed=st.integers(0, 1000),
    )
    def test_always_valid_and_connected(self, layers, width, density, seed):
        dag = layered_random(
            layers=layers, width=width, density=density, seed=seed
        )
        dag.validate()
        assert len(dag.node_names) == layers * width
        # Every non-first-layer node is reachable.
        for name in dag.node_names:
            if not name.startswith("l0"):
                assert dag.predecessors(name)

    def test_deterministic_under_seed(self):
        a = layered_random(seed=3)
        b = layered_random(seed=3)
        assert sorted(e.key for e in a.edges) == sorted(
            e.key for e in b.edges
        )

    def test_different_seeds_differ(self):
        a = layered_random(seed=1, layers=5, width=5)
        b = layered_random(seed=2, layers=5, width=5)
        assert sorted(e.key for e in a.edges) != sorted(
            e.key for e in b.edges
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            layered_random(layers=0)
        with pytest.raises(ValueError):
            layered_random(density=1.5)

    def test_runs_end_to_end(self):
        from repro.runner import run_workflow

        dag = layered_random(layers=3, width=3, seed=11)
        summary = run_workflow(dag, invocations=2, workers=3)
        assert summary.completed == 2

"""Sharded telemetry merges are value-identical to single-process runs.

The observability tentpole's determinism contract, pinned both ways
the simulator shards:

- **network shards** label every metric by the owning source node, so
  per-shard label-sets are disjoint and the merged snapshot is a pure
  union of exact integer-valued counters — bit-identical to one
  environment running the whole plan;
- **workflow cells** each collect a fresh registry and the snapshots
  merge in cell order, replaying the exact same float additions no
  matter which shard worker ran which cell.

Satellite: ``MetricsCollector.breakdown()`` keeps its exact-sum
invariant (components sum to end-to-end latency) on records coming out
of sharded cell runs, and decomposes identically to a serial run.
"""

import json

import pytest

from repro.metrics import InvocationRecord, MetricsCollector
from repro.obs.spans import BREAKDOWN_COMPONENTS
from repro.obs.telemetry import merge_snapshots, validate_snapshot
from repro.sim.shard import (
    make_workflow_cell,
    run_network_sharded,
    run_network_single,
    run_workflow_cells,
)


def canon(snapshot):
    return json.dumps(snapshot, sort_keys=True)


class TestNetworkShardTelemetry:
    """Disjoint per-node labels + integer byte counters = union merge."""

    NODES, FLOWS, GROUP = 16, 120, 4

    @pytest.fixture(scope="class")
    def plan(self):
        from repro.experiments.fig_scale import make_plan

        plan = make_plan(
            self.NODES, self.FLOWS, seed=23, group_size=self.GROUP
        )
        names = [f"n{i}" for i in range(self.NODES)]
        abs_plan = [
            (at, f"n{s}", f"n{d}", size) for _gap, at, s, d, size in plan
        ]
        return abs_plan, names

    @pytest.fixture(scope="class")
    def single(self, plan):
        abs_plan, names = plan
        return run_network_single(abs_plan, names, telemetry=True)

    def test_single_snapshot_valid(self, single):
        snapshot = single["telemetry"]
        assert validate_snapshot(snapshot) == []
        assert {m["name"] for m in snapshot["metrics"]} == {
            "net.bytes", "net.transfers",
        }

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_merge_bit_identical(self, shards, plan, single):
        abs_plan, names = plan
        sharded = run_network_sharded(
            abs_plan, names, shards,
            group_size=self.GROUP, strict=True, telemetry=True,
        )
        assert sharded["records"] == single["records"]
        assert canon(sharded["telemetry"]) == canon(single["telemetry"])

    def test_bytes_match_plan_per_node(self, plan, single):
        # Counters increment at flow completion, so the addition order
        # differs from plan order — per-node sums match to float
        # tolerance, and transfer counts match exactly.
        abs_plan, _ = plan
        expected: dict[str, float] = {}
        counts: dict[str, int] = {}
        for _at, src, _dst, size in abs_plan:
            expected[src] = expected.get(src, 0.0) + size
            counts[src] = counts.get(src, 0) + 1
        metrics = single["telemetry"]["metrics"]
        observed = {
            m["labels"]["node"]: m["total"]
            for m in metrics
            if m["name"] == "net.bytes"
        }
        assert observed == pytest.approx(expected, rel=1e-12)
        assert {
            m["labels"]["node"]: int(m["total"])
            for m in metrics
            if m["name"] == "net.transfers"
        } == counts


CELLS = [
    make_workflow_cell(
        ("layered_random", {"seed": 3}),
        engine="worker", seed=13, invocations=2, workers=3,
        collect_telemetry=True,
    ),
    make_workflow_cell(
        ("chain", {"length": 5}),
        engine="master", seed=17, invocations=2, workers=3,
        collect_telemetry=True,
    ),
    make_workflow_cell(
        "video-ffmpeg", engine="worker", seed=29, invocations=2, workers=4,
        collect_telemetry=True,
    ),
    make_workflow_cell(
        "cycles", engine="master", seed=7, invocations=2, workers=3,
        collect_telemetry=True,
    ),
]


@pytest.fixture(scope="module")
def serial_cells():
    return run_workflow_cells(CELLS, shards=1)


class TestWorkflowCellTelemetry:
    """Per-cell registries merged in cell order: layout-independent."""

    def test_every_cell_carries_a_valid_snapshot(self, serial_cells):
        for result in serial_cells:
            snapshot = result["telemetry"]
            assert validate_snapshot(snapshot) == []
            names = {m["name"] for m in snapshot["metrics"]}
            assert "workflow.latency" in names
            assert "function.execute_seconds" in names

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_cells_bit_identical(self, shards, serial_cells):
        sharded = run_workflow_cells(CELLS, shards=shards)
        assert sharded == serial_cells  # includes the telemetry dicts

    def test_merged_snapshot_matches_serial_merge(self, serial_cells):
        sharded = run_workflow_cells(CELLS, shards=2)
        merged_serial = merge_snapshots(
            [r["telemetry"] for r in serial_cells]
        )
        merged_sharded = merge_snapshots(
            [r["telemetry"] for r in sharded]
        )
        assert canon(merged_sharded) == canon(merged_serial)
        assert validate_snapshot(merged_serial) == []

    def test_telemetry_agrees_with_records(self, serial_cells):
        for result in serial_cells:
            entries = [
                m
                for m in result["telemetry"]["metrics"]
                if m["name"] == "workflow.invocations"
            ]
            assert sum(int(m["total"]) for m in entries) == len(
                result["records"]
            )


class TestShardedBreakdownInvariant:
    """Satellite: breakdown() exact-sum on records from sharded runs."""

    @staticmethod
    def collector_from(results):
        collector = MetricsCollector()
        for result in results:
            for tup in result["records"]:
                collector.record_invocation(InvocationRecord(*tup))
        return collector

    def breakdowns(self, results):
        collector = self.collector_from(results)
        return [
            collector.breakdown(r.invocation_id)
            for r in collector.invocations
        ]

    def test_components_sum_to_e2e(self, serial_cells):
        parts_list = self.breakdowns(serial_cells)
        assert parts_list
        for parts in parts_list:
            total = sum(parts[c] for c in BREAKDOWN_COMPONENTS)
            assert total == pytest.approx(parts["e2e"], abs=1e-9)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_decomposition_identical(self, shards, serial_cells):
        sharded = run_workflow_cells(CELLS, shards=shards)
        assert self.breakdowns(sharded) == self.breakdowns(serial_cells)

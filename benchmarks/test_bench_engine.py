"""Engine serving-throughput A/B bench vs the frozen pre-PR engines.

Drives the same open-loop, multi-tenant serving workload through the
live engine trio (``repro.core``) and the frozen pre-PR copies
(``benchmarks/_seed_engine``): four tenants, each with its own
paper-scale workflow (chain12 / fan8 / diamond6 / tree-depth3 — the
FaaSFlow benchmarks are 8-16 node DAGs, §6.1), invoked open-loop with
seeded Poisson arrivals on one shared cluster.  Both sides share the
simulation substrate (kernel, network, containers, faults, policy,
metrics) and one global invocation-id sequence, so in default engine
configuration the produced ``InvocationRecord`` streams must be
**bit-identical** — the bench is invalid on a single bit of drift.

Each cell is measured three ways:

- **seed** — the frozen pre-PR engines (baseline),
- **live** — the current engines in default configuration; records are
  asserted bit-identical to the seed stream,
- **live batched** — the current engines with ``batch_control=True``
  (ISSUE 10 tentpole: same-destination control messages coalesced into
  one transfer and one engine step).  Batched records are checked for
  semantic identity — same (workflow, invocation id, status) stream per
  tenant — but timestamps legitimately differ, so the geomean gate uses
  this mode while the bit-identity invariant is pinned on default mode.

The headline number is sustained invocations per wall-clock second:
``invocations / env.run wall`` per engine, live over seed, geomean over
the three engines.  Engine-step costs are configured small so the
measured quantity is the *Python control-plane overhead per invocation*
(indexed dispatch, state lifecycle, client bookkeeping), not simulated
latency — the same framing Wukong uses for DAG-engine scheduling
overhead.

Run directly (``python benchmarks/test_bench_engine.py``) to refresh
the committed ``BENCH_engine.json``; pass ``--quick`` for the small
sweep the CI smoke job uses (bit-identity asserted, speedup recorded
but not gated).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

import _seed_engine as seed_modules

import repro.clients as live_clients
import repro.core as live_core
from repro.core import EngineConfig, hash_partition
from repro.core.state import reset_invocation_ids
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment
from repro.workloads import chain, diamond, fan, tree

_HERE = Path(__file__).resolve().parent
_ROUNDS = 3
# Acceptance gate (full mode only, from ISSUE 10): geomean live-over-seed
# invocations/sec across the three engines, batched control plane on,
# with default-mode records bit-identical to the seed.
_TARGET_GEOMEAN = 1.5

# Four tenants, each owning one workflow shape on the shared cluster.
# Tiny service times and no data shipping keep the workload control-
# plane-bound; output sizes are zeroed so eager shipping has no work
# either way.
_TENANTS = (
    ("acme", "chain"),
    ("globex", "fan"),
    ("initech", "diamond"),
    ("umbrella", "tree"),
)

# (cell name, engine, total invocations, arrivals/minute per tenant).
# Rates sit well under each engine's serialized-step capacity so runs
# drain rather than queue into the 60 s watchdog; the master's central
# engine serializes every task assignment, so it takes a lower rate.
_CELLS = [
    ("worker-10k", "worker", 10_000, 1_800.0),
    ("master-10k", "master", 10_000, 300.0),
    ("dataflow-10k", "dataflow", 10_000, 1_800.0),
    ("worker-100k", "worker", 100_000, 1_800.0),
]
_QUICK_CELLS = [
    ("worker-q", "worker", 400, 1_800.0),
    ("master-q", "master", 200, 300.0),
    ("dataflow-q", "dataflow", 400, 1_800.0),
]


def _make_workflows():
    # Paper-scale shapes: FaaSFlow's evaluation workflows have 8-16
    # functions (genome 16, video 10, ML 8, recognition 7).
    return {
        "chain": chain(length=12, service_time=0.01, output_size=0.0),
        "fan": fan(
            width=8, service_time=0.01, hub_output=0.0, branch_output=0.0
        ),
        "diamond": diamond(width=6, service_time=0.01, output_size=0.0),
        "tree": tree(depth=3, fanout=2, service_time=0.01, output_size=0.0),
    }


def _make_config(batch: bool = False) -> EngineConfig:
    # Small step costs: the bench measures per-invocation Python
    # overhead, so simulated handling costs only set feasible arrival
    # rates, they are not the quantity under test.
    return EngineConfig(
        ship_data=False,
        worker_process_time=0.001,
        master_process_time=0.001,
        dataflow_trigger_time=0.0005,
        local_trigger_time=0.0002,
        batch_control=batch,
    )


def _build(engine: str, modules, batch: bool = False):
    cluster = Cluster(
        Environment(),
        ClusterConfig(
            workers=8,
            container=ContainerSpec(cold_start_time=0.05),
        ),
    )
    config = _make_config(batch)
    if engine == "worker":
        system = modules.FaaSFlowSystem(cluster, config)
    elif engine == "dataflow":
        system = modules.DataflowSystem(cluster, config)
    elif engine == "master":
        system = modules.HyperFlowServerlessSystem(cluster, config)
    else:  # pragma: no cover - bench wiring error
        raise ValueError(f"unknown engine {engine!r}")
    workflows = _make_workflows()
    for _, shape in _TENANTS:
        dag = workflows[shape]
        placement = hash_partition(dag, cluster.worker_names())
        if engine == "master":
            system.register(dag, placement)
        else:
            system.deploy(dag, placement, prewarm=4)
    return cluster, system


def _run_once(
    engine: str,
    modules,
    clients_module,
    total: int,
    rate: float,
    batch: bool = False,
):
    """One full serving run; returns (wall_seconds, per-tenant records)."""
    cluster, system = _build(engine, modules, batch)
    env = cluster.env
    per_tenant = total // len(_TENANTS)
    clients = [
        clients_module.OpenLoopClient(
            system,
            workflows_shape,
            per_tenant,
            rate,
            seed=13 + index,
        )
        for index, (_, workflows_shape) in enumerate(_TENANTS)
    ]
    reset_invocation_ids(1)
    start = time.perf_counter()
    procs = [
        env.process(client.run(), name=f"client:{tenant}")
        for (tenant, _), client in zip(_TENANTS, clients)
    ]
    env.run(until=env.all_of(procs))
    wall = time.perf_counter() - start
    records = {
        tenant: tuple(client.records)
        for (tenant, _), client in zip(_TENANTS, clients)
    }
    statuses = [r.status for recs in records.values() for r in recs]
    ok = sum(1 for s in statuses if s == "ok")
    return wall, records, {"ok": ok, "total": len(statuses)}


def _outcomes(records):
    """The semantic outcome stream: (workflow, invocation id, status)."""
    return {
        tenant: tuple((r.workflow, r.invocation_id, r.status) for r in recs)
        for tenant, recs in records.items()
    }


def _measure(cells, rounds: int = _ROUNDS):
    results = []
    for name, engine, total, rate in cells:
        seed_wall, seed_records, seed_stats = _run_once(
            engine, seed_modules, seed_modules, total, rate
        )
        live_wall, live_records, live_stats = _run_once(
            engine, live_core, live_clients, total, rate
        )
        if live_records != seed_records:
            for tenant in seed_records:
                for a, b in zip(seed_records[tenant], live_records[tenant]):
                    if a != b:
                        raise AssertionError(
                            f"record drift in cell {name!r} tenant "
                            f"{tenant!r}:\n  seed: {a}\n  live: {b}"
                        )
            raise AssertionError(f"record drift in cell {name!r}")
        batched_wall, batched_records, batched_stats = _run_once(
            engine, live_core, live_clients, total, rate, batch=True
        )
        # Batched mode may legitimately shift timestamps (coalesced
        # transfers and engine steps), but every invocation must still
        # resolve to the same outcome in the same per-tenant order.
        if _outcomes(batched_records) != _outcomes(seed_records):
            raise AssertionError(
                f"batched outcome drift in cell {name!r}: batched mode "
                "changed an invocation's status or ordering"
            )
        for _ in range(rounds - 1):
            seed_wall = min(
                seed_wall,
                _run_once(engine, seed_modules, seed_modules, total, rate)[0],
            )
            live_wall = min(
                live_wall,
                _run_once(engine, live_core, live_clients, total, rate)[0],
            )
            batched_wall = min(
                batched_wall,
                _run_once(
                    engine, live_core, live_clients, total, rate, batch=True
                )[0],
            )
        invocations = total // len(_TENANTS) * len(_TENANTS)
        results.append(
            {
                "cell": name,
                "engine": engine,
                "invocations": invocations,
                "rate_per_minute_per_tenant": rate,
                "ok_fraction": round(
                    live_stats["ok"] / live_stats["total"], 4
                ),
                "records_identical": True,
                "batched_outcomes_identical": True,
                "seed_wall_seconds": round(seed_wall, 6),
                "live_wall_seconds": round(live_wall, 6),
                "batched_wall_seconds": round(batched_wall, 6),
                "seed_invocations_per_second": round(
                    invocations / seed_wall, 1
                ),
                "live_invocations_per_second": round(
                    invocations / live_wall, 1
                ),
                "batched_invocations_per_second": round(
                    invocations / batched_wall, 1
                ),
                "speedup_default": round(seed_wall / live_wall, 3),
                "speedup_batched": round(seed_wall / batched_wall, 3),
            }
        )
    return results


def _aggregate(results) -> dict:
    # One speedup per engine (its largest cell) so the geomean is not
    # tilted toward whichever engine has more rows.
    per_engine: dict[str, dict] = {}
    for row in results:
        best = per_engine.get(row["engine"])
        if best is None or row["invocations"] > best["invocations"]:
            per_engine[row["engine"]] = row

    def _geomean(key):
        values = [r[key] for r in per_engine.values()]
        return round(
            math.exp(sum(math.log(v) for v in values) / len(values)), 3
        )

    return {
        "per_engine_speedup_default": {
            e: r["speedup_default"] for e, r in per_engine.items()
        },
        "per_engine_speedup_batched": {
            e: r["speedup_batched"] for e, r in per_engine.items()
        },
        "geomean_speedup_default": _geomean("speedup_default"),
        # The gated number: the tentpole batched control plane on, with
        # default-mode bit-identity asserted in the same cells.
        "geomean_speedup": _geomean("speedup_batched"),
    }


def test_engine_records_bit_identical(benchmark):
    def run_ab():
        results = _measure(_QUICK_CELLS, rounds=1)
        return results, _aggregate(results)

    results, aggregate = benchmark.pedantic(run_ab, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = results
    benchmark.extra_info.update(aggregate)
    # The invariant, not the speedup, is what CI gates on: quick cells
    # are small enough to be dominated by setup noise.
    assert all(r["records_identical"] for r in results)
    assert all(r["batched_outcomes_identical"] for r in results)
    assert all(r["ok_fraction"] > 0.95 for r in results)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    cells = _QUICK_CELLS if quick else _CELLS
    rounds = 1 if quick else _ROUNDS
    results = _measure(cells, rounds=rounds)
    aggregate = _aggregate(results)
    payload = {
        "bench": "engine serving throughput (invocations per wall-clock "
        f"second, best of {rounds} round(s)) vs frozen pre-PR engines",
        "baseline": "benchmarks/_seed_engine: pre-PR WorkerSP / MasterSP / "
        "DataflowSP + state/runtime/clients on the live simulation "
        "substrate",
        "workload": "open-loop multi-tenant serving: 4 tenants x "
        "(chain12 / fan8 / diamond6 / tree-depth3), seeded Poisson "
        "arrivals, ship_data off, prewarmed containers",
        "invariant": "InvocationRecord streams bit-identical to the seed "
        "engines in default (unbatched) mode, per tenant, in order; "
        "batched mode preserves every (workflow, invocation, status) "
        "outcome and its per-tenant order",
        "gate": "geomean_speedup is measured with batch_control=True "
        "(ISSUE 10 tentpole); geomean_speedup_default is the same "
        "engines in the bit-identical default configuration",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "cells": results,
        **aggregate,
    }
    out = _HERE.parent / "BENCH_engine.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {out}")
    if not quick and payload["geomean_speedup"] < _TARGET_GEOMEAN:
        print(
            f"WARNING: geomean speedup {payload['geomean_speedup']}x "
            f"below target {_TARGET_GEOMEAN}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""``faasflow-trace``: inspect and export trace bundles.

Operates on a trace directory written by ``faasflow-run --trace-out``
or ``faasflow-experiment --trace-out`` (or directly on one
``*-spans.jsonl`` file)::

    faasflow-trace out/                      # summary of every bundle
    faasflow-trace out/ --tree               # span tree, first invocation
    faasflow-trace out/ --tree 42            # span tree of invocation 42
    faasflow-trace out/ --top 10             # 10 slowest function spans
    faasflow-trace out/ --nodes              # per-node utilization table
    faasflow-trace out/ --export-perfetto trace.json
    faasflow-trace out/ --validate           # CI: parse + nesting checks
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .export import (
    chrome_trace,
    read_spans_jsonl,
    validate_chrome_trace,
)
from .sampler import ResourceSampler, read_samples_csv
from .spans import (
    BREAKDOWN_COMPONENTS,
    Span,
    SpanKind,
    decompose,
    format_span_tree,
)

__all__ = ["main"]


def _format_table(headers, rows) -> str:
    from ..experiments.common import format_table

    return format_table(headers, rows)


class TraceBundle:
    """One run's loaded spans (+ optional samples)."""

    def __init__(self, spans_path: Path):
        self.spans_path = spans_path
        self.spans, self.meta = read_spans_jsonl(spans_path)
        self.name = spans_path.name.replace("-spans.jsonl", "")
        samples_path = spans_path.with_name(f"{self.name}-samples.csv")
        self.samples = (
            read_samples_csv(samples_path) if samples_path.exists() else []
        )

    @property
    def dropped(self) -> int:
        return self.meta.get("dropped", 0)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.kind == SpanKind.INVOCATION]

    def spans_of(self, invocation_id: int) -> list[Span]:
        return [s for s in self.spans if s.invocation_id == invocation_id]

    def breakdown(self, root: Span) -> dict[str, float]:
        end = root.end if root.end is not None else root.start
        return decompose(
            self.spans_of(root.invocation_id), (root.start, end)
        )


def _discover(path: Path) -> list[TraceBundle]:
    if path.is_file():
        return [TraceBundle(path)]
    bundles = [
        TraceBundle(p) for p in sorted(path.glob("*-spans.jsonl"))
    ]
    if not bundles:
        raise SystemExit(
            f"error: no *-spans.jsonl files under {path} "
            "(expected a --trace-out directory or a spans JSONL file)"
        )
    return bundles


def _function_spans(bundle: TraceBundle) -> list[Span]:
    return [s for s in bundle.spans if s.kind == SpanKind.FUNCTION]


def _summary(bundle: TraceBundle, top: int) -> str:
    roots = bundle.roots()
    lines = [f"== {bundle.name} =="]
    lines.append(
        f"spans               {len(bundle.spans)}"
        + (f" ({bundle.dropped} dropped, oldest first)" if bundle.dropped else "")
    )
    statuses: dict[str, int] = {}
    for root in roots:
        status = root.attrs.get("result", root.status)
        statuses[status] = statuses.get(status, 0) + 1
    status_text = ", ".join(f"{v} {k}" for k, v in sorted(statuses.items()))
    lines.append(f"invocations         {len(roots)} ({status_text})")
    if roots:
        totals = dict.fromkeys(BREAKDOWN_COMPONENTS, 0.0)
        e2e = 0.0
        for root in roots:
            for key, value in bundle.breakdown(root).items():
                totals[key] += value
            e2e += root.duration
        lines.append("mean latency decomposition per invocation:")
        for key in BREAKDOWN_COMPONENTS:
            mean = totals[key] / len(roots) * 1000
            share = totals[key] / e2e * 100 if e2e else 0.0
            lines.append(f"  {key:<11} {mean:>10,.2f} ms  ({share:4.1f}%)")
    slowest = sorted(
        _function_spans(bundle), key=lambda s: s.duration, reverse=True
    )[:top]
    if slowest:
        lines.append(f"top {len(slowest)} slowest function spans:")
        for span in slowest:
            lines.append(
                f"  {span.duration * 1000:>10,.2f} ms  {span.function}"
                f" @{span.node}  (invocation {span.invocation_id})"
            )
    return "\n".join(lines)


def _nodes_table(bundle: TraceBundle) -> str:
    if not bundle.samples:
        return f"== {bundle.name} ==\n(no samples recorded)"
    sampler = ResourceSampler.__new__(ResourceSampler)
    sampler.samples = bundle.samples
    rows = sampler.node_table()
    return f"== {bundle.name} ==\n" + _format_table(
        ResourceSampler.NODE_TABLE_HEADERS, rows
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="faasflow-trace",
        description="Summarize, inspect, validate, and export trace bundles.",
    )
    parser.add_argument(
        "path", help="trace directory (--trace-out output) or a spans.jsonl"
    )
    parser.add_argument(
        "--tree", nargs="?", const=-1, type=int, metavar="INV",
        help="print a span tree (of invocation INV, default the first)",
    )
    parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="N slowest function spans in the summary (default 5)",
    )
    parser.add_argument(
        "--nodes", action="store_true",
        help="per-node utilization table from the resource samples",
    )
    parser.add_argument(
        "--export-perfetto", metavar="OUT",
        help="write a merged Chrome trace-event JSON for Perfetto",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check every bundle parses and its spans are well-nested",
    )
    args = parser.parse_args(argv)
    bundles = _discover(Path(args.path))

    if args.validate:
        failures = 0
        for bundle in bundles:
            document = chrome_trace(bundle.spans, samples=bundle.samples)
            problems = validate_chrome_trace(document)
            trace_path = bundle.spans_path.with_name(
                f"{bundle.name}-trace.json"
            )
            if trace_path.exists():
                problems += validate_chrome_trace(
                    json.loads(trace_path.read_text())
                )
            if problems:
                failures += 1
                print(f"INVALID {bundle.name}:")
                for problem in problems[:10]:
                    print(f"  - {problem}")
            else:
                print(
                    f"ok {bundle.name}: {len(bundle.spans)} spans, "
                    f"{len(bundle.roots())} invocations, well-nested"
                )
        return 1 if failures else 0

    if args.export_perfetto:
        spans: list[Span] = []
        samples = []
        dropped = 0
        for bundle in bundles:
            spans.extend(bundle.spans)
            samples.extend(bundle.samples)
            dropped += bundle.dropped
        document = chrome_trace(spans, samples=samples, dropped=dropped)
        Path(args.export_perfetto).write_text(json.dumps(document))
        print(
            f"wrote {args.export_perfetto}: {len(spans)} spans from "
            f"{len(bundles)} bundle(s) — open at https://ui.perfetto.dev"
        )
        return 0

    if args.tree is not None:
        bundle = bundles[0]
        roots = bundle.roots()
        if not roots:
            print("no invocations in trace")
            return 1
        invocation_id = (
            roots[0].invocation_id if args.tree == -1 else args.tree
        )
        spans = bundle.spans_of(invocation_id)
        if not spans:
            known = ", ".join(str(r.invocation_id) for r in roots[:20])
            print(
                f"no spans for invocation {invocation_id} "
                f"(known invocations: {known})"
            )
            return 1
        print(f"invocation {invocation_id} ({bundle.name}):")
        print(format_span_tree(spans))
        return 0

    if args.nodes:
        for bundle in bundles:
            print(_nodes_table(bundle))
            print()
        return 0

    for bundle in bundles:
        print(_summary(bundle, args.top))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into head/less and the reader left; not an error.
        sys.exit(0)

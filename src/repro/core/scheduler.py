"""The Graph Scheduler on the master node (paper §4.1).

The scheduler never triggers functions.  It parses workflows, partitions
them into sub-graphs with Algorithm 1 (:mod:`repro.core.grouping`),
computes each worker's FaaStore quota from the reclamation equations,
and re-partitions when runtime feedback (per-edge 99%-ile transmission
latencies, function scale, memory high-water marks) indicates the
current partition is stale.

The very first partition of a workflow has no feedback yet, so —
like the paper — it falls back to a hash-based placement.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Optional

from ..dag import DataEdge, WorkflowDAG
from ..metrics import MetricsCollector, percentile
from ..sim import Cluster
from .grouping import GroupingConfig, GroupingResult, group_functions
from .reclamation import (
    MemoryUsageHistory,
    ReclamationConfig,
    per_node_quotas,
    workflow_quota,
)
from .state import Placement

__all__ = ["GraphScheduler", "SchedulerReport", "hash_partition"]


@dataclass
class SchedulerReport:
    """Cost accounting of one partition run (Fig. 16 metric)."""

    workflow: str
    function_count: int
    iteration: int  # which partition iteration this was (1 = hash-based)
    wall_time: float  # seconds spent partitioning
    memory_peak: float  # bytes allocated while partitioning
    grouping: Optional[GroupingResult] = None


def hash_partition(dag: WorkflowDAG, workers: list[str]) -> Placement:
    """Deterministic hash-based placement (first-iteration fallback).

    Virtual nodes follow their step's owning worker only by accident of
    hashing — acceptable for a bootstrap placement that feedback will
    replace.
    """
    if not workers:
        raise ValueError("need at least one worker")
    assignment = {}
    for index, name in enumerate(sorted(dag.node_names)):
        assignment[name] = workers[index % len(workers)]
    return Placement(workflow=dag.name, assignment=assignment)


class GraphScheduler:
    """Master-side partitioner with runtime-feedback iterations."""

    def __init__(
        self,
        cluster: Cluster,
        reclamation: Optional[ReclamationConfig] = None,
        seed: int = 7,
    ):
        self.cluster = cluster
        self.reclamation = reclamation or ReclamationConfig(
            container_memory=cluster.config.container.memory_limit
        )
        self.seed = seed
        self.memory_history = MemoryUsageHistory()
        self.scale_feedback: dict[str, float] = {}
        self.contention_pairs: frozenset[frozenset[str]] = frozenset()
        self.reports: list[SchedulerReport] = []
        self._iteration: dict[str, int] = {}
        # Capacity promised to each deployed workflow (worker -> slots),
        # so later workflows are packed around earlier ones even before
        # their containers physically exist.
        self._reservations: dict[str, dict[str, float]] = {}

    # -- capacity model -----------------------------------------------------
    # Grouping packs at most this many concurrently-runnable containers
    # per core: functions are 1-core (Table 3), so piling far more onto a
    # node than it has cores would serialize parallel steps and destroy
    # the workflow's critical path.  Memory still caps the total.
    cpu_oversubscription: float = 1.25

    def worker_capacities(self, exclude: Optional[str] = None) -> dict[str, float]:
        """Containers each worker can still host (its Cap[node]).

        Bounded by container memory slots net of the FaaStore pools and
        of the capacity reserved for other deployed workflows.
        ``exclude`` names the workflow being (re)scheduled, whose own
        reservation does not count against it.  Concurrency is capped
        separately per group (:meth:`max_group_instances`).
        """
        spec = self.cluster.config.container
        memory_slots = {}
        for worker in self.cluster.workers:
            pool = worker.memory.reserved_by_tag("faastore-pool")
            memory_slots[worker.name] = (
                (worker.memory.capacity - pool) // spec.memory_limit
            )
        # Memory is physically held by other workflows' containers; the
        # concurrency bound is per-workflow (co-scheduled workflows
        # time-share the cores).
        for workflow, demand in self._reservations.items():
            if workflow == exclude:
                continue
            for worker_name, slots in demand.items():
                memory_slots[worker_name] = max(
                    0.0, memory_slots.get(worker_name, 0.0) - slots
                )
        return memory_slots

    def max_group_instances(self) -> float:
        """Concurrency cap for one function group (cores x factor)."""
        cores = max(w.config.cores for w in self.cluster.workers)
        return cores * self.cpu_oversubscription

    # -- feedback -------------------------------------------------------------
    def declare_contention(self, pairs) -> None:
        """Register conflict function pairs cont(G) = {(f_i, f_j)}."""
        self.contention_pairs = frozenset(
            frozenset(pair) for pair in pairs
        )

    def absorb_feedback(
        self, dag: WorkflowDAG, metrics: MetricsCollector
    ) -> None:
        """Fold runtime measurements into the DAG's weights and metrics.

        Edge weights become the 99%-ile measured transmission latency of
        the (producer, consumer) pair the edge serves; node ``scale``
        comes from observed scale feedback; memory high-water marks feed
        the reclamation history.
        """
        update_edge_weights(dag, metrics)
        for node in dag.nodes:
            if node.name in self.scale_feedback:
                node.scale = self.scale_feedback[node.name]

    def observe_scale(self, function: str, scale: float) -> None:
        if scale < 0:
            raise ValueError("scale must be >= 0")
        self.scale_feedback[function] = scale

    def observe_memory(self, function: str, used: float) -> None:
        self.memory_history.observe(function, used)

    # -- partitioning ------------------------------------------------------------
    def schedule(
        self,
        dag: WorkflowDAG,
        force_grouping: bool = False,
    ) -> tuple[Placement, dict[str, float], SchedulerReport]:
        """Partition ``dag`` and compute per-worker FaaStore quotas.

        The first call for a workflow uses the hash-based bootstrap
        unless ``force_grouping`` is set; later calls run Algorithm 1
        with whatever feedback has been absorbed.
        """
        iteration = self._iteration.get(dag.name, 0) + 1
        self._iteration[dag.name] = iteration
        workers = self.cluster.worker_names()
        tracemalloc.start()
        started = time.perf_counter()
        grouping: Optional[GroupingResult] = None
        if iteration == 1 and not force_grouping:
            placement = hash_partition(dag, workers)
        else:
            config = GroupingConfig(
                workers=workers,
                node_capacity=self.worker_capacities(exclude=dag.name),
                quota=workflow_quota(dag, self.reclamation, self.memory_history),
                contention_pairs=self.contention_pairs,
                seed=self.seed,
                max_group_instances=self.max_group_instances(),
            )
            grouping = group_functions(dag, config)
            placement = grouping.placement
            # Annotate Algorithm 1's storage decision onto the DAG so
            # FaaStore honors it at runtime (producers left on 'DB' by
            # the quota accounting must not occupy the memory store).
            for function, storage in grouping.storage_type.items():
                dag.node(function).metadata["storage_type"] = storage
        wall_time = time.perf_counter() - started
        _, memory_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        report = SchedulerReport(
            workflow=dag.name,
            function_count=len(dag.real_nodes()),
            iteration=iteration,
            wall_time=wall_time,
            memory_peak=float(memory_peak),
            grouping=grouping,
        )
        self.reports.append(report)
        demand: dict[str, float] = {}
        for node in dag.real_nodes():
            worker_name = placement.node_of(node.name)
            demand[worker_name] = (
                demand.get(worker_name, 0.0) + node.effective_instances
            )
        self._reservations[dag.name] = demand
        quotas = per_node_quotas(
            dag, placement, self.reclamation, self.memory_history
        )
        return placement, quotas, report

    def container_limits(self, dag: WorkflowDAG) -> dict[str, float]:
        """Per-function reclaimed container limits (paper Fig. 10(b)).

        A function whose Eq. 1 surplus funds the FaaStore pool gets its
        containers created with ``Mem(v) - O(v)/Map(v) = S + mu`` — the
        pool and the shrunken containers together occupy exactly what
        full-size containers would, so reclamation adds no pressure.
        """
        from .reclamation import over_provisioned

        limits: dict[str, float] = {}
        for node in dag.real_nodes():
            surplus = over_provisioned(
                dag, node.name, self.reclamation, self.memory_history
            ) / max(node.map_factor, 1.0)
            if surplus > 0:
                limits[node.name] = (
                    self.reclamation.container_memory - surplus
                )
        return limits

    def apply_quotas(self, quotas: dict[str, float]) -> None:
        """Pin the reclaimed FaaStore pools on the worker nodes."""
        for worker in self.cluster.workers:
            worker.set_faastore_quota(quotas.get(worker.name, 0.0))


def update_edge_weights(dag: WorkflowDAG, metrics: MetricsCollector) -> None:
    """Refresh control-plane edge weights from measured transfers.

    For every real (producer, consumer) pair the ledger saw, the pair's
    99%-ile put+get latency is written onto each control edge along the
    producer's (virtual-node) path to that consumer; edges without
    measurements keep their previous weight.
    """
    puts: dict[str, list[float]] = {}
    gets: dict[tuple[str, str], list[float]] = {}
    for event in metrics.transfers:
        if event.workflow != dag.name:
            continue
        if event.phase == "put":
            puts.setdefault(event.producer, []).append(event.duration)
        else:
            gets.setdefault((event.producer, event.consumer), []).append(
                event.duration
            )
    if not gets and not puts:
        return
    fresh: dict[tuple[str, str], float] = {}
    for (producer, consumer), durations in gets.items():
        if not dag.has_node(producer) or not dag.has_node(consumer):
            continue
        latency = percentile(durations, 99)
        if producer in puts:
            latency += percentile(puts[producer], 99)
        for edge in _virtual_path_edges(dag, producer, consumer):
            key = edge.key
            fresh[key] = max(fresh.get(key, 0.0), latency)
    for key, weight in fresh.items():
        dag.edge(*key).weight = weight


def _virtual_path_edges(
    dag: WorkflowDAG, producer: str, consumer: str
) -> list[DataEdge]:
    """Edges of one path producer -> ... -> consumer through virtual nodes."""
    path: list[DataEdge] = []

    def walk(current: str, acc: list[DataEdge]) -> bool:
        for edge in dag.out_edges(current):
            if edge.dst == consumer:
                path.extend(acc + [edge])
                return True
            if dag.node(edge.dst).is_virtual:
                if walk(edge.dst, acc + [edge]):
                    return True
        return False

    walk(producer, [])
    return path

"""Fig. 16 — Graph Scheduler cost vs workflow size.

§5.6 scales Genome from 10 to 200 function nodes and times the
scheduler's grouping-and-scheduling pass.  The paper observes roughly
O(n^2) growth in scheduling time, near-flat CPU utilization, and memory
starting around 24.43 MB (their figure includes the scheduler process's
resident baseline; ours reports the partition pass's allocation peak
plus the workflow representation, so absolute values are smaller but
the growth curve is the comparable part).
"""

from __future__ import annotations

import math

from ..workloads import genome
from .common import (
    ExperimentResult,
    ParallelRunner,
    make_cluster,
    make_faasflow,
)

__all__ = ["run"]

DEFAULT_SIZES = (10, 25, 50, 100, 200)


def _size_cell(task: tuple) -> tuple[float, float, int]:
    """Time the grouping pass for one workflow size (pool-shippable)."""
    size, repeats = task
    cluster = make_cluster()
    _, scheduler = make_faasflow(cluster, ship_data=True)
    best_time = math.inf
    memory_peak = 0.0
    iterations = 0
    for _ in range(repeats):
        dag = genome(nodes=size)
        # Lean-memory variant: Genome's production memory profile
        # starves the quota and stops merging after a handful of
        # iterations, which would measure an early-exit rather than
        # the algorithm.  The scalability question is how grouping
        # cost grows when the merge loop actually runs ~n times.
        for node in dag.real_nodes():
            node.memory = 64 * 1024 * 1024
        from ..dag import estimate_edge_weights

        estimate_edge_weights(dag, bandwidth=cluster.config.storage_bandwidth)
        _, _, report = scheduler.schedule(dag, force_grouping=True)
        best_time = min(best_time, report.wall_time)
        memory_peak = max(memory_peak, report.memory_peak)
        if report.grouping:
            iterations = report.grouping.iterations
    return best_time, memory_peak, iterations


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = 3,
    jobs: int = 1,
) -> ExperimentResult:
    # Unlike the simulated-time sweeps, this experiment measures real
    # wall time; with --jobs the sizes still run on separate cores, but
    # contention can inflate individual timings on small machines.
    results = ParallelRunner(jobs).map(
        _size_cell, [(size, repeats) for size in sizes]
    )
    rows = []
    times: dict[int, float] = {}
    for size, (best_time, memory_peak, iterations) in zip(sizes, results):
        times[size] = best_time
        rows.append(
            [
                size,
                round(best_time * 1000, 2),
                round(memory_peak / (1024 * 1024), 2),
                iterations,
            ]
        )
    notes = list(_growth_notes(times))
    return ExperimentResult(
        experiment="fig16",
        title="Graph Scheduler cost vs Genome size (10-200 function nodes)",
        headers=[
            "function nodes",
            "partition time (ms)",
            "memory peak (MB)",
            "iterations",
        ],
        rows=rows,
        notes=notes,
        data={"times": times},
    )


def _growth_notes(times: dict[int, float]):
    sizes = sorted(times)
    if len(sizes) >= 2:
        # Fit the asymptotic slope on the largest sizes: small workflows
        # exhaust their legal merges early, which flattens the low end.
        first, last = sizes[-2], sizes[-1]
        if times[first] > 0:
            ratio = times[last] / times[first]
            exponent = math.log(ratio) / math.log(last / first)
            yield (
                f"asymptotic growth: time ~ O(n^{exponent:.1f}) over "
                f"{first}-{last} nodes (paper: roughly O(n^2))"
            )
    yield (
        "paper: scheduler memory starts at 24.43 MB including process "
        "baseline; CPU/memory stay stable as worker count grows"
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

"""Unit tests for size/duration literal parsing."""

import pytest

from repro.wdl.units import UnitError, format_size, parse_duration, parse_size

MB = 1024.0 * 1024.0


class TestParseSize:
    @pytest.mark.parametrize(
        "literal,expected",
        [
            ("2MB", 2 * MB),
            ("2mb", 2 * MB),
            ("512KB", 512 * 1024.0),
            ("1.5GB", 1.5 * 1024**3),
            ("100B", 100.0),
            ("100", 100.0),
            ("0", 0.0),
            (" 3 MB ", 3 * MB),
        ],
    )
    def test_literals(self, literal, expected):
        assert parse_size(literal) == pytest.approx(expected)

    def test_numbers_are_bytes(self):
        assert parse_size(2048) == 2048.0
        assert parse_size(0.5) == 0.5

    @pytest.mark.parametrize("bad", ["", "MB", "2XB", "two MB", "-5MB"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(UnitError):
            parse_size(bad)

    def test_negative_number_rejected(self):
        with pytest.raises(UnitError):
            parse_size(-1)


class TestParseDuration:
    @pytest.mark.parametrize(
        "literal,expected",
        [
            ("200ms", 0.2),
            ("1.5s", 1.5),
            ("2m", 120.0),
            ("1h", 3600.0),
            ("50us", 5e-5),
            ("3", 3.0),
        ],
    )
    def test_literals(self, literal, expected):
        assert parse_duration(literal) == pytest.approx(expected)

    def test_numbers_are_seconds(self):
        assert parse_duration(2) == 2.0

    @pytest.mark.parametrize("bad", ["", "ms", "5 parsecs"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(UnitError):
            parse_duration(bad)


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (512, "512 B"),
            (2 * 1024, "2.00 KB"),
            (3 * MB, "3.00 MB"),
            (1.5 * 1024**3, "1.50 GB"),
        ],
    )
    def test_rendering(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_roundtrip(self):
        assert parse_size(format_size(7 * MB).replace(" ", "")) == 7 * MB

"""CSV export/import of run metrics.

The original artifact persists each experiment's measurements as
``.csv``/``.txt`` files that its plotting scripts consume; this module
provides the same workflow: dump a :class:`MetricsCollector` (or an
experiment result) to CSV, and load it back for offline analysis.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from .collector import (
    InvocationRecord,
    MetricsCollector,
    TransferEvent,
)

__all__ = [
    "write_invocations_csv",
    "write_transfers_csv",
    "read_invocations_csv",
    "read_transfers_csv",
    "export_metrics",
    "write_result_csv",
]

_INVOCATION_FIELDS = [
    "workflow",
    "invocation_id",
    "mode",
    "started_at",
    "finished_at",
    "status",
    "critical_path_exec",
    "cold_starts",
    "retries",
]

_TRANSFER_FIELDS = [
    "workflow",
    "invocation_id",
    "producer",
    "consumer",
    "size",
    "duration",
    "phase",
    "local",
]

PathLike = Union[str, Path]

_TRUE_STRINGS = {"true", "1", "yes", "y", "t"}
_FALSE_STRINGS = {"false", "0", "no", "n", "f", ""}


def _parse_bool(value: str) -> bool:
    """Parse a CSV boolean cell regardless of the writer's spelling.

    Accepts ``True``/``true``/``1``/``yes`` (and their negatives) so
    files edited by hand or produced by other tools round-trip instead
    of silently collapsing every row to ``False``.
    """
    text = value.strip().lower()
    if text in _TRUE_STRINGS:
        return True
    if text in _FALSE_STRINGS:
        return False
    raise ValueError(f"not a boolean CSV cell: {value!r}")


def write_invocations_csv(metrics: MetricsCollector, path: PathLike) -> int:
    """Write one row per invocation; returns the row count."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_INVOCATION_FIELDS)
        writer.writeheader()
        for record in metrics.invocations:
            writer.writerow(
                {field: getattr(record, field) for field in _INVOCATION_FIELDS}
            )
    return len(metrics.invocations)


def write_transfers_csv(metrics: MetricsCollector, path: PathLike) -> int:
    """Write one row per storage operation; returns the row count."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_TRANSFER_FIELDS)
        writer.writeheader()
        for event in metrics.transfers:
            writer.writerow(
                {field: getattr(event, field) for field in _TRANSFER_FIELDS}
            )
    return len(metrics.transfers)


def read_invocations_csv(path: PathLike) -> list[InvocationRecord]:
    """Load invocation records written by :func:`write_invocations_csv`."""
    records = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                InvocationRecord(
                    workflow=row["workflow"],
                    invocation_id=int(row["invocation_id"]),
                    mode=row["mode"],
                    started_at=float(row["started_at"]),
                    finished_at=float(row["finished_at"]),
                    status=row["status"],
                    critical_path_exec=float(row["critical_path_exec"]),
                    cold_starts=int(row["cold_starts"]),
                    # Absent in CSVs written before retries existed.
                    retries=int(row.get("retries", 0) or 0),
                )
            )
    return records


def read_transfers_csv(path: PathLike) -> list[TransferEvent]:
    """Load transfer events written by :func:`write_transfers_csv`."""
    events = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            events.append(
                TransferEvent(
                    workflow=row["workflow"],
                    invocation_id=int(row["invocation_id"]),
                    producer=row["producer"],
                    consumer=row["consumer"],
                    size=float(row["size"]),
                    duration=float(row["duration"]),
                    phase=row["phase"],
                    local=_parse_bool(row["local"]),
                )
            )
    return events


def export_metrics(
    metrics: MetricsCollector, directory: PathLike, prefix: str = "run"
) -> dict[str, Path]:
    """Dump a collector into ``<dir>/<prefix>-{invocations,transfers}.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "invocations": directory / f"{prefix}-invocations.csv",
        "transfers": directory / f"{prefix}-transfers.csv",
    }
    write_invocations_csv(metrics, paths["invocations"])
    write_transfers_csv(metrics, paths["transfers"])
    return paths


def write_result_csv(result, path: PathLike) -> int:
    """Write an :class:`~repro.experiments.ExperimentResult`'s table.

    The header row is the result's column headers; notes become
    ``# comment`` lines at the top.
    """
    with open(path, "w", newline="") as handle:
        for note in result.notes:
            # A note containing newlines must not break out of its
            # comment: every physical line gets its own "# " prefix.
            for line in str(note).splitlines() or [""]:
                handle.write(f"# {line}\n")
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return len(result.rows)

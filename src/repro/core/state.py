"""Workflow state structures (paper §3.1, Fig. 6).

Each worker engine maintains a *Workflow* structure per workflow it
hosts a sub-graph of: *FunctionInfo* (static metadata — predecessors
count, successor locations) plus per-invocation *State* (how many
predecessors have completed, whether the function has executed).  The
MasterSP baseline reuses the same structures, simply holding the whole
graph in one place.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..dag import DAGError, WorkflowDAG

__all__ = [
    "InvocationID",
    "FunctionInfo",
    "FunctionState",
    "InvocationState",
    "CompiledInvocation",
    "WorkflowStructure",
    "Placement",
    "PlacementError",
    "TRIGGERED",
    "EXECUTED",
    "new_invocation_id",
    "reset_invocation_ids",
]

# Bit flags of one function's per-invocation execution state inside a
# :class:`CompiledInvocation` flags bytearray.
TRIGGERED = 1
EXECUTED = 2

InvocationID = int

_invocation_counter = itertools.count(1)


def new_invocation_id() -> InvocationID:
    """Globally unique invocation identifier."""
    return next(_invocation_counter)


def reset_invocation_ids(base: int = 1) -> None:
    """Restart the invocation-id sequence at ``base``.

    Sharded cell execution gives every cell a disjoint, deterministic id
    range (``cell_index * stride + 1``) so invocation records come out
    identical no matter which worker process — or how many — ran the
    cell.  Never call this mid-run; ids must stay unique within a
    simulation.
    """
    global _invocation_counter
    _invocation_counter = itertools.count(base)


class PlacementError(ValueError):
    """Inconsistent function-to-worker placement."""


@dataclass(frozen=True)
class Placement:
    """Where each function of a workflow runs (partition result).

    Maps every node name (virtual nodes included — they are bookkept by
    the engine owning their step) to a worker node name.
    """

    workflow: str
    assignment: dict[str, str]
    version: int = 1

    def node_of(self, function: str) -> str:
        try:
            return self.assignment[function]
        except KeyError:
            raise PlacementError(
                f"function {function!r} has no placement in {self.workflow!r}"
            ) from None

    def functions_on(self, worker: str) -> list[str]:
        return [f for f, w in self.assignment.items() if w == worker]

    def workers(self) -> list[str]:
        return sorted(set(self.assignment.values()))

    def colocated(self, fn_a: str, fn_b: str) -> bool:
        return self.node_of(fn_a) == self.node_of(fn_b)

    def validate_against(self, dag: WorkflowDAG) -> None:
        missing = [n for n in dag.node_names if n not in self.assignment]
        if missing:
            raise PlacementError(
                f"placement for {self.workflow!r} misses nodes: {missing}"
            )

    def with_version(self, version: int) -> "Placement":
        return Placement(self.workflow, dict(self.assignment), version)


@dataclass
class FunctionInfo:
    """Static metadata the engine needs to trigger one function."""

    name: str
    predecessors_count: int
    successors: list[str]
    successor_locations: dict[str, str]  # successor -> worker node name
    is_virtual: bool
    service_time: float
    memory: float
    output_size: float
    map_factor: float

    @classmethod
    def from_dag(
        cls, dag: WorkflowDAG, placement: Placement, name: str
    ) -> "FunctionInfo":
        node = dag.node(name)
        successors = dag.successors(name)
        return cls(
            name=name,
            predecessors_count=len(dag.predecessors(name)),
            successors=successors,
            successor_locations={s: placement.node_of(s) for s in successors},
            is_virtual=node.is_virtual,
            service_time=node.service_time,
            memory=node.memory,
            output_size=node.output_size,
            map_factor=node.map_factor,
        )


@dataclass
class FunctionState:
    """Per-invocation execution state of one function."""

    predecessors_done: int = 0
    triggered: bool = False
    executed: bool = False

    def mark_predecessor_done(self) -> None:
        self.predecessors_done += 1

    def ready(self, predecessors_count: int) -> bool:
        return (
            not self.triggered
            and self.predecessors_done >= predecessors_count
        )


@dataclass
class InvocationState:
    """All function states of one invocation within one engine."""

    invocation_id: InvocationID
    functions: dict[str, FunctionState] = field(default_factory=dict)

    def state_of(self, function: str) -> FunctionState:
        state = self.functions.get(function)
        if state is None:
            state = FunctionState()
            self.functions[function] = state
        return state

    def all_executed(self, names: list[str]) -> bool:
        return all(
            self.functions.get(n) is not None and self.functions[n].executed
            for n in names
        )


class _FunctionStateView:
    """Attribute-compatible view of one function's slot in the arrays.

    Lets callers that speak the :class:`FunctionState` protocol
    (``triggered`` / ``executed`` / ``predecessors_done``) read and
    write a :class:`CompiledInvocation` without the engines' hot path
    having to allocate one object per (invocation, function).  Writes
    keep the structure's live triggered-not-executed index consistent.
    """

    __slots__ = ("_invocation", "_index")

    def __init__(self, invocation: "CompiledInvocation", index: int):
        self._invocation = invocation
        self._index = index

    @property
    def predecessors_done(self) -> int:
        return self._invocation.preds_done[self._index]

    @predecessors_done.setter
    def predecessors_done(self, value: int) -> None:
        self._invocation.preds_done[self._index] = value

    @property
    def triggered(self) -> bool:
        return bool(self._invocation.flags[self._index] & TRIGGERED)

    @triggered.setter
    def triggered(self, value: bool) -> None:
        inv = self._invocation
        if value:
            inv.flags[self._index] |= TRIGGERED
            if not inv.flags[self._index] & EXECUTED:
                inv.structure.note_triggered(inv.invocation_id, self._index)
        else:
            inv.flags[self._index] &= ~TRIGGERED
            inv.structure.note_untriggered(inv.invocation_id, self._index)

    @property
    def executed(self) -> bool:
        return bool(self._invocation.flags[self._index] & EXECUTED)

    @executed.setter
    def executed(self, value: bool) -> None:
        inv = self._invocation
        if value:
            inv.flags[self._index] |= EXECUTED
            inv.structure.note_untriggered(inv.invocation_id, self._index)
        else:
            inv.flags[self._index] &= ~EXECUTED
            if inv.flags[self._index] & TRIGGERED:
                inv.structure.note_triggered(inv.invocation_id, self._index)

    def mark_predecessor_done(self) -> None:
        self._invocation.preds_done[self._index] += 1

    def ready(self, predecessors_count: int) -> bool:
        inv = self._invocation
        return (
            not inv.flags[self._index] & TRIGGERED
            and inv.preds_done[self._index] >= predecessors_count
        )


class CompiledInvocation:
    """Array-backed per-invocation *State* of one engine's sub-graph.

    One integer and one flag byte per local function — indexed by the
    structure's dense function index — instead of a dict of
    :class:`FunctionState` objects.  ``state_of`` provides the
    name-keyed compatibility view.
    """

    __slots__ = ("invocation_id", "structure", "preds_done", "flags")

    def __init__(
        self, invocation_id: InvocationID, structure: "WorkflowStructure"
    ):
        self.invocation_id = invocation_id
        self.structure = structure
        count = len(structure.local_names)
        self.preds_done = [0] * count
        self.flags = bytearray(count)

    def state_of(self, function: str) -> _FunctionStateView:
        return _FunctionStateView(
            self, self.structure.local_index[function]
        )

    @property
    def functions(self) -> dict[str, _FunctionStateView]:
        """Name-keyed views over every local function's slot."""
        return {
            name: _FunctionStateView(self, index)
            for index, name in enumerate(self.structure.local_names)
        }


class WorkflowStructure:
    """The paper's per-worker *Workflow* structure, compiled to indices.

    Holds *FunctionInfo* for the functions this engine owns, a dense
    integer index over them (``local_index`` / per-index arrays below),
    and array-backed *State* per live invocation.  The engine releases
    an invocation's *State* at the end of the invocation (§4.2.1), and
    the whole structure is removed when its sub-graph version is
    retired.

    The compiled tables give the engines an O(1), allocation-free hot
    path:

    - ``local_index``: function name -> dense index (names only cross
      the network; indices never leave one engine);
    - ``preds_counts[i]`` / ``virtual_flags[i]``: trigger-readiness
      metadata as flat arrays;
    - ``successor_targets[i]``: pre-resolved ``(successor, worker)``
      dispatch pairs in DAG order;
    - ``_live``: the live triggered-not-executed index — crash
      collection and watchdog scans touch only in-flight work instead
      of every invocation ever seen.
    """

    def __init__(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        local_functions: list[str],
        version: int = 1,
    ):
        placement.validate_against(dag)
        unknown = [f for f in local_functions if not dag.has_node(f)]
        if unknown:
            raise DAGError(f"unknown local functions: {unknown}")
        self.workflow = dag.name
        self.dag = dag
        self.placement = placement
        self.version = version
        self.function_info: dict[str, FunctionInfo] = {
            name: FunctionInfo.from_dag(dag, placement, name)
            for name in local_functions
        }
        # -- compiled dense tables (indexed dispatch) ----------------------
        self.local_names: tuple[str, ...] = tuple(self.function_info)
        self.local_index: dict[str, int] = {
            name: index for index, name in enumerate(self.local_names)
        }
        infos = [self.function_info[name] for name in self.local_names]
        self.infos: list[FunctionInfo] = infos
        self.preds_counts: list[int] = [
            info.predecessors_count for info in infos
        ]
        self.virtual_flags: list[bool] = [info.is_virtual for info in infos]
        self.successor_targets: list[tuple[tuple[str, str], ...]] = [
            tuple(
                (successor, info.successor_locations[successor])
                for successor in info.successors
            )
            for info in infos
        ]
        self._invocations: dict[InvocationID, CompiledInvocation] = {}
        # invocation id -> set of local indices triggered but not yet
        # executed.  Kept exactly in sync with the flag bytes so crash
        # collection is O(in-flight), not O(history).
        self._live: dict[InvocationID, set[int]] = {}
        self.peak_live_invocations = 0

    @property
    def local_functions(self) -> list[str]:
        return list(self.function_info)

    def owns(self, function: str) -> bool:
        return function in self.function_info

    def info(self, function: str) -> FunctionInfo:
        try:
            return self.function_info[function]
        except KeyError:
            raise DAGError(
                f"function {function!r} is not local to this engine"
            ) from None

    def invocation(self, invocation_id: InvocationID) -> CompiledInvocation:
        state = self._invocations.get(invocation_id)
        if state is None:
            state = CompiledInvocation(invocation_id, self)
            self._invocations[invocation_id] = state
            if len(self._invocations) > self.peak_live_invocations:
                self.peak_live_invocations = len(self._invocations)
        return state

    def release_invocation(self, invocation_id: InvocationID) -> None:
        """Free the *State* arrays at the end of an invocation (§4.2.1)."""
        self._invocations.pop(invocation_id, None)
        self._live.pop(invocation_id, None)

    def invocation_items(
        self,
    ) -> list[tuple[InvocationID, CompiledInvocation]]:
        """Snapshot of the live (invocation_id, state) pairs."""
        return list(self._invocations.items())

    @property
    def live_invocations(self) -> int:
        return len(self._invocations)

    # -- live triggered-not-executed index --------------------------------
    def note_triggered(self, invocation_id: InvocationID, index: int) -> None:
        live = self._live.get(invocation_id)
        if live is None:
            self._live[invocation_id] = {index}
        else:
            live.add(index)

    def note_untriggered(
        self, invocation_id: InvocationID, index: int
    ) -> None:
        live = self._live.get(invocation_id)
        if live is not None:
            live.discard(index)
            if not live:
                del self._live[invocation_id]

    def drain_live_triggered(self) -> list[tuple[InvocationID, str]]:
        """Crash collection: reset and return all triggered-not-executed.

        Clears the ``TRIGGERED`` flag of every live entry and empties
        the index, returning ``(invocation_id, function name)`` pairs —
        ordered by trigger arrival (dict insertion) per invocation and
        ascending index within one — so the engine can re-trigger them
        on recovery.  O(in-flight tasks), not O(invocations served).
        """
        pending: list[tuple[InvocationID, str]] = []
        for invocation_id, indices in self._live.items():
            inv = self._invocations.get(invocation_id)
            if inv is None:  # pragma: no cover - index/state desync guard
                continue
            for index in sorted(indices):
                inv.flags[index] &= ~TRIGGERED
                pending.append((invocation_id, self.local_names[index]))
        self._live.clear()
        return pending

    def live_triggered(self) -> list[tuple[InvocationID, int]]:
        """Snapshot of (invocation_id, index) pairs triggered-not-executed.

        Ordered by trigger arrival (dict insertion) per invocation and
        ascending index within one, so crash collection is
        deterministic.
        """
        return [
            (invocation_id, index)
            for invocation_id, indices in self._live.items()
            for index in sorted(indices)
        ]

    @property
    def live_triggered_count(self) -> int:
        return sum(len(indices) for indices in self._live.values())

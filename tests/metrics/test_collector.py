"""Unit and property tests for metrics aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
    TransferEvent,
    percentile,
)

MB = 1024.0 * 1024.0


def record(workflow="w", inv=1, start=0.0, end=1.0, status=InvocationStatus.OK,
           critical=0.4):
    return InvocationRecord(
        workflow=workflow,
        invocation_id=inv,
        mode="worker-sp",
        started_at=start,
        finished_at=end,
        status=status,
        critical_path_exec=critical,
    )


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_p99_of_uniform(self):
        values = list(range(1, 101))
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1),
        q=st.floats(min_value=0, max_value=100),
    )
    def test_percentile_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2))
    def test_monotone_in_q(self, values):
        assert percentile(values, 10) <= percentile(values, 90)


class TestInvocationRecord:
    def test_latency_and_overhead(self):
        r = record(start=1.0, end=3.0, critical=0.5)
        assert r.latency == pytest.approx(2.0)
        assert r.scheduling_overhead == pytest.approx(1.5)

    def test_overhead_never_negative(self):
        r = record(start=0.0, end=0.3, critical=0.5)
        assert r.scheduling_overhead == 0.0


class TestCollector:
    def test_selection_by_workflow(self):
        collector = MetricsCollector()
        collector.record_invocation(record(workflow="a"))
        collector.record_invocation(record(workflow="b"))
        assert len(collector.invocations_of("a")) == 1

    def test_completed_vs_timeouts(self):
        collector = MetricsCollector()
        collector.record_invocation(record(status=InvocationStatus.OK))
        collector.record_invocation(record(status=InvocationStatus.TIMEOUT))
        assert len(collector.completed()) == 1
        assert len(collector.timeouts()) == 1

    def test_mean_latency(self):
        collector = MetricsCollector()
        collector.record_invocation(record(end=1.0))
        collector.record_invocation(record(end=3.0))
        assert collector.mean_latency() == pytest.approx(2.0)

    def test_mean_latency_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().mean_latency()

    def test_tail_latency(self):
        collector = MetricsCollector()
        for i in range(100):
            collector.record_invocation(record(inv=i, end=float(i + 1)))
        assert collector.tail_latency(q=99) == pytest.approx(99.01)

    def test_mean_scheduling_overhead_skips_timeouts(self):
        collector = MetricsCollector()
        collector.record_invocation(record(end=1.0, critical=0.4))
        collector.record_invocation(
            record(end=60.0, status=InvocationStatus.TIMEOUT)
        )
        assert collector.mean_scheduling_overhead() == pytest.approx(0.6)


class TestTransferAggregation:
    def transfer(self, inv=1, producer="p", consumer="c", size=1 * MB,
                 duration=0.5, phase="get", local=False, workflow="w"):
        return TransferEvent(
            workflow=workflow, invocation_id=inv, producer=producer,
            consumer=consumer, size=size, duration=duration, phase=phase,
            local=local,
        )

    def test_data_moved_sums_puts_and_gets(self):
        collector = MetricsCollector()
        collector.record_transfer(self.transfer(phase="put", size=2 * MB))
        collector.record_transfer(self.transfer(phase="get", size=2 * MB))
        assert collector.data_moved("w") == pytest.approx(4 * MB)

    def test_remote_data_excludes_local(self):
        collector = MetricsCollector()
        collector.record_transfer(self.transfer(local=True, size=2 * MB))
        collector.record_transfer(self.transfer(local=False, size=3 * MB))
        assert collector.remote_data_moved("w") == pytest.approx(3 * MB)

    def test_transfer_latency_per_invocation(self):
        collector = MetricsCollector()
        collector.record_transfer(self.transfer(inv=1, duration=0.5))
        collector.record_transfer(self.transfer(inv=1, duration=0.3))
        collector.record_transfer(self.transfer(inv=2, duration=1.0))
        assert collector.transfer_latency("w", 1) == pytest.approx(0.8)
        assert collector.mean_transfer_latency_per_invocation(
            "w"
        ) == pytest.approx((0.8 + 1.0) / 2)

    def test_local_fraction(self):
        collector = MetricsCollector()
        collector.record_transfer(self.transfer(local=True, size=3 * MB))
        collector.record_transfer(self.transfer(local=False, size=1 * MB))
        assert collector.local_fraction("w") == pytest.approx(0.75)

    def test_local_fraction_no_transfers(self):
        assert MetricsCollector().local_fraction("w") == 0.0

    def test_clear(self):
        collector = MetricsCollector()
        collector.record_invocation(record())
        collector.record_transfer(self.transfer())
        collector.clear()
        assert not collector.invocations
        assert not collector.transfers

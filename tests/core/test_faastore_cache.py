"""Tests for FaaStore's read-through cache and single-flight coalescing.

These mechanics are what reconcile Table 4 (fan-out objects cross the
network once per node) with Fig. 15 (the same workflow spreads over all
workers); they deserve their own scrutiny.
"""

import pytest

from repro.core import FaaStorePolicy, Placement, object_key
from repro.dag import WorkflowDAG
from repro.metrics import MetricsCollector

from .conftest import MB


def fanout_two_nodes(consumers_here=3, consumers_there=3):
    """producer on worker-0; consumers split across worker-0/worker-1."""
    dag = WorkflowDAG("fan2")
    dag.add_function("src", output_size=4 * MB)
    assignment = {"src": "worker-0"}
    for i in range(consumers_here):
        name = f"here-{i}"
        dag.add_function(name)
        dag.add_edge("src", name, data_size=4 * MB)
        assignment[name] = "worker-0"
    for i in range(consumers_there):
        name = f"there-{i}"
        dag.add_function(name)
        dag.add_edge("src", name, data_size=4 * MB)
        assignment[name] = "worker-1"
    return dag, Placement(workflow="fan2", assignment=assignment)


def make_policy(cluster):
    metrics = MetricsCollector()
    return FaaStorePolicy(cluster, metrics), metrics


def drive(env, generator):
    return env.run(until=env.process(generator))


class TestProducerSideSeeding:
    def test_mixed_consumers_put_remote_and_seed_locally(self, env, cluster):
        policy, metrics = make_policy(cluster)
        dag, placement = fanout_two_nodes()
        node = cluster.node("worker-0")
        node.set_faastore_quota(64 * MB)
        drive(env, policy.save_output(node, dag, placement, 1, "src", 0, 4 * MB))
        key = object_key("fan2", 1, "src", 0)
        # Remote put recorded (the object must be durable for worker-1)...
        puts = [t for t in metrics.transfers if t.phase == "put"]
        assert len(puts) == 1 and not puts[0].local
        # ...but worker-0's cache was seeded silently.
        assert key in node.memstore

    def test_local_consumers_hit_the_seed(self, env, cluster):
        policy, metrics = make_policy(cluster)
        dag, placement = fanout_two_nodes(consumers_here=2)
        node = cluster.node("worker-0")
        node.set_faastore_quota(64 * MB)
        drive(env, policy.save_output(node, dag, placement, 1, "src", 0, 4 * MB))
        for consumer in ("here-0", "here-1"):
            drive(
                env,
                policy.fetch_input(
                    node, dag, placement, 1, "src", consumer, 0, 4 * MB
                ),
            )
        gets = [t for t in metrics.transfers if t.phase == "get"]
        assert all(g.local for g in gets)
        # Refcount freed the seed after the last local consumer.
        assert object_key("fan2", 1, "src", 0) not in node.memstore

    def test_seed_skipped_without_quota(self, env, cluster):
        policy, _ = make_policy(cluster)
        dag, placement = fanout_two_nodes()
        node = cluster.node("worker-0")  # quota defaults to 0
        drive(env, policy.save_output(node, dag, placement, 1, "src", 0, 4 * MB))
        assert object_key("fan2", 1, "src", 0) not in node.memstore


class TestReadThrough:
    def test_remote_consumer_seeds_its_own_node(self, env, cluster):
        policy, metrics = make_policy(cluster)
        dag, placement = fanout_two_nodes(consumers_there=3)
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")
        consumer_node.set_faastore_quota(64 * MB)
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "src", 0, 4 * MB),
        )
        drive(
            env,
            policy.fetch_input(
                consumer_node, dag, placement, 1, "src", "there-0", 0, 4 * MB
            ),
        )
        # One remote get, object now cached for there-1/there-2.
        assert object_key("fan2", 1, "src", 0) in consumer_node.memstore
        drive(
            env,
            policy.fetch_input(
                consumer_node, dag, placement, 1, "src", "there-1", 0, 4 * MB
            ),
        )
        gets = [t for t in metrics.transfers if t.phase == "get"]
        assert [g.local for g in gets] == [False, True]

    def test_sole_consumer_does_not_seed(self, env, cluster):
        policy, _ = make_policy(cluster)
        dag, placement = fanout_two_nodes(consumers_there=1)
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")
        consumer_node.set_faastore_quota(64 * MB)
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "src", 0, 4 * MB),
        )
        drive(
            env,
            policy.fetch_input(
                consumer_node, dag, placement, 1, "src", "there-0", 0, 4 * MB
            ),
        )
        # Nobody else needs it here: caching would waste quota.
        assert object_key("fan2", 1, "src", 0) not in consumer_node.memstore

    def test_db_marked_producer_bypasses_cache(self, env, cluster):
        policy, metrics = make_policy(cluster)
        dag, placement = fanout_two_nodes()
        dag.node("src").metadata["storage_type"] = "DB"
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")
        for node in (producer_node, consumer_node):
            node.set_faastore_quota(64 * MB)
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "src", 0, 4 * MB),
        )
        assert object_key("fan2", 1, "src", 0) not in producer_node.memstore
        drive(
            env,
            policy.fetch_input(
                consumer_node, dag, placement, 1, "src", "there-0", 0, 4 * MB
            ),
        )
        assert object_key("fan2", 1, "src", 0) not in consumer_node.memstore
        assert all(not t.local for t in metrics.transfers)


class TestSingleFlight:
    def test_concurrent_misses_fetch_once(self, env, cluster):
        """All consumers miss simultaneously (the fan-out pattern): one
        remote fetch, the rest wait and hit the seeded cache."""
        policy, metrics = make_policy(cluster)
        dag, placement = fanout_two_nodes(consumers_there=3)
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")
        consumer_node.set_faastore_quota(64 * MB)
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "src", 0, 4 * MB),
        )
        fetches = [
            env.process(
                policy.fetch_input(
                    consumer_node, dag, placement, 1, "src", f"there-{i}",
                    0, 4 * MB,
                )
            )
            for i in range(3)
        ]
        env.run(until=env.all_of(fetches))
        gets = [t for t in metrics.transfers if t.phase == "get"]
        remote_gets = [g for g in gets if not g.local]
        assert len(remote_gets) == 1
        assert len(gets) == 3
        # Cache fully drained after the last consumer.
        assert consumer_node.memstore.key_count == 0

    def test_waiters_fall_back_when_seed_fails(self, env, cluster):
        """If the leader cannot seed (zero quota), waiters must still
        get the data — via their own remote fetches."""
        policy, metrics = make_policy(cluster)
        dag, placement = fanout_two_nodes(consumers_there=3)
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")  # quota 0
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "src", 0, 4 * MB),
        )
        fetches = [
            env.process(
                policy.fetch_input(
                    consumer_node, dag, placement, 1, "src", f"there-{i}",
                    0, 4 * MB,
                )
            )
            for i in range(3)
        ]
        env.run(until=env.all_of(fetches))
        gets = [t for t in metrics.transfers if t.phase == "get"]
        assert len(gets) == 3
        assert all(not g.local for g in gets)

    def test_inflight_slot_cleared_after_completion(self, env, cluster):
        policy, _ = make_policy(cluster)
        dag, placement = fanout_two_nodes(consumers_there=2)
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")
        consumer_node.set_faastore_quota(64 * MB)
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "src", 0, 4 * MB),
        )
        drive(
            env,
            policy.fetch_input(
                consumer_node, dag, placement, 1, "src", "there-0", 0, 4 * MB
            ),
        )
        assert policy._inflight == {}


class TestChunkedCache:
    def test_mapped_producer_chunks_cached_independently(self, env, cluster):
        dag = WorkflowDAG("mapped")
        dag.add_function("mapper", output_size=8 * MB, map_factor=4)
        dag.add_function("a")
        dag.add_function("b")
        dag.add_edge("mapper", "a", data_size=8 * MB)
        dag.add_edge("mapper", "b", data_size=8 * MB)
        placement = Placement(
            workflow="mapped",
            assignment={"mapper": "worker-0", "a": "worker-0", "b": "worker-0"},
        )
        policy, metrics = make_policy(cluster)
        node = cluster.node("worker-0")
        node.set_faastore_quota(64 * MB)
        for chunk in range(4):
            drive(
                env,
                policy.save_output(
                    node, dag, placement, 1, "mapper", chunk, 2 * MB
                ),
            )
        assert node.memstore.key_count == 4
        for consumer in ("a", "b"):
            for chunk in range(4):
                drive(
                    env,
                    policy.fetch_input(
                        node, dag, placement, 1, "mapper", consumer,
                        chunk, 2 * MB,
                    ),
                )
        assert node.memstore.key_count == 0
        assert all(t.local for t in metrics.transfers)

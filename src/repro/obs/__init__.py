"""Observability: causal spans, resource telemetry, trace exporters.

The measurement layer the paper's analysis needs (§2.3, §5): every
invocation becomes a span tree with per-stage child spans, the
simulation substrate contributes node-track spans (network transfers,
container lifecycle, FaaStore spills), and time-series samplers
snapshot per-node resources on a simulated-time cadence.  Traces export
as Chrome trace-event JSON (Perfetto / ``chrome://tracing``) and JSONL,
inspected with the ``faasflow-trace`` CLI.

Tracing is opt-in and zero-cost when disabled: producers hold the
:data:`NULL_SPANS` singleton whose methods are no-ops.
"""

from .export import (
    chrome_trace,
    export_trace,
    read_spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .sampler import (
    ResourceSampler,
    Sample,
    read_samples_csv,
    write_samples_csv,
)
from .spans import (
    BREAKDOWN_COMPONENTS,
    NULL_SPANS,
    NullSpanTracer,
    Span,
    SpanKind,
    SpanTracer,
    category_of,
    decompose,
    format_span_tree,
    span_tree,
)

__all__ = [
    "BREAKDOWN_COMPONENTS",
    "NULL_SPANS",
    "NullSpanTracer",
    "ResourceSampler",
    "Sample",
    "Span",
    "SpanKind",
    "SpanTracer",
    "category_of",
    "chrome_trace",
    "decompose",
    "export_trace",
    "format_span_tree",
    "read_samples_csv",
    "read_spans_jsonl",
    "span_tree",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_samples_csv",
    "write_spans_jsonl",
]

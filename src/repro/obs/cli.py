"""``faasflow-trace``: inspect and export trace + telemetry bundles.

Operates on a trace directory written by ``faasflow-run --trace-out``
or ``faasflow-experiment --trace-out`` (or directly on one
``*-spans.jsonl`` file)::

    faasflow-trace out/                      # summary of every bundle
    faasflow-trace out/ --tree               # span tree, first invocation
    faasflow-trace out/ --tree 42            # span tree of invocation 42
    faasflow-trace out/ --top 10             # 10 slowest function spans
    faasflow-trace out/ --nodes              # per-node utilization table
    faasflow-trace out/ --export-perfetto trace.json
    faasflow-trace out/ --validate           # CI: parse + invariant checks

Telemetry snapshots (``--telemetry-out`` output) have their own
subcommands::

    faasflow-trace report out/               # workflow/data/net/container rollup
    faasflow-trace slo out/ --latency-target 2.0 --objective 95

``--validate`` covers telemetry snapshots too (bucket-count and
window-sum invariants), so a sharded ``--telemetry-out`` bundle with no
span files still validates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .export import (
    chrome_trace,
    read_spans_jsonl,
    validate_chrome_trace,
)
from .sampler import ResourceSampler, read_samples_csv
from .spans import (
    BREAKDOWN_COMPONENTS,
    Span,
    SpanKind,
    decompose,
    format_span_tree,
)
from .telemetry import (
    LogHistogram,
    find_metrics,
    merge_snapshots,
    read_telemetry_json,
    validate_snapshot,
)

__all__ = ["main"]


def _format_table(headers, rows) -> str:
    from ..experiments.common import format_table

    return format_table(headers, rows)


class TraceBundle:
    """One run's loaded spans (+ optional samples)."""

    def __init__(self, spans_path: Path):
        self.spans_path = spans_path
        self.spans, self.meta = read_spans_jsonl(spans_path)
        self.name = spans_path.name.replace("-spans.jsonl", "")
        samples_path = spans_path.with_name(f"{self.name}-samples.csv")
        self.samples = (
            read_samples_csv(samples_path) if samples_path.exists() else []
        )

    @property
    def dropped(self) -> int:
        return self.meta.get("dropped", 0)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.kind == SpanKind.INVOCATION]

    def spans_of(self, invocation_id: int) -> list[Span]:
        return [s for s in self.spans if s.invocation_id == invocation_id]

    def breakdown(self, root: Span) -> dict[str, float]:
        end = root.end if root.end is not None else root.start
        return decompose(
            self.spans_of(root.invocation_id), (root.start, end)
        )


def _discover(path: Path, require: bool = True) -> list[TraceBundle]:
    if path.is_file():
        return [TraceBundle(path)]
    bundles = [
        TraceBundle(p) for p in sorted(path.glob("*-spans.jsonl"))
    ]
    if not bundles and require:
        raise SystemExit(
            f"error: no *-spans.jsonl files under {path} "
            "(expected a --trace-out directory or a spans JSONL file)"
        )
    return bundles


def _discover_telemetry(path: Path, require: bool = True) -> list[Path]:
    """Telemetry snapshot files under ``path`` (or ``path`` itself)."""
    if path.is_file():
        return [path]
    found = sorted(path.glob("*-telemetry.json"))
    if not found and require:
        raise SystemExit(
            f"error: no *-telemetry.json files under {path} "
            "(expected --telemetry-out output or a telemetry JSON file)"
        )
    return found


def _function_spans(bundle: TraceBundle) -> list[Span]:
    return [s for s in bundle.spans if s.kind == SpanKind.FUNCTION]


def _summary(bundle: TraceBundle, top: int) -> str:
    roots = bundle.roots()
    lines = [f"== {bundle.name} =="]
    lines.append(
        f"spans               {len(bundle.spans)}"
        + (f" ({bundle.dropped} dropped, oldest first)" if bundle.dropped else "")
    )
    statuses: dict[str, int] = {}
    for root in roots:
        status = root.attrs.get("result", root.status)
        statuses[status] = statuses.get(status, 0) + 1
    status_text = ", ".join(f"{v} {k}" for k, v in sorted(statuses.items()))
    lines.append(f"invocations         {len(roots)} ({status_text})")
    if roots:
        totals = dict.fromkeys(BREAKDOWN_COMPONENTS, 0.0)
        e2e = 0.0
        for root in roots:
            for key, value in bundle.breakdown(root).items():
                totals[key] += value
            e2e += root.duration
        lines.append("mean latency decomposition per invocation:")
        for key in BREAKDOWN_COMPONENTS:
            mean = totals[key] / len(roots) * 1000
            share = totals[key] / e2e * 100 if e2e else 0.0
            lines.append(f"  {key:<11} {mean:>10,.2f} ms  ({share:4.1f}%)")
    slowest = sorted(
        _function_spans(bundle), key=lambda s: s.duration, reverse=True
    )[:top]
    if slowest:
        lines.append(f"top {len(slowest)} slowest function spans:")
        for span in slowest:
            lines.append(
                f"  {span.duration * 1000:>10,.2f} ms  {span.function}"
                f" @{span.node}  (invocation {span.invocation_id})"
            )
    return "\n".join(lines)


def _nodes_table(bundle: TraceBundle) -> str:
    if not bundle.samples:
        return f"== {bundle.name} ==\n(no samples recorded)"
    sampler = ResourceSampler.__new__(ResourceSampler)
    sampler.samples = bundle.samples
    rows = sampler.node_table()
    return f"== {bundle.name} ==\n" + _format_table(
        ResourceSampler.NODE_TABLE_HEADERS, rows
    )


def _load_snapshots(path: Path, merge: bool) -> list[tuple[str, dict]]:
    """(name, snapshot) pairs from a path; one merged pair if ``merge``."""
    files = _discover_telemetry(path)
    named = [
        (p.name.replace("-telemetry.json", ""), read_telemetry_json(p))
        for p in files
    ]
    if merge and len(named) > 1:
        return [("merged", merge_snapshots(snap for _n, snap in named))]
    return named


def _pair_histogram(snapshot: dict, name: str, **labels) -> LogHistogram:
    hist = LogHistogram()
    for entry in find_metrics(snapshot, name, **labels):
        hist.merge(LogHistogram.from_dict(entry))
    return hist


def _counter_total(snapshot: dict, name: str, **labels) -> float:
    return sum(e["total"] for e in find_metrics(snapshot, name, **labels))


def _format_report(name: str, snapshot: dict) -> str:
    lines = [f"== {name} =="]
    # Per-(tenant, workflow, engine) rollup off the engine emits.
    groups: list[tuple[str, str, str]] = []
    for entry in find_metrics(snapshot, "workflow.latency"):
        labels = entry["labels"]
        key = (
            labels.get("tenant", "default"),
            labels.get("workflow", ""),
            labels.get("engine", ""),
        )
        if key not in groups:
            groups.append(key)
    rows = []
    for tenant, workflow, engine in sorted(groups):
        sel = dict(tenant=tenant, workflow=workflow, engine=engine)
        hist = _pair_histogram(snapshot, "workflow.latency", **sel)
        total = 0
        errors = 0
        for entry in find_metrics(snapshot, "workflow.invocations", **sel):
            count = int(entry["total"])
            total += count
            if entry["labels"].get("status", "ok") != "ok":
                errors += count
        rows.append(
            [
                tenant,
                workflow,
                engine,
                total,
                errors,
                hist.mean * 1000,
                hist.quantile(50) * 1000 if hist.count else 0.0,
                hist.quantile(99) * 1000 if hist.count else 0.0,
                int(_counter_total(snapshot, "workflow.cold_starts", **sel)),
                int(_counter_total(snapshot, "workflow.retries", **sel)),
            ]
        )
    if rows:
        lines.append(
            _format_table(
                [
                    "tenant", "workflow", "engine", "invocations", "errors",
                    "mean (ms)", "p50 (ms)", "p99 (ms)", "cold", "retries",
                ],
                rows,
            )
        )
    else:
        lines.append("(no workflow invocations recorded)")
    data_bytes = _counter_total(snapshot, "data.bytes")
    if data_bytes:
        local = _counter_total(snapshot, "data.bytes", local="local")
        spills = _counter_total(snapshot, "data.spills")
        lines.append(
            f"data plane          {data_bytes / 1e6:,.2f} MB moved "
            f"({local / data_bytes * 100:.0f}% node-local, "
            f"{int(spills)} spills)"
        )
    net_bytes = _counter_total(snapshot, "net.bytes")
    if net_bytes:
        kinds = sorted(
            {
                e["labels"].get("kind", "")
                for e in find_metrics(snapshot, "net.bytes")
            }
        )
        by_kind = ", ".join(
            f"{kind} {_counter_total(snapshot, 'net.bytes', kind=kind) / 1e6:,.2f} MB"
            for kind in kinds
        )
        transfers = int(_counter_total(snapshot, "net.transfers"))
        lines.append(
            f"network             {net_bytes / 1e6:,.2f} MB over "
            f"{transfers} transfers ({by_kind})"
        )
    cold = int(_counter_total(snapshot, "container.cold_starts"))
    warm = int(_counter_total(snapshot, "container.warm_reuses"))
    if cold or warm:
        evict = int(_counter_total(snapshot, "container.evictions"))
        crash = int(_counter_total(snapshot, "container.crashes"))
        lines.append(
            f"containers          {cold} cold starts, {warm} warm reuses, "
            f"{evict} evictions, {crash} crashes"
        )
    return "\n".join(lines)


def _windows_timeline(snapshot: dict) -> str:
    """Invocations per simulated-time window (engine status counters)."""
    windows: dict[int, float] = {}
    for entry in find_metrics(snapshot, "workflow.invocations"):
        for window, value in entry.get("windows", {}).items():
            windows[int(window)] = windows.get(int(window), 0.0) + value
    if not windows:
        return "(no windowed invocation data)"
    width = float(snapshot.get("window", 1.0))
    peak = max(windows.values())
    lines = ["simulated-time invocation rate:"]
    for index in sorted(windows):
        count = windows[index]
        bar = "#" * max(1, int(round(count / peak * 40)))
        lines.append(
            f"  [{index * width:>8.1f}s) {int(count):>6}  {bar}"
        )
    return "\n".join(lines)


def _report_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="faasflow-trace report",
        description="Roll up telemetry snapshots: per-tenant/workflow "
        "latency sketches, data-plane and network totals, container "
        "lifecycle counts.",
    )
    parser.add_argument(
        "path", help="--telemetry-out output (directory or .json file)"
    )
    parser.add_argument(
        "--merge", action="store_true",
        help="merge every discovered snapshot into one report",
    )
    parser.add_argument(
        "--windows", action="store_true",
        help="also print the per-window invocation-rate timeline",
    )
    args = parser.parse_args(argv)
    for name, snapshot in _load_snapshots(Path(args.path), args.merge):
        print(_format_report(name, snapshot))
        if args.windows:
            print(_windows_timeline(snapshot))
        print()
    return 0


def _slo_main(argv: list[str]) -> int:
    from .slo import SLOTarget, SLOTracker, load_targets

    parser = argparse.ArgumentParser(
        prog="faasflow-trace slo",
        description="Evaluate per-tenant/per-workflow SLO targets "
        "(latency attainment, error rate, burn rate) against telemetry "
        "snapshots.",
    )
    parser.add_argument(
        "path", help="--telemetry-out output (directory or .json file)"
    )
    parser.add_argument(
        "--latency-target", type=float, default=None, metavar="SEC",
        help="wildcard latency target in seconds (applies to every "
        "(tenant, workflow) pair without a more specific target)",
    )
    parser.add_argument(
        "--objective", type=float, default=95.0, metavar="PCT",
        help="percent of invocations that must attain the latency "
        "target (default 95)",
    )
    parser.add_argument(
        "--error-budget", type=float, default=0.01, metavar="FRAC",
        help="allowed fraction of failed invocations (default 0.01)",
    )
    parser.add_argument(
        "--targets", metavar="FILE", default=None,
        help="JSON file of per-(tenant, workflow) SLO targets",
    )
    parser.add_argument(
        "--merge", action="store_true",
        help="merge every discovered snapshot before evaluating",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any target is burning over budget",
    )
    args = parser.parse_args(argv)
    targets = []
    if args.targets:
        targets.extend(load_targets(args.targets))
    if args.latency_target is not None:
        targets.append(
            SLOTarget(
                latency_target=args.latency_target,
                objective=args.objective,
                error_budget=args.error_budget,
            )
        )
    if not targets:
        raise SystemExit(
            "error: no SLO targets (pass --latency-target and/or --targets)"
        )
    tracker = SLOTracker(targets)
    violated = 0
    for name, snapshot in _load_snapshots(Path(args.path), args.merge):
        reports = tracker.evaluate(snapshot)
        print(f"== {name} ==")
        if not reports:
            print("(no (tenant, workflow) pairs with latency data)")
            print()
            continue
        rows = []
        for report in reports:
            if not report.met:
                violated += 1
            rows.append(
                [
                    report.tenant,
                    report.workflow,
                    f"{report.target.latency_target * 1000:,.0f}ms"
                    f"@p{report.target.objective:g}",
                    report.invocations,
                    f"{report.attainment * 100:.1f}%",
                    f"{report.error_rate * 100:.2f}%",
                    f"{report.p99 * 1000:,.1f}",
                    f"{report.burn_rate:.2f}",
                    "OK" if report.met else "BURNING",
                ]
            )
        print(
            _format_table(
                [
                    "tenant", "workflow", "target", "invocations",
                    "attainment", "errors", "p99 (ms)", "burn", "status",
                ],
                rows,
            )
        )
        print()
    return 1 if args.strict and violated else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] == "slo":
        return _slo_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="faasflow-trace",
        description="Summarize, inspect, validate, and export trace "
        "bundles (subcommands: report, slo for telemetry snapshots).",
    )
    parser.add_argument(
        "path", help="trace directory (--trace-out output) or a spans.jsonl"
    )
    parser.add_argument(
        "--tree", nargs="?", const=-1, type=int, metavar="INV",
        help="print a span tree (of invocation INV, default the first)",
    )
    parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="N slowest function spans in the summary (default 5)",
    )
    parser.add_argument(
        "--nodes", action="store_true",
        help="per-node utilization table from the resource samples",
    )
    parser.add_argument(
        "--export-perfetto", metavar="OUT",
        help="write a merged Chrome trace-event JSON for Perfetto",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check every bundle parses and its spans are well-nested",
    )
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.path)
        if path.is_file() and path.name.endswith("-telemetry.json"):
            bundles = []
            telemetry_files = [path]
        else:
            bundles = _discover(path, require=False)
            telemetry_files = (
                _discover_telemetry(path, require=False)
                if path.is_dir()
                else []
            )
        if not bundles and not telemetry_files:
            raise SystemExit(
                f"error: nothing to validate under {args.path} "
                "(no *-spans.jsonl or *-telemetry.json files)"
            )
        failures = 0
        for bundle in bundles:
            document = chrome_trace(bundle.spans, samples=bundle.samples)
            problems = validate_chrome_trace(document)
            trace_path = bundle.spans_path.with_name(
                f"{bundle.name}-trace.json"
            )
            if trace_path.exists():
                problems += validate_chrome_trace(
                    json.loads(trace_path.read_text())
                )
            if problems:
                failures += 1
                print(f"INVALID {bundle.name}:")
                for problem in problems[:10]:
                    print(f"  - {problem}")
            else:
                print(
                    f"ok {bundle.name}: {len(bundle.spans)} spans, "
                    f"{len(bundle.roots())} invocations, well-nested"
                )
        for telemetry_path in telemetry_files:
            name = telemetry_path.name.replace("-telemetry.json", "")
            try:
                snapshot = read_telemetry_json(telemetry_path)
                problems = validate_snapshot(snapshot)
            except (json.JSONDecodeError, OSError) as error:
                problems = [str(error)]
                snapshot = {"metrics": []}
            if problems:
                failures += 1
                print(f"INVALID {name} (telemetry):")
                for problem in problems[:10]:
                    print(f"  - {problem}")
            else:
                print(
                    f"ok {name}: {len(snapshot['metrics'])} metric "
                    f"series, invariants hold"
                )
        return 1 if failures else 0

    bundles = _discover(Path(args.path))

    if args.export_perfetto:
        spans: list[Span] = []
        samples = []
        dropped = 0
        for bundle in bundles:
            spans.extend(bundle.spans)
            samples.extend(bundle.samples)
            dropped += bundle.dropped
        document = chrome_trace(spans, samples=samples, dropped=dropped)
        Path(args.export_perfetto).write_text(json.dumps(document))
        print(
            f"wrote {args.export_perfetto}: {len(spans)} spans from "
            f"{len(bundles)} bundle(s) — open at https://ui.perfetto.dev"
        )
        return 0

    if args.tree is not None:
        bundle = bundles[0]
        roots = bundle.roots()
        if not roots:
            print("no invocations in trace")
            return 1
        invocation_id = (
            roots[0].invocation_id if args.tree == -1 else args.tree
        )
        spans = bundle.spans_of(invocation_id)
        if not spans:
            known = ", ".join(str(r.invocation_id) for r in roots[:20])
            print(
                f"no spans for invocation {invocation_id} "
                f"(known invocations: {known})"
            )
            return 1
        print(f"invocation {invocation_id} ({bundle.name}):")
        print(format_span_tree(spans))
        return 0

    if args.nodes:
        for bundle in bundles:
            print(_nodes_table(bundle))
            print()
        return 0

    for bundle in bundles:
        print(_summary(bundle, args.top))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into head/less and the reader left; not an error.
        sys.exit(0)

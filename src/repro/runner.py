"""``faasflow-run``: execute a workflow definition end-to-end.

The front door for trying the system on your own workflow::

    faasflow-run my-workflow.yaml --invocations 20
    faasflow-run my-workflow.yaml --engine master --open-loop 6
    faasflow-run Cyc --trace --prewarm

The positional argument is a WDL YAML file or the name/abbreviation of
a built-in benchmark.  By default the workflow runs on FaaSFlow
(WorkerSP + FaaStore) through the full scheduler feedback loop; pass
``--engine master`` for the HyperFlow-serverless baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .clients import run_closed_loop, run_open_loop
from .core import (
    EngineConfig,
    FaaSFlowSystem,
    FaultInjector,
    GraphScheduler,
    HyperFlowServerlessSystem,
    Tracer,
    hash_partition,
)
from .sim import Cluster, ClusterConfig, Environment, MB
from .wdl import WDLError, load_workflow
from .workloads import ALL_BENCHMARKS, build

__all__ = ["main", "run_workflow", "RunSummary"]


class RunSummary(dict):
    """Result of one ``run_workflow`` call (a dict with attribute sugar)."""

    def __getattr__(self, name):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


def _load_dag(source: str):
    path = Path(source)
    if path.exists():
        return load_workflow(path)
    try:
        return build(source)
    except KeyError:
        raise SystemExit(
            f"error: {source!r} is neither a readable WDL file nor a "
            f"benchmark name (choose from {ALL_BENCHMARKS})"
        )


def run_workflow(
    dag,
    engine: str = "worker",
    invocations: int = 10,
    workers: int = 7,
    bandwidth_mb: float = 50.0,
    open_loop_rate: float | None = None,
    prewarm: bool = False,
    ship_data: bool = True,
    trace: bool = False,
    feedback: bool = True,
    fault_rate: float = 0.0,
    max_retries: int = 2,
    seed: int = 13,
) -> RunSummary:
    """Run ``dag`` and return a summary of what happened."""
    if engine not in ("worker", "master"):
        raise ValueError("engine must be 'worker' or 'master'")
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(workers=workers, storage_bandwidth=bandwidth_mb * MB),
    )
    tracer = Tracer() if trace else None
    faults = (
        FaultInjector(default_rate=fault_rate, seed=seed)
        if fault_rate > 0
        else None
    )
    config = EngineConfig(ship_data=ship_data, max_retries=max_retries)
    if engine == "master":
        system = HyperFlowServerlessSystem(
            cluster, config, tracer=tracer, faults=faults
        )
        system.register(dag, hash_partition(dag, cluster.worker_names()))
    else:
        system = FaaSFlowSystem(cluster, config, tracer=tracer, faults=faults)
        scheduler = GraphScheduler(cluster)
        placement, quotas, _ = scheduler.schedule(dag)
        system.deploy(dag, placement, quotas=quotas, prewarm=1 if prewarm else 0)
        if feedback:
            run_closed_loop(system, dag.name, 2)
            scheduler.absorb_feedback(dag, system.metrics)
            placement, quotas, _ = scheduler.schedule(dag)
            system.deploy(
                dag,
                placement,
                quotas=quotas,
                prewarm=1 if prewarm else 0,
                container_limits=scheduler.container_limits(dag),
            )
            system.metrics.clear()
    if prewarm:
        # Let the prewarmed containers finish booting before load starts.
        env.run(until=env.now + cluster.config.container.cold_start_time + 0.01)
    if open_loop_rate is not None:
        records = run_open_loop(
            system, dag.name, invocations, open_loop_rate, seed=seed
        )
    else:
        records = run_closed_loop(system, dag.name, invocations)
    metrics = system.metrics
    latencies = sorted(r.latency for r in records)
    return RunSummary(
        workflow=dag.name,
        engine=engine,
        invocations=len(records),
        completed=len([r for r in records if r.status == "ok"]),
        timeouts=len([r for r in records if r.status == "timeout"]),
        failures=len([r for r in records if r.status == "failed"]),
        mean_latency=sum(latencies) / len(latencies),
        p50_latency=latencies[len(latencies) // 2],
        p99_latency=metrics.tail_latency(dag.name, q=99),
        mean_scheduling_overhead=(
            metrics.mean_scheduling_overhead(dag.name)
            if metrics.completed(dag.name)
            else float("nan")
        ),
        data_moved_mb=metrics.data_moved(dag.name) / len(records) / MB,
        local_fraction=metrics.local_fraction(dag.name),
        cold_starts=sum(r.cold_starts for r in records),
        records=records,
        metrics=metrics,
        tracer=tracer,
        system=system,
    )


def _format_summary(summary: RunSummary) -> str:
    lines = [
        f"workflow            {summary.workflow}",
        f"engine              {'FaaSFlow (WorkerSP+FaaStore)' if summary.engine == 'worker' else 'HyperFlow-serverless (MasterSP)'}",
        f"invocations         {summary.invocations} "
        f"({summary.completed} ok, {summary.timeouts} timed out, "
        f"{summary.failures} failed)",
        f"mean latency        {summary.mean_latency * 1000:,.1f} ms",
        f"p99 latency         {summary.p99_latency * 1000:,.1f} ms",
        f"sched overhead      {summary.mean_scheduling_overhead * 1000:,.1f} ms",
        f"data moved          {summary.data_moved_mb:,.2f} MB/invocation "
        f"({summary.local_fraction * 100:.0f}% node-local)",
        f"cold starts         {summary.cold_starts}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="faasflow-run",
        description="Run a WDL workflow (or built-in benchmark) end-to-end.",
    )
    parser.add_argument("workflow", help="WDL YAML file or benchmark name")
    parser.add_argument(
        "--engine", choices=["worker", "master"], default="worker",
        help="worker = FaaSFlow (default); master = HyperFlow-serverless",
    )
    parser.add_argument("--invocations", type=int, default=10)
    parser.add_argument("--workers", type=int, default=7)
    parser.add_argument(
        "--bandwidth", type=float, default=50.0,
        help="storage-node bandwidth in MB/s (default 50)",
    )
    parser.add_argument(
        "--open-loop", type=float, metavar="RATE", default=None,
        help="open-loop arrivals at RATE invocations/minute",
    )
    parser.add_argument(
        "--no-data", action="store_true",
        help="pre-packed inputs: skip the data plane",
    )
    parser.add_argument(
        "--no-feedback", action="store_true",
        help="stay on the hash bootstrap placement",
    )
    parser.add_argument("--prewarm", action="store_true")
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="crash each function execution with probability P",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per function task (default 2)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the first invocation's execution timeline",
    )
    parser.add_argument(
        "--csv", metavar="DIR", help="export metrics CSVs to DIR"
    )
    args = parser.parse_args(argv)
    try:
        dag = _load_dag(args.workflow)
    except WDLError as error:
        print(f"error: invalid workflow definition: {error}", file=sys.stderr)
        return 2
    summary = run_workflow(
        dag,
        engine=args.engine,
        invocations=args.invocations,
        workers=args.workers,
        bandwidth_mb=args.bandwidth,
        open_loop_rate=args.open_loop,
        prewarm=args.prewarm,
        ship_data=not args.no_data,
        trace=args.trace,
        feedback=not args.no_feedback,
        fault_rate=args.fault_rate,
        max_retries=args.max_retries,
    )
    print(_format_summary(summary))
    if args.trace and summary.tracer is not None and summary.records:
        print("\nfirst invocation timeline:")
        print(summary.tracer.timeline(summary.records[0].invocation_id))
    if args.csv:
        from .metrics.export import export_metrics

        paths = export_metrics(summary.metrics, args.csv, prefix=dag.name)
        print(f"\nmetrics exported: {paths['invocations']}, {paths['transfers']}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Tests for the faasflow-run CLI and run_workflow API."""

import math

import pytest

from repro.runner import main, run_workflow
from repro.workloads import build


class TestRunWorkflow:
    def test_worker_engine_summary(self):
        summary = run_workflow(
            build("file-processing"), invocations=3, workers=3
        )
        assert summary.workflow == "file-processing"
        assert summary.completed == 3
        assert summary.mean_latency > 0
        assert 0 <= summary.local_fraction <= 1

    def test_master_engine_summary(self):
        summary = run_workflow(
            build("file-processing"), engine="master", invocations=3, workers=3
        )
        assert summary.engine == "master"
        assert summary.completed == 3

    def test_no_data_mode_moves_nothing(self):
        summary = run_workflow(
            build("word-count"), invocations=2, ship_data=False, workers=2
        )
        assert summary.data_moved_mb == 0

    def test_open_loop_mode(self):
        summary = run_workflow(
            build("illegal-recognizer"),
            invocations=4,
            open_loop_rate=60.0,
            workers=2,
        )
        assert summary.invocations == 4

    def test_prewarm_removes_cold_starts(self):
        dag = build("illegal-recognizer")
        summary = run_workflow(
            dag, invocations=3, prewarm=True, feedback=False, workers=2
        )
        assert summary.cold_starts == 0

    def test_trace_collects_events(self):
        summary = run_workflow(
            build("word-count"), invocations=1, trace=True, workers=2
        )
        assert summary.tracer is not None
        assert summary.tracer.events

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            run_workflow(build("word-count"), engine="quantum")

    def test_feedback_improves_locality(self):
        dag_a = build("word-count")
        bootstrap = run_workflow(
            dag_a, invocations=4, feedback=False, workers=3
        )
        dag_b = build("word-count")
        fed = run_workflow(dag_b, invocations=4, feedback=True, workers=3)
        assert fed.local_fraction >= bootstrap.local_fraction


class TestCLI:
    def test_runs_benchmark_by_name(self, capsys):
        assert main(["WC", "--invocations", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "word-count" in out
        assert "mean latency" in out

    def test_runs_wdl_file(self, tmp_path, capsys):
        wdl = tmp_path / "flow.yaml"
        wdl.write_text(
            """
name: tiny
steps:
  - task: only
    service_time: 50ms
"""
        )
        assert main([str(wdl), "--invocations", "2", "--no-data"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_unknown_source_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-thing.yaml"])

    def test_invalid_wdl_returns_error_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: x\nsteps: []\n")
        assert main([str(bad)]) == 2

    def test_csv_export_flag(self, tmp_path, capsys):
        assert (
            main(
                [
                    "IR",
                    "--invocations",
                    "2",
                    "--workers",
                    "2",
                    "--csv",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "illegal-recognizer-invocations.csv").exists()

    def test_trace_flag_prints_timeline(self, capsys):
        assert main(["FP", "--invocations", "1", "--trace", "--workers", "2"]) == 0
        assert "invocation-start" in capsys.readouterr().out


class TestFaultInjection:
    def test_fault_rate_produces_failures_or_retries(self):
        from repro.core import FaultInjector
        from repro.workloads import build

        summary = run_workflow(
            build("file-processing"),
            invocations=6,
            workers=2,
            fault_rate=0.9,
            max_retries=0,
            feedback=False,
        )
        assert summary.failures > 0
        assert summary.completed + summary.failures + summary.timeouts == 6

    def test_retries_mask_moderate_faults(self):
        from repro.workloads import build

        summary = run_workflow(
            build("illegal-recognizer"),
            invocations=5,
            workers=2,
            fault_rate=0.2,
            max_retries=5,
            feedback=False,
        )
        assert summary.completed == 5

    def test_cli_fault_flag(self, capsys):
        assert (
            main(
                ["IR", "--invocations", "3", "--workers", "2",
                 "--fault-rate", "0.5", "--max-retries", "4"]
            )
            == 0
        )
        assert "failed" in capsys.readouterr().out

#!/usr/bin/env python3
"""Multi-tenant cluster: co-scheduling all 8 benchmarks with contention
constraints.

Scenario: a platform operator runs every benchmark on one shared
cluster.  Two of the workloads are known to thrash each other's caches
(the operator declares them a conflict pair, §4.1.3), and the Graph
Scheduler must pack everything while honoring capacity reservations,
per-workflow FaaStore pools, and the contention constraint.

The example prints the resulting placement map, per-node FaaStore
pools, and each workflow's mean latency while all eight run
simultaneously.

Run: ``python examples/multi_tenant_cluster.py``
"""

from collections import Counter

from repro import (
    Cluster,
    ClusterConfig,
    Environment,
    FaaSFlowSystem,
    GraphScheduler,
    MB,
)
from repro.clients import ClosedLoopClient
from repro.dag import estimate_edge_weights
from repro.workloads import ALL_BENCHMARKS, BENCHMARKS, build

INVOCATIONS = 4


def main() -> None:
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = FaaSFlowSystem(cluster)
    scheduler = GraphScheduler(cluster)

    # Operator knowledge: the HTML converter and the sentiment model
    # are both memory-bandwidth hogs — never co-locate them (cont(G),
    # paper §4.1.3).
    scheduler.declare_contention([("convert-html", "detect-sentiment")])

    print("deploying 8 workflows onto the shared 7-worker cluster...\n")
    for name in ALL_BENCHMARKS:
        dag = build(name)
        estimate_edge_weights(dag, bandwidth=cluster.config.storage_bandwidth)
        placement, quotas, report = scheduler.schedule(
            dag, force_grouping=True
        )
        system.deploy(dag, placement, quotas=quotas)
        spread = Counter(
            placement.node_of(n.name) for n in dag.real_nodes()
        )
        groups = len(report.grouping.groups) if report.grouping else 1
        print(f"  {BENCHMARKS[name].abbrev:>3}: {len(dag.real_nodes()):3d} "
              f"functions -> {groups:2d} groups on "
              f"{len(spread)} workers")

    # The contention pair must have landed apart.
    fp = system.deployed("file-processing").placement
    html_node = fp.node_of("convert-html")
    sentiment_node = fp.node_of("detect-sentiment")
    print(f"\ncontention pair: convert-html on {html_node}, "
          f"detect-sentiment on {sentiment_node} "
          f"({'OK - separated' if html_node != sentiment_node else 'VIOLATED'})")

    print("\nper-node FaaStore pools (reclaimed from containers):")
    for worker in cluster.workers:
        pool = worker.memory.reserved_by_tag("faastore-pool") / MB
        print(f"  {worker.name}: {pool:8.0f} MB")

    print(f"\nrunning all 8 workflows simultaneously "
          f"({INVOCATIONS} closed-loop invocations each)...")
    clients = {
        name: ClosedLoopClient(system, name, INVOCATIONS)
        for name in ALL_BENCHMARKS
    }
    processes = [
        env.process(client.run(), name=f"client:{name}")
        for name, client in clients.items()
    ]
    env.run(until=env.all_of(processes))
    print(f"\n{'benchmark':>10}  {'mean e2e':>10}  {'local bytes':>11}")
    for name, client in clients.items():
        warm = client.records[1:]
        mean = sum(r.latency for r in warm) / len(warm)
        local = 100 * system.metrics.local_fraction(name)
        print(f"{BENCHMARKS[name].abbrev:>10}  {mean:>8.2f} s  {local:>10.0f}%")


if __name__ == "__main__":
    main()

"""fig_scale — cluster-scale throughput sweep of the fluid network model.

Not a figure from the paper: the paper's testbed stops at 8 nodes, while
related DAG engines (DFlow; Wukong, "In Search of a Fast and Efficient
Serverless DAG Engine") evaluate at hundreds of concurrent invocations.
This sweep drives the fluid network model alone — no engines, no
containers — across cluster sizes and concurrent-flow counts and reports
how fast the simulator itself processes flow events.  It is the
experiment-harness face of ``benchmarks/test_bench_network.py``, which
additionally A/B-compares against the frozen pre-optimization model.

The workload models FaaSFlow's locality structure: the cluster is
partitioned into worker groups of ``group_size`` nodes (one deployed
workflow per group, paper §4.1), each flow moves data between two nodes
of one group, and a configurable fraction of each group's traffic aims
at the group's first node — the per-workflow collector/storage hotspot
of the paper's Figs. 12-14 regime.  ``group_size >= nodes`` collapses
the partitioning and yields uniform all-to-all traffic, the worst case
for the incremental allocator (one connected component, no route
repetition).
"""

from __future__ import annotations

import random
import time

from ..sim import Environment, MB
from .common import ExperimentResult, ParallelRunner

__all__ = [
    "run",
    "drive_network",
    "drive_network_sharded",
    "make_plan",
    "DEFAULT_NODES",
    "DEFAULT_FLOWS",
]

DEFAULT_NODES = (8, 32, 64, 128)
DEFAULT_FLOWS = (10, 100, 500, 1000)


def make_plan(
    nodes: int,
    flows: int,
    seed: int = 11,
    group_size: int = 8,
    hotspot_fraction: float = 0.3,
) -> list[tuple[float, float, int, int, float]]:
    """Generate the arrival plan: ``(gap, at, src, dst, size)`` entries.

    ``gap`` is the inter-arrival delay consumed by the serial driver's
    timeout loop; ``at`` is the same instant as an absolute timestamp
    (``at = previous at + gap``, the identical float-addition sequence the
    kernel performs when accumulating timeouts, so both representations
    land on bit-identical start times).  Pre-generating the plan keeps
    RNG consumption identical no matter which module or shard layout
    executes it.
    """
    rng = random.Random(seed)
    window = max(0.25, flows / 400.0)  # arrival burst, simulated seconds
    group_size = min(group_size, nodes)
    groups = [
        range(base, min(base + group_size, nodes))
        for base in range(0, nodes, group_size)
    ]
    plan = []
    t = 0.0
    for _ in range(flows):
        group = groups[rng.randrange(len(groups))]
        src, dst = rng.sample(group, 2)
        if rng.random() < hotspot_fraction and src != group[0]:
            dst = group[0]
        size = rng.uniform(4.0, 40.0) * MB
        gap = rng.uniform(0.0, window / flows)
        t = t + gap
        plan.append((gap, t, src, dst, size))
    return plan


def drive_network(
    network_module,
    nodes: int,
    flows: int,
    seed: int = 11,
    group_size: int = 8,
    hotspot_fraction: float = 0.3,
    bandwidth: float = 100 * MB,
    collect_records: bool = False,
    telemetry: bool = False,
) -> dict:
    """Run one sweep cell against ``network_module`` and time it.

    ``network_module`` is any module exposing the ``Network`` /
    ``NetworkConfig`` API — the live ``repro.sim.network`` or the frozen
    ``benchmarks/_seed_network.py`` baseline — so the same byte-exact
    workload drives both sides of an A/B comparison.
    """
    plan = make_plan(
        nodes, flows, seed=seed,
        group_size=group_size, hotspot_fraction=hotspot_fraction,
    )

    env = Environment()
    net = network_module.Network(env, network_module.NetworkConfig())
    registry = None
    if telemetry:
        from ..obs.telemetry import MetricsRegistry

        registry = MetricsRegistry(clock=lambda: env.now)
        net.telemetry = registry
    nics = [net.attach(f"n{i}", bandwidth) for i in range(nodes)]

    def starter(env):
        for gap, _at, src, dst, size in plan:
            yield env.timeout(gap)
            net.transfer(nics[src], nics[dst], size)

    start = time.perf_counter()
    env.process(starter(env))
    env.run()
    wall = time.perf_counter() - start
    events = 2 * flows  # one arrival + one completion rebalance each
    out = {
        "nodes": nodes,
        "flows": flows,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else float("inf"),
        "sim_makespan": env.now,
    }
    if collect_records:
        out["records"] = [
            (r.src, r.dst, r.size, r.started_at, r.finished_at, r.kind, r.tag)
            for r in net.records
        ]
    if registry is not None:
        out["telemetry"] = registry.snapshot()
    return out


def drive_network_sharded(
    nodes: int,
    flows: int,
    shards: int,
    seed: int = 11,
    group_size: int = 8,
    hotspot_fraction: float = 0.3,
    bandwidth: float = 100 * MB,
    processes: bool = True,
    strict: bool = True,
    collect_records: bool = False,
    telemetry: bool = False,
) -> dict:
    """Run one sweep cell on ``shards`` conservatively-synchronized shards.

    Uses the same byte-exact arrival plan as :func:`drive_network` but in
    its absolute-time form, executed through ``repro.sim.shard``.  The
    default partition keeps each ``group_size`` traffic group whole, so
    no flow crosses a shard boundary and records come out bit-identical
    to a single analytic run (``strict=True`` enforces exactly that).
    """
    from ..sim.shard import run_network_sharded

    plan = make_plan(
        nodes, flows, seed=seed,
        group_size=group_size, hotspot_fraction=hotspot_fraction,
    )
    names = [f"n{i}" for i in range(nodes)]
    abs_plan = [
        (at, f"n{src}", f"n{dst}", size)
        for _gap, at, src, dst, size in plan
    ]
    group_size = min(group_size, nodes)
    n_groups = -(-nodes // group_size)
    shards = min(shards, n_groups)  # a group can never straddle shards
    start = time.perf_counter()
    result = run_network_sharded(
        abs_plan,
        names,
        shards,
        bandwidth=bandwidth,
        group_size=group_size,
        processes=processes,
        strict=strict,
        telemetry=telemetry,
    )
    wall = time.perf_counter() - start
    events = 2 * flows
    out = {
        "nodes": nodes,
        "flows": flows,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else float("inf"),
        "sim_makespan": result["makespan"],
        "shards": result["shards"],
        "rounds": result["rounds"],
        "cross_flows": result["cross_flows"],
        "backend": result["backend"],
    }
    if collect_records:
        out["records"] = result["records"]
    if telemetry:
        out["telemetry"] = result["telemetry"]
    return out


def _cell(task: tuple) -> dict:
    """One sweep cell against the live network model (pool-shippable)."""
    nodes, flows, seed, telemetry = task
    from ..sim import network as live

    return drive_network(live, nodes, flows, seed=seed, telemetry=telemetry)


def run(
    nodes: tuple[int, ...] = DEFAULT_NODES,
    flows: tuple[int, ...] = DEFAULT_FLOWS,
    seed: int = 11,
    jobs: int = 1,
    shards: int = 1,
    telemetry_out: str | None = None,
) -> ExperimentResult:
    cells = [
        (n, f, seed + index)
        for index, (n, f) in enumerate(
            (n, f) for n in nodes for f in flows
        )
    ]
    telemetry = telemetry_out is not None
    if shards > 1:
        # Shard workers provide the parallelism inside each cell, so the
        # cells themselves run serially regardless of --jobs.  With
        # telemetry on, each shard collects its own registry and the
        # snapshots merge at drain (value-identical to shards=1).
        results = [
            drive_network_sharded(n, f, shards, seed=s, telemetry=telemetry)
            for n, f, s in cells
        ]
    else:
        results = ParallelRunner(jobs).map(
            _cell, [(n, f, s, telemetry) for n, f, s in cells]
        )
    if telemetry_out is not None:
        from pathlib import Path

        from ..obs.telemetry import write_telemetry_json

        directory = Path(telemetry_out)
        directory.mkdir(parents=True, exist_ok=True)
        for stats in results:
            snapshot = stats.pop("telemetry", None)
            if snapshot is not None:
                write_telemetry_json(
                    directory
                    / (
                        f"fig_scale-n{stats['nodes']}-f{stats['flows']}"
                        f"-telemetry.json"
                    ),
                    snapshot,
                )
    rows = []
    for stats in results:
        row = [
            stats["nodes"],
            stats["flows"],
            round(stats["wall_seconds"] * 1000, 2),
            round(stats["events_per_sec"]),
            round(stats["sim_makespan"], 3),
        ]
        if shards > 1:
            row += [stats["shards"], stats["rounds"]]
        rows.append(row)
    headers = [
        "nodes",
        "flows",
        "wall (ms)",
        "events/sec",
        "sim makespan (s)",
    ]
    if shards > 1:
        headers += ["shards", "rounds"]
    return ExperimentResult(
        experiment="fig_scale",
        title="Fluid network model throughput vs cluster size x concurrent flows",
        headers=headers,
        rows=rows,
        notes=[
            "events/sec = flow arrivals + completions over real wall time; "
            "simulated results are wall-time independent",
            "A/B speedup vs the frozen pre-optimization model lives in "
            "BENCH_network.json (benchmarks/test_bench_network.py)",
        ]
        + (
            [
                "sharded cells use the analytic progress mode with "
                "conservative windows; records are bit-identical to a "
                "single analytic run (strict partition alignment)"
            ]
            if shards > 1
            else []
        ),
        data={"cells": list(results)},
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

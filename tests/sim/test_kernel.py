"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    StopProcess,
)


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=42.0).now == 42.0

    def test_timeout_advances_clock(self, env):
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5

    def test_run_until_deadline_sets_now(self, env):
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_deadline_processes_earlier_events(self, env):
        fired = []
        t = env.timeout(2.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=5.0)
        assert fired == [2.0]

    def test_run_until_past_deadline_is_noop(self, env):
        env.run(until=5.0)
        env.run(until=1.0)
        assert env.now == 5.0

    def test_back_to_back_run_until_never_rewinds(self, env):
        # Regression: a prior run(until=...) sets now to its deadline; a
        # later call with a smaller deadline must not rewind the clock or
        # disturb still-pending events.
        fired = []
        t = env.timeout(8.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=6.0)
        assert env.now == 6.0
        env.run(until=2.0)
        assert env.now == 6.0
        assert fired == []
        env.run(until=10.0)
        assert env.now == 10.0
        assert fired == [8.0]

    def test_peek_empty_queue(self, env):
        assert env.peek() == float("inf")

    def test_step_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)


class TestEvent:
    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed("payload")
        env.run()
        assert ev.processed
        assert ev.value == "payload"
        assert ev.ok is True

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_callbacks_fire_in_registration_order(self, env):
        order = []
        ev = env.event()
        ev.callbacks.append(lambda e: order.append(1))
        ev.callbacks.append(lambda e: order.append(2))
        ev.succeed()
        env.run()
        assert order == [1, 2]


class TestProcess:
    def test_simple_process_runs(self, env):
        log = []

        def proc(env):
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [1.0, 3.0]

    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return 99

        p = env.process(proc(env))
        assert env.run(until=p) == 99

    def test_process_waits_on_process(self, env):
        def child(env):
            yield env.timeout(5.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return result

        p = env.process(parent(env))
        assert env.run(until=p) == "child-result"
        assert env.now == 5.0

    def test_yield_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()

        def proc(env):
            value = yield ev
            return value

        p = env.process(proc(env))
        assert env.run(until=p) == "early"

    def test_exception_propagates_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except ValueError as error:
                return f"caught {error}"

        p = env.process(waiter(env))
        assert env.run(until=p) == "caught boom"

    def test_unhandled_crash_surfaces(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("unseen")

        env.process(failing(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_yield_non_event_rejected(self, env):
        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_stop_process_exits_early(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise StopProcess("stopped")
            yield env.timeout(100.0)  # pragma: no cover

        p = env.process(proc(env))
        assert env.run(until=p) == "stopped"
        assert env.now == 1.0

    def test_two_processes_interleave(self, env):
        log = []

        def ticker(env, name, period):
            for _ in range(3):
                yield env.timeout(period)
                log.append((name, env.now))

        env.process(ticker(env, "a", 1.0))
        env.process(ticker(env, "b", 1.5))
        env.run()
        # At t=3.0 both tick; "b" scheduled its t=3.0 timeout first
        # (at t=1.5) so same-time FIFO order puts it ahead of "a".
        assert log == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return interrupt.cause

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt("preempted")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(until=v) == "preempted"
        assert env.now == 1.0

    def test_interrupt_finished_process_rejected(self, env):
        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_ends_process(self, env):
        def victim(env):
            yield env.timeout(100.0)

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run(until=v)
        assert not v.is_alive


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1.0, "one"), env.timeout(3.0, "two")

        def proc(env):
            results = yield env.all_of([t1, t2])
            return sorted(results.values())

        p = env.process(proc(env))
        assert env.run(until=p) == ["one", "two"]
        assert env.now == 3.0

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1.0, "fast"), env.timeout(3.0, "slow")

        def proc(env):
            results = yield env.any_of([t1, t2])
            return list(results.values())

        p = env.process(proc(env))
        assert env.run(until=p) == ["fast"]
        assert env.now == 1.0

    def test_empty_all_of_fires_immediately(self, env):
        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        assert env.run(until=p) == 0.0

    def test_all_of_fails_fast(self, env):
        ev = env.event()

        def failer(env, target):
            yield env.timeout(1.0)
            target.fail(RuntimeError("dead"))

        def proc(env):
            try:
                yield env.all_of([ev, env.timeout(10.0)])
            except RuntimeError:
                return env.now

        env.process(failer(env, ev))
        p = env.process(proc(env))
        assert env.run(until=p) == 1.0


class TestRunUntilEvent:
    def test_run_until_event_returns_value(self, env):
        t = env.timeout(2.0, "done")
        assert env.run(until=t) == "done"

    def test_run_until_never_fires_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(until=ev)

    def test_run_until_failed_event_raises_its_error(self, env):
        def failer(env, target):
            yield env.timeout(1.0)
            target.fail(KeyError("missing"))

        ev = env.event()
        env.process(failer(env, ev))
        with pytest.raises(KeyError):
            env.run(until=ev)


class TestDeterminism:
    def test_same_time_events_fifo(self, env):
        order = []
        for i in range(10):
            t = env.timeout(1.0)
            t.callbacks.append(lambda e, i=i: order.append(i))
        env.run()
        assert order == list(range(10))

    def test_repeat_run_is_identical(self):
        def trace():
            env = Environment()
            log = []

            def worker(env, name):
                for i in range(5):
                    yield env.timeout(0.1 * (hash(name) % 7 + 1))
                    log.append((name, round(env.now, 6)))

            for name in ["a", "b", "c"]:
                env.process(worker(env, name))
            env.run()
            return log

        assert trace() == trace()

"""Unit and property tests for Eq. 1-2 memory reclamation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MemoryUsageHistory,
    Placement,
    ReclamationConfig,
    over_provisioned,
    per_node_quotas,
    workflow_quota,
)
from repro.dag import FunctionNode, WorkflowDAG

from .conftest import all_on

MB = 1024.0 * 1024.0


def dag_with(*nodes):
    dag = WorkflowDAG("w")
    for node in nodes:
        dag.add_node(node)
    return dag


class TestEquationOne:
    def test_basic_surplus(self):
        dag = dag_with(FunctionNode(name="f", memory=64 * MB))
        config = ReclamationConfig(container_memory=256 * MB, mu=32 * MB)
        # 256 - 64 - 32 = 160 MB.
        assert over_provisioned(dag, "f", config) == pytest.approx(160 * MB)

    def test_never_negative(self):
        dag = dag_with(FunctionNode(name="f", memory=250 * MB))
        config = ReclamationConfig(container_memory=256 * MB, mu=32 * MB)
        assert over_provisioned(dag, "f", config) == 0.0

    def test_map_factor_multiplies(self):
        dag = dag_with(FunctionNode(name="f", memory=64 * MB, map_factor=4.0))
        config = ReclamationConfig(container_memory=256 * MB, mu=32 * MB)
        assert over_provisioned(dag, "f", config) == pytest.approx(640 * MB)

    def test_virtual_nodes_contribute_nothing(self):
        dag = dag_with(FunctionNode(name="v", is_virtual=True, memory=0))
        config = ReclamationConfig()
        assert over_provisioned(dag, "v", config) == 0.0

    def test_history_overrides_declared(self):
        dag = dag_with(FunctionNode(name="f", memory=200 * MB))
        config = ReclamationConfig(container_memory=256 * MB, mu=32 * MB)
        history = MemoryUsageHistory()
        history.observe("f", 40 * MB)
        # Runtime shows only 40 MB used: 256 - 40 - 32 = 184 MB.
        assert over_provisioned(dag, "f", config, history) == pytest.approx(
            184 * MB
        )

    def test_history_keeps_high_water_mark(self):
        history = MemoryUsageHistory()
        history.observe("f", 100 * MB)
        history.observe("f", 50 * MB)
        assert history.peak("f", default=0) == pytest.approx(100 * MB)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            MemoryUsageHistory().observe("f", -1)


class TestEquationTwo:
    def test_quota_sums_nodes(self):
        dag = dag_with(
            FunctionNode(name="a", memory=64 * MB),
            FunctionNode(name="b", memory=128 * MB),
            FunctionNode(name="v", is_virtual=True, memory=0),
        )
        config = ReclamationConfig(container_memory=256 * MB, mu=32 * MB)
        # (256-64-32) + (256-128-32) = 160 + 96 = 256 MB.
        assert workflow_quota(dag, config) == pytest.approx(256 * MB)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReclamationConfig(container_memory=0)
        with pytest.raises(ValueError):
            ReclamationConfig(mu=-1)


class TestPerNodeQuotas:
    def test_split_by_placement(self):
        dag = dag_with(
            FunctionNode(name="a", memory=64 * MB),
            FunctionNode(name="b", memory=64 * MB),
        )
        placement = Placement(
            workflow="w", assignment={"a": "w0", "b": "w1"}
        )
        config = ReclamationConfig(container_memory=256 * MB, mu=32 * MB)
        quotas = per_node_quotas(dag, placement, config)
        assert quotas == {
            "w0": pytest.approx(160 * MB),
            "w1": pytest.approx(160 * MB),
        }

    def test_quotas_sum_to_workflow_quota(self):
        dag = dag_with(
            FunctionNode(name="a", memory=30 * MB),
            FunctionNode(name="b", memory=90 * MB, map_factor=3),
            FunctionNode(name="c", memory=250 * MB),
        )
        placement = Placement(
            workflow="w", assignment={"a": "w0", "b": "w0", "c": "w1"}
        )
        config = ReclamationConfig()
        quotas = per_node_quotas(dag, placement, config)
        assert sum(quotas.values()) == pytest.approx(
            workflow_quota(dag, config)
        )


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        memory=st.floats(min_value=0, max_value=300 * MB),
        mu=st.floats(min_value=0, max_value=64 * MB),
        map_factor=st.floats(min_value=1, max_value=16),
    )
    def test_reclaimed_plus_used_never_exceeds_container(
        self, memory, mu, map_factor
    ):
        """Invariant: per instance, reclaimed + working set <= Mem(v)."""
        dag = dag_with(
            FunctionNode(name="f", memory=memory, map_factor=map_factor)
        )
        config = ReclamationConfig(container_memory=256 * MB, mu=mu)
        per_instance = over_provisioned(dag, "f", config) / max(map_factor, 1)
        assert per_instance <= max(256 * MB - memory, 0.0) + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(
        peaks=st.lists(
            st.floats(min_value=0, max_value=256 * MB), min_size=1, max_size=8
        )
    )
    def test_quota_monotone_in_observed_usage(self, peaks):
        """Lower observed memory use can only grow the quota."""
        dag = WorkflowDAG("w")
        for i in range(len(peaks)):
            dag.add_function(f"f{i}", memory=256 * MB)
        config = ReclamationConfig()
        history = MemoryUsageHistory()
        for i, peak in enumerate(peaks):
            history.observe(f"f{i}", peak)
        quota = workflow_quota(dag, config, history)
        assert quota >= 0
        # Observing even lower usage can only increase the quota.
        history2 = MemoryUsageHistory()
        for i, peak in enumerate(peaks):
            history2.observe(f"f{i}", peak / 2)
        assert workflow_quota(dag, config, history2) >= quota

"""Tests for container prewarming."""

import pytest

from repro.sim.container import ContainerPool, ContainerSpec, ContainerState
from repro.sim.kernel import Environment, SimulationError
from repro.sim.resources import CPUAllocator, MemoryAccount

MB = 1024.0 * 1024.0


def make_pool(env, memory_mb=32 * 1024, **spec_kwargs):
    defaults = dict(cold_start_time=0.5, keepalive=600.0, max_per_function=10)
    defaults.update(spec_kwargs)
    spec = ContainerSpec(**defaults)
    return ContainerPool(
        env,
        "worker-0",
        CPUAllocator(env, cores=8),
        MemoryAccount(env, capacity=memory_mb * MB),
        spec,
    )


@pytest.fixture
def env():
    return Environment()


class TestPrewarm:
    def test_prewarmed_acquire_is_instant(self, env):
        pool = make_pool(env)
        assert pool.prewarm("fn", count=1) == 1
        env.run(until=env.now + 1.0)  # cold start happens off-path
        t0 = env.now
        container = env.run(until=pool.acquire("fn"))
        assert env.now == t0
        assert container.state == ContainerState.BUSY

    def test_prewarmed_container_is_not_a_cold_start_for_the_invocation(self, env):
        pool = make_pool(env)
        pool.prewarm("fn", count=1)
        env.run(until=env.now + 1.0)
        container = env.run(until=pool.acquire("fn"))
        # The runtime counts cold starts as invocations == 1.
        assert container.invocations > 1

    def test_prewarm_respects_per_function_limit(self, env):
        pool = make_pool(env, max_per_function=3)
        assert pool.prewarm("fn", count=5) == 3
        env.run(until=env.now + 1.0)
        assert pool.count("fn") == 3

    def test_prewarm_respects_memory(self, env):
        pool = make_pool(env, memory_mb=512)  # two containers
        assert pool.prewarm("fn", count=5) == 2

    def test_prewarm_serves_pending_waiter(self, env):
        pool = make_pool(env, memory_mb=512, max_per_function=1)
        first = env.run(until=pool.acquire("fn"))
        waiter = pool.acquire("fn")
        env.run(until=env.now + 0.1)
        pool.release(first)
        env.run(until=env.now + 0.1)
        assert waiter.processed  # release handed it over

    def test_negative_count_rejected(self, env):
        pool = make_pool(env)
        with pytest.raises(SimulationError):
            pool.prewarm("fn", count=-1)

    def test_zero_count_noop(self, env):
        pool = make_pool(env)
        assert pool.prewarm("fn", count=0) == 0


class TestDeployPrewarm:
    def test_deploy_prewarm_eliminates_first_cold_start(self):
        from repro.clients import run_closed_loop
        from repro.core import EngineConfig, FaaSFlowSystem, Placement
        from repro.dag import WorkflowDAG
        from repro.sim import Cluster, ClusterConfig, ContainerSpec

        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(workers=2, container=ContainerSpec(cold_start_time=0.5)),
        )
        dag = WorkflowDAG("w")
        dag.add_function("f", service_time=0.1, output_size=0)
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        system.deploy(
            dag,
            Placement(workflow="w", assignment={"f": "worker-0"}),
            prewarm=1,
        )
        env.run(until=env.now + 1.0)  # let the prewarm cold start finish
        records = run_closed_loop(system, "w", 2)
        assert all(r.cold_starts == 0 for r in records)
        assert records[0].latency < 0.5  # no cold start on the path

    def test_mapped_functions_prewarm_all_instances(self):
        from repro.core import EngineConfig, FaaSFlowSystem, Placement
        from repro.dag import WorkflowDAG
        from repro.sim import Cluster, ClusterConfig, ContainerSpec

        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(workers=1, container=ContainerSpec(cold_start_time=0.1)),
        )
        dag = WorkflowDAG("w")
        dag.add_function("mapped", service_time=0.1, map_factor=4, output_size=0)
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        system.deploy(
            dag,
            Placement(workflow="w", assignment={"mapped": "worker-0"}),
            prewarm=1,
        )
        env.run(until=env.now + 1.0)
        assert cluster.workers[0].containers.count("mapped") == 4

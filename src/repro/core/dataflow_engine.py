"""DataflowSP: function-level dataflow triggering with eager shipping.

FaaSFlow's WorkerSP decentralizes triggering to sub-graph granularity:
each worker runs one serialized engine loop that bookkeeps its local
sub-graph.  The paper's two closest descendants (DFlow, DataFlower —
see PAPERS.md) go one level further and both beat it the same way:

- **Function-level triggering.**  There is no per-node engine loop to
  serialize behind.  Every finished predecessor sends a *token*
  straight at the consumer function; the token handler that completes
  the function's input set fires it immediately.  Tokens are handled
  in parallel (:meth:`DataflowEngine._engine_step` has no lock), each
  paying only the small constant ``config.dataflow_trigger_time``.
- **Eager data shipping.**  The moment a producer writes an output
  chunk, the chunk is pushed worker-to-worker into each remote
  consumer node's FaaStore (``config.eager_ship``), so the transfer
  overlaps the rest of the upstream compute and the consumer's own
  cold start / queue wait.  By the time the consumer's last token
  lands, its inputs are usually already node-local.  Shipping is a
  pure pre-fetch: a lost or quota-refused push degrades to the normal
  read-through path, never to a wrong answer.

The engine itself is :class:`~.worker_engine.WorkerEngine` minus the
lock plus the shipping: deployment compiles the same indexed dispatch
tables (ISSUE 10) — including a precompiled per-producer ship plan —
and only the trigger paradigm (lock-free token step), the wire-level
labels, and the eager pushes differ.  Everything below the trigger
paradigm — containers, retries, straggler watchdogs, cancellation,
spans, telemetry — is the same substrate the other two engines use,
which is what makes the three-way comparison
(`faasflow-experiment fig12/fig13/dataflow`) apples-to-apples.
"""

from __future__ import annotations

from typing import Generator

from ..obs.spans import SpanKind
from ..sim import Node
from .state import InvocationID, WorkflowStructure
from .tracing import Kind
from .worker_engine import FaaSFlowSystem, WorkerEngine, _FnDispatch

__all__ = ["DataflowEngine", "DataflowSystem"]


class DataflowEngine(WorkerEngine):
    """Function-level dataflow triggering on one worker node.

    Holds the same compiled :class:`WorkflowStructure` sub-graphs as a
    WorkerSP engine (deployment is placement-driven either way), but
    consumes *tokens* instead of running a serialized engine loop: any
    number of tokens make progress in the same instant, each paying
    ``dataflow_trigger_time`` of handling cost.
    """

    _run_prefix = "dataflow"
    _local_notify_prefix = "token"
    _remote_notify_prefix = "token"
    _state_tag_prefix = "token"

    def __init__(self, system: "DataflowSystem", node: Node):
        super().__init__(system, node)
        self.tokens_received = 0  # cross-worker dataflow tokens received
        self.pushes_started = 0  # eager chunk pushes spawned

    # -- deployment ---------------------------------------------------------
    def _compile(
        self, structure: WorkflowStructure
    ) -> dict[str, _FnDispatch]:
        """Indexed dispatch plus a precompiled eager-ship plan.

        For every real producer with output and at least one remote
        data consumer, resolve once per deployment: the destination
        node objects, the consumer count per destination, the chunk
        geometry, and the push process names.  ``_ship_outputs`` then
        only walks the plan.
        """
        entries = super()._compile(structure)
        dag = structure.dag
        placement = structure.placement
        for name, entry in entries.items():
            if entry.is_virtual:
                continue
            node_meta = dag.node(name)
            if node_meta.output_size <= 0:
                continue
            if node_meta.metadata.get("storage_type") == "DB":
                continue  # Algorithm 1 marked this producer remote-only
            per_node: dict[str, int] = {}
            for consumer in dag.data_consumers(name):
                target = placement.node_of(consumer)
                if target != self.node.name:
                    per_node[target] = per_node.get(target, 0) + 1
            if not per_node:
                continue
            chunks = max(1, int(round(node_meta.map_factor)))
            entry.ship_plan = (
                tuple(
                    (
                        self.system.cluster.node(target),
                        consumers_on_node,
                        tuple(
                            f"push:{name}/{chunk}->{target}"
                            for chunk in range(chunks)
                        ),
                    )
                    for target, consumers_on_node in sorted(per_node.items())
                ),
                chunks,
                node_meta.output_size / chunks,
            )
        return entries

    # -- token handling -------------------------------------------------------
    def _engine_step(self) -> Generator:
        # Deliberately lock-free: dataflow triggering has no sub-graph
        # engine loop, so concurrent tokens never queue behind each
        # other.  This (not a smaller constant) is the structural
        # difference from WorkerSP's serialized engine step.
        yield self.env.timeout(self.system.config.dataflow_trigger_time)
        self.events_handled += 1
        self.busy_time += self.system.config.dataflow_trigger_time

    # A dataflow token is a state update by another name: one finished
    # predecessor notifying one consumer function.
    receive_token = WorkerEngine.receive_state_update
    receive_tokens = WorkerEngine.receive_state_updates

    # -- local execution -----------------------------------------------------
    def _propagate(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        entry: _FnDispatch,
        produced: bool = False,
    ) -> None:
        """Fan out tokens, eager data pushes, and sink reports.

        Pushes launch in the same atomic step as the dataflow tokens,
        but carry the *data*: one worker-to-worker transfer per (chunk,
        remote consumer node).  The tokens (1 KB) land long before the
        chunks (MBs), so a consumer that fires early coalesces on the
        in-flight push through the FaaStore single-flight map rather
        than starting a redundant remote read.
        """
        if produced:
            self._ship_outputs(structure, invocation_id, entry)
        super()._propagate(structure, invocation_id, entry, produced)

    def _ship_outputs(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        entry: _FnDispatch,
    ) -> None:
        config = self.system.config
        policy = self.system.policy
        if (
            entry.ship_plan is None
            or not config.eager_ship
            or not config.ship_data
            or not policy.supports_eager_push
        ):
            return
        plan, chunks, chunk_size = entry.ship_plan
        dag = structure.dag
        placement = structure.placement
        for dst_node, consumers_on_node, push_names in plan:
            for chunk in range(chunks):
                self.system.spawn_registered(
                    policy.eager_push(
                        self.node, dst_node, dag, placement, invocation_id,
                        entry.name, chunk, chunk_size, consumers_on_node,
                    ),
                    invocation_id,
                    name=push_names[chunk],
                )
                self.pushes_started += 1

    def _notify_remote(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        item: tuple,
    ) -> Generator:
        remote_engine, dest_structure, dest_entry, _, tag = item
        system = self.system
        sync_start = self.env.now
        yield system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            system.config.state_message_size,
            tag=tag,
        )
        spans = system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=dest_entry.name,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="token",
                dst=remote_engine.node.name,
            )
        remote_engine.tokens_received += 1
        if system.tracer is not None:
            system.trace(
                Kind.STATE_SYNC, structure.workflow, invocation_id,
                function=dest_entry.name, node=remote_engine.node.name,
                detail=f"token from {self.node.name}",
            )
        if remote_engine.down:
            remote_engine._deferred.append(
                (
                    "update", structure.workflow, structure.version,
                    invocation_id, dest_entry.name,
                )
            )
            return
        yield from remote_engine._engine_step()
        remote_engine._apply_state_update(
            dest_structure, dest_entry, invocation_id
        )

    def _notify_remote_batch(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        batch: tuple,
    ) -> Generator:
        """Batched token fan-out: one transfer, one batch of handling."""
        remote_engine, dest_structure, dest_entries, _, joined, _, tag = batch
        system = self.system
        sync_start = self.env.now
        yield system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            system.config.state_message_size * len(dest_entries),
            tag=tag,
        )
        spans = system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=dest_entries[0].name,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="token-batch",
                dst=remote_engine.node.name,
                batch=len(dest_entries),
            )
        remote_engine.tokens_received += len(dest_entries)
        if system.tracer is not None:
            system.trace(
                Kind.STATE_SYNC, structure.workflow, invocation_id,
                function=joined, node=remote_engine.node.name,
                detail=f"token batch from {self.node.name}",
            )
        if remote_engine.down:
            for dest_entry in dest_entries:
                remote_engine._deferred.append(
                    (
                        "update", structure.workflow, structure.version,
                        invocation_id, dest_entry.name,
                    )
                )
            return
        yield from remote_engine._engine_step()
        for dest_entry in dest_entries:
            remote_engine._apply_state_update(
                dest_structure, dest_entry, invocation_id
            )


class DataflowSystem(FaaSFlowSystem):
    """The DataflowSP workflow system: dataflow-triggered distributed engines.

    Client-side plumbing (deployment, versioned rollout, invocation
    lifecycle, timeout/cancellation, fault hooks) is shared with
    WorkerSP — both are placement-driven decentralized systems — but
    every engine on a worker is a :class:`DataflowEngine`, so
    triggering is function-level and outputs ship eagerly.
    """

    mode = "dataflow-sp"
    engine_label = "dataflow"
    engine_class = DataflowEngine

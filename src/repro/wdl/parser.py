"""WDL parser: YAML workflow definitions -> :class:`WorkflowDAG`.

A workflow file looks like::

    name: video-pipeline
    defaults:
      service_time: 100ms
      memory: 64MB
    steps:
      - task: split
        output_size: 4MB
      - foreach: transcode-all
        items: 8
        steps:
          - task: transcode
            service_time: 800ms
            output_size: 4MB
      - task: merge
        output_size: 8MB

The top-level ``steps`` list is an implicit sequence.  Parallel /
switch / foreach steps are bracketed by virtual start/end nodes in the
resulting DAG (paper §4.1.1): the virtual nodes do no computation and
exist so graph partitioning treats each step atomically.

Data-plane convention: a task's ``output_size`` is the object it writes
after executing; every downstream consumer fetches that object.  Edges
out of virtual nodes carry the *forwarded* size (sum of what flowed in),
so edge weights reflect what actually crosses between the functions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

import yaml

from ..dag import FunctionNode, WorkflowDAG
from .steps import (
    ForeachStep,
    ParallelStep,
    SequenceStep,
    Step,
    SwitchCase,
    SwitchStep,
    TaskStep,
    WDLError,
)
from .units import parse_duration, parse_size

__all__ = ["parse_workflow", "load_workflow", "workflow_from_dict", "WDLError"]

_STEP_KINDS = ("task", "sequence", "parallel", "switch", "foreach")

_TASK_KEYS = {"task", "service_time", "memory", "output_size", "metadata"}
_SEQUENCE_KEYS = {"sequence", "steps"}
_PARALLEL_KEYS = {"parallel", "branches"}
_SWITCH_KEYS = {"switch", "cases"}
_FOREACH_KEYS = {"foreach", "items", "steps"}


def parse_workflow(text: str) -> WorkflowDAG:
    """Parse a WDL YAML document into a workflow DAG."""
    try:
        document = yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise WDLError(f"invalid YAML: {error}") from error
    if not isinstance(document, dict):
        raise WDLError("workflow document must be a mapping")
    return workflow_from_dict(document)


def load_workflow(path: Union[str, Path]) -> WorkflowDAG:
    """Parse a WDL file from disk."""
    return parse_workflow(Path(path).read_text())


def workflow_from_dict(document: dict) -> WorkflowDAG:
    """Build a DAG from an already-loaded WDL mapping."""
    unknown = set(document) - {"name", "defaults", "steps"}
    if unknown:
        raise WDLError(f"unknown top-level keys: {sorted(unknown)}")
    name = document.get("name")
    if not isinstance(name, str) or not name:
        raise WDLError("workflow requires a non-empty 'name'")
    raw_steps = document.get("steps")
    if not isinstance(raw_steps, list) or not raw_steps:
        raise WDLError("workflow requires a non-empty 'steps' list")
    defaults = _parse_defaults(document.get("defaults") or {})
    parser = _Parser(defaults)
    top = parser.parse_sequence(f"{name}.main", raw_steps)
    builder = _Builder(name)
    builder.build(top)
    dag = builder.dag
    dag.validate()
    return dag


def _parse_defaults(raw: Any) -> dict:
    if not isinstance(raw, dict):
        raise WDLError("'defaults' must be a mapping")
    unknown = set(raw) - {"service_time", "memory", "output_size"}
    if unknown:
        raise WDLError(f"unknown keys in defaults: {sorted(unknown)}")
    return {
        "service_time": parse_duration(raw.get("service_time", 0.1)),
        "memory": parse_size(raw.get("memory", "64MB")),
        "output_size": parse_size(raw.get("output_size", 0)),
    }


class _Parser:
    """Raw YAML -> typed steps, with strict key validation."""

    def __init__(self, defaults: dict):
        self.defaults = defaults
        self._names: set[str] = set()

    def parse_sequence(self, name: str, raw_steps: Any) -> SequenceStep:
        if not isinstance(raw_steps, list) or not raw_steps:
            raise WDLError(f"sequence {name!r} requires a non-empty step list")
        steps = [self.parse_step(raw) for raw in raw_steps]
        return SequenceStep(name=name, steps=steps)

    def parse_step(self, raw: Any) -> Step:
        if not isinstance(raw, dict):
            raise WDLError(f"step must be a mapping, got {type(raw).__name__}")
        kinds = [k for k in _STEP_KINDS if k in raw]
        if len(kinds) != 1:
            raise WDLError(
                f"step must have exactly one of {_STEP_KINDS}, got {sorted(raw)}"
            )
        kind = kinds[0]
        name = raw[kind]
        if not isinstance(name, str) or not name:
            raise WDLError(f"{kind} step requires a non-empty name")
        if name in self._names:
            raise WDLError(f"duplicate step name {name!r}")
        self._names.add(name)
        handler = getattr(self, f"_parse_{kind}")
        return handler(name, raw)

    def _check_keys(self, raw: dict, allowed: set, kind: str, name: str) -> None:
        unknown = set(raw) - allowed
        if unknown:
            raise WDLError(
                f"unknown keys in {kind} step {name!r}: {sorted(unknown)}"
            )

    def _parse_task(self, name: str, raw: dict) -> TaskStep:
        self._check_keys(raw, _TASK_KEYS, "task", name)
        metadata = raw.get("metadata") or {}
        if not isinstance(metadata, dict):
            raise WDLError(f"metadata of task {name!r} must be a mapping")
        return TaskStep(
            name=name,
            service_time=parse_duration(
                raw.get("service_time", self.defaults["service_time"])
            ),
            memory=parse_size(raw.get("memory", self.defaults["memory"])),
            output_size=parse_size(
                raw.get("output_size", self.defaults["output_size"])
            ),
            metadata=dict(metadata),
        )

    def _parse_sequence(self, name: str, raw: dict) -> SequenceStep:
        self._check_keys(raw, _SEQUENCE_KEYS, "sequence", name)
        return self.parse_sequence(name, raw.get("steps"))

    def _parse_parallel(self, name: str, raw: dict) -> ParallelStep:
        self._check_keys(raw, _PARALLEL_KEYS, "parallel", name)
        branches = raw.get("branches")
        if not isinstance(branches, list) or len(branches) < 2:
            raise WDLError(
                f"parallel step {name!r} requires at least two branches"
            )
        parsed = [
            self.parse_sequence(f"{name}.branch{i}", branch)
            for i, branch in enumerate(branches)
        ]
        return ParallelStep(name=name, branches=parsed)

    def _parse_switch(self, name: str, raw: dict) -> SwitchStep:
        self._check_keys(raw, _SWITCH_KEYS, "switch", name)
        cases = raw.get("cases")
        if not isinstance(cases, list) or not cases:
            raise WDLError(f"switch step {name!r} requires a 'cases' list")
        parsed = []
        for i, case in enumerate(cases):
            if not isinstance(case, dict):
                raise WDLError(f"case {i} of switch {name!r} must be a mapping")
            unknown = set(case) - {"condition", "steps"}
            if unknown:
                raise WDLError(
                    f"unknown keys in case {i} of switch {name!r}: "
                    f"{sorted(unknown)}"
                )
            condition = case.get("condition")
            if not isinstance(condition, str) or not condition:
                raise WDLError(
                    f"case {i} of switch {name!r} requires a 'condition'"
                )
            body = self.parse_sequence(f"{name}.case{i}", case.get("steps"))
            parsed.append(SwitchCase(condition=condition, body=body))
        return SwitchStep(name=name, cases=parsed)

    def _parse_foreach(self, name: str, raw: dict) -> ForeachStep:
        self._check_keys(raw, _FOREACH_KEYS, "foreach", name)
        items = raw.get("items")
        if not isinstance(items, int) or items < 1:
            raise WDLError(
                f"foreach step {name!r} requires integer 'items' >= 1"
            )
        body = self.parse_sequence(f"{name}.body", raw.get("steps"))
        return ForeachStep(name=name, items=items, body=body)


class _Builder:
    """Typed steps -> DAG nodes/edges with forwarded data sizes."""

    def __init__(self, workflow_name: str):
        self.dag = WorkflowDAG(workflow_name)
        self._forward: dict[str, float] = {}  # virtual node -> forwarded bytes

    def build(self, top: SequenceStep) -> None:
        self._build_sequence(top, incoming=[])

    # Each builder returns the list of *exit* node names of the step.
    def _build_sequence(
        self, step: SequenceStep, incoming: list[str]
    ) -> list[str]:
        exits = incoming
        for child in step.steps:
            exits = self._build_step(child, exits)
        return exits

    def _build_step(self, step: Step, incoming: list[str]) -> list[str]:
        if isinstance(step, TaskStep):
            return self._build_task(step, incoming)
        if isinstance(step, SequenceStep):
            return self._build_sequence(step, incoming)
        if isinstance(step, ParallelStep):
            bodies = step.branches
            meta = {}
            return self._build_fanout(step.name, "parallel", bodies, incoming, meta)
        if isinstance(step, SwitchStep):
            bodies = [case.body for case in step.cases]
            meta = {"conditions": [case.condition for case in step.cases]}
            return self._build_fanout(step.name, "switch", bodies, incoming, meta)
        if isinstance(step, ForeachStep):
            return self._build_foreach(step, incoming)
        raise WDLError(f"unsupported step type {type(step).__name__}")

    def _emitted_size(self, name: str) -> float:
        node = self.dag.node(name)
        if node.is_virtual:
            return self._forward.get(name, 0.0)
        return node.output_size

    def _connect(self, sources: list[str], dst: str) -> None:
        for src in sources:
            self.dag.add_edge(src, dst, data_size=self._emitted_size(src))

    def _build_task(
        self,
        step: TaskStep,
        incoming: list[str],
        map_factor: float = 1.0,
        step_type: str = "task",
    ) -> list[str]:
        node = self.dag.add_node(
            FunctionNode(
                name=step.name,
                service_time=step.service_time,
                memory=step.memory,
                output_size=step.output_size,
                map_factor=map_factor,
                step_type=step_type,
                metadata=dict(step.metadata),
            )
        )
        self._connect(incoming, node.name)
        return [node.name]

    def _add_virtual(self, name: str, step_type: str, metadata: dict) -> str:
        self.dag.add_node(
            FunctionNode(
                name=name,
                service_time=0.0,
                memory=0.0,
                output_size=0.0,
                is_virtual=True,
                step_type=step_type,
                metadata=dict(metadata),
            )
        )
        return name

    def _build_fanout(
        self,
        name: str,
        step_type: str,
        bodies: list[SequenceStep],
        incoming: list[str],
        metadata: dict,
    ) -> list[str]:
        start = self._add_virtual(f"{name}.start", step_type, metadata)
        self._connect(incoming, start)
        self._forward[start] = sum(
            self._emitted_size(src) for src in incoming
        )
        all_exits: list[str] = []
        for case_index, body in enumerate(bodies):
            before = set(self.dag.node_names)
            all_exits.extend(self._build_sequence(body, incoming=[start]))
            if step_type == "switch":
                # Tag every node of this arm so engines evaluating the
                # switch at runtime (EngineConfig.evaluate_switches) can
                # recognize and skip non-selected arms without any
                # cross-engine coordination.
                for node_name in self.dag.node_names:
                    if node_name not in before:
                        node = self.dag.node(node_name)
                        node.metadata["switch"] = name
                        node.metadata["switch_case"] = case_index
        end = self._add_virtual(f"{name}.end", step_type, metadata)
        self._connect(all_exits, end)
        self._forward[end] = sum(self._emitted_size(src) for src in all_exits)
        if step_type == "switch":
            self.dag.node(f"{name}.start").metadata["case_count"] = len(bodies)
        return [end]

    def _build_foreach(
        self, step: ForeachStep, incoming: list[str]
    ) -> list[str]:
        start = self._add_virtual(f"{step.name}.start", "foreach", {})
        self._connect(incoming, start)
        self._forward[start] = sum(self._emitted_size(src) for src in incoming)
        # The body's functions each carry the foreach's map factor: one
        # control-plane node, `items` data-plane executors (paper §4.1.2).
        exits = self._build_mapped_sequence(step.body, [start], float(step.items))
        end = self._add_virtual(f"{step.name}.end", "foreach", {})
        self._connect(exits, end)
        self._forward[end] = sum(self._emitted_size(src) for src in exits)
        return [end]

    def _build_mapped_sequence(
        self, seq: SequenceStep, incoming: list[str], items: float
    ) -> list[str]:
        exits = incoming
        for child in seq.steps:
            if isinstance(child, TaskStep):
                exits = self._build_task(
                    child, exits, map_factor=items, step_type="foreach"
                )
            elif isinstance(child, SequenceStep):
                exits = self._build_mapped_sequence(child, exits, items)
            else:
                raise WDLError(
                    "foreach bodies may contain only task/sequence steps, "
                    f"got {child.kind!r} ({child.name!r})"
                )
        return exits

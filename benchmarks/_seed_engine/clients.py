# FROZEN pre-PR copy for the engine-throughput A/B benchmark.
#
# Do not edit: this is the seed-side baseline that
# benchmarks/test_bench_engine.py races the live engines against.
# Imports of shared substrate (sim kernel, network, faults, policy,
# metrics) point at the live repro.* modules; the frozen modules
# (engines, state, runtime, clients) import each other relatively.

"""Invocation clients: closed-loop and open-loop load generation.

The paper measures with two client styles (§5.1):

- **Closed-loop** (§5.2, 5.3, 5.5): one client thread sends the next
  invocation only after receiving the previous one's execution state,
  so exactly one invocation is in flight.  This isolates scheduling
  overhead from queueing.
- **Open-loop** (§5.4): invocations arrive at a fixed rate regardless of
  completions, exposing queueing and cold-start effects; functions that
  exceed 60 s are marked timed-out at 60 s.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.metrics import InvocationRecord

__all__ = ["ClosedLoopClient", "OpenLoopClient", "run_closed_loop", "run_open_loop"]

# An "invoker" is any system exposing invoke(workflow) -> sim process
# generator returning an InvocationRecord (both engines qualify).
Invoker = object


class ClosedLoopClient:
    """One invocation in flight at a time."""

    def __init__(self, system: Invoker, workflow: str, invocations: int):
        if invocations < 1:
            raise ValueError("invocations must be >= 1")
        self.system = system
        self.workflow = workflow
        self.invocations = invocations
        self.records: list[InvocationRecord] = []

    def run(self) -> Generator:
        """Simulation process: the client's send-wait loop."""
        env = self.system.env
        for _ in range(self.invocations):
            record = yield env.process(self.system.invoke(self.workflow))
            self.records.append(record)
        return self.records


class OpenLoopClient:
    """Fixed-rate arrivals, optionally exponential (Poisson process)."""

    def __init__(
        self,
        system: Invoker,
        workflow: str,
        invocations: int,
        rate_per_minute: float,
        poisson: bool = True,
        seed: int = 13,
    ):
        if invocations < 1:
            raise ValueError("invocations must be >= 1")
        if rate_per_minute <= 0:
            raise ValueError("rate_per_minute must be > 0")
        self.system = system
        self.workflow = workflow
        self.invocations = invocations
        self.interval = 60.0 / rate_per_minute
        self.poisson = poisson
        self.rng = random.Random(seed)
        self.records: list[InvocationRecord] = []

    def run(self) -> Generator:
        """Simulation process: fire arrivals, then wait for stragglers."""
        env = self.system.env
        in_flight = []
        for index in range(self.invocations):
            process = env.process(
                self._tracked_invoke(), name=f"open:{self.workflow}:{index}"
            )
            in_flight.append(process)
            delay = (
                self.rng.expovariate(1.0 / self.interval)
                if self.poisson
                else self.interval
            )
            yield env.timeout(delay)
        yield env.all_of(in_flight)
        return self.records

    def _tracked_invoke(self) -> Generator:
        record = yield self.system.env.process(
            self.system.invoke(self.workflow)
        )
        self.records.append(record)


def run_closed_loop(
    system: Invoker, workflow: str, invocations: int
) -> list[InvocationRecord]:
    """Convenience: run a closed-loop client to completion."""
    client = ClosedLoopClient(system, workflow, invocations)
    return system.env.run(until=system.env.process(client.run()))


def run_open_loop(
    system: Invoker,
    workflow: str,
    invocations: int,
    rate_per_minute: float,
    poisson: bool = True,
    seed: int = 13,
) -> list[InvocationRecord]:
    """Convenience: run an open-loop client to completion."""
    client = OpenLoopClient(
        system, workflow, invocations, rate_per_minute, poisson, seed
    )
    return system.env.run(until=system.env.process(client.run()))

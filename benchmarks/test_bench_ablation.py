"""Ablation benches for the design choices DESIGN.md calls out.

Four axes, each isolating one mechanism of FaaSFlow:

1. **Partition strategy** — greedy critical-path grouping (Algorithm 1)
   vs the hash bootstrap vs no grouping at all.
2. **FaaStore on/off** — same grouped placement, storage policy
   swapped, isolating the data-locality gain from the scheduling gain.
3. **Reclamation margin mu** — Eq. 1's pessimistic safety margin: too
   large a margin starves the quota and data spills to the remote
   store.
4. **Remote-store concurrency** — how sensitive the results are to the
   database's request-level parallelism (the contention model).
"""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    GraphScheduler,
    Placement,
    ReclamationConfig,
    RemoteStorePolicy,
    hash_partition,
)
from repro.experiments.common import make_cluster
from repro.workloads import build

MB = 1024.0 * 1024.0


def _grouped_system(cluster, reclamation=None, policy=None):
    system = FaaSFlowSystem(cluster, EngineConfig(ship_data=True))
    if policy is not None:
        system.policy = policy(cluster, system.metrics)
        system.runtime.policy = system.policy
    scheduler = GraphScheduler(cluster, reclamation=reclamation)
    return system, scheduler


def _deploy_grouped(system, scheduler, dag):
    from repro.dag import estimate_edge_weights

    estimate_edge_weights(dag, bandwidth=system.cluster.config.storage_bandwidth)
    placement, quotas, _ = scheduler.schedule(dag, force_grouping=True)
    system.deploy(dag, placement, quotas=quotas)


def _mean_latency(records):
    warm = records[1:] or records
    return sum(r.latency for r in warm) / len(warm)


class TestPartitionStrategyAblation:
    def run_strategy(self, strategy: str) -> float:
        """Chain-heavy Epigenomics: read-through caching cannot help
        cross-node chain edges (single consumer), so localization — and
        therefore latency — depends on the partition strategy."""
        cluster = make_cluster()
        system, scheduler = _grouped_system(cluster)
        dag = build("epigenomics")
        if strategy == "greedy":
            _deploy_grouped(system, scheduler, dag)
        elif strategy == "hash":
            placement = hash_partition(dag, cluster.worker_names())
            _, quotas, _ = scheduler.schedule(dag)  # quotas from Eq. 2
            system.deploy(dag, placement, quotas=quotas)
        elif strategy == "singleton":
            workers = cluster.worker_names()
            assignment = {
                name: workers[i % len(workers)]
                for i, name in enumerate(dag.node_names)
            }
            system.deploy(dag, Placement(workflow=dag.name, assignment=assignment))
        return _mean_latency(run_closed_loop(system, "epigenomics", 4))

    def test_bench_greedy_beats_hash(self, benchmark):
        greedy = benchmark(self.run_strategy, "greedy")
        hash_latency = self.run_strategy("hash")
        singleton = self.run_strategy("singleton")
        assert greedy < hash_latency
        assert greedy < singleton

    def test_bench_hash_partition_cost(self, benchmark):
        dag = build("genome")
        placement = benchmark(hash_partition, dag, [f"w{i}" for i in range(7)])
        placement.validate_against(dag)


class TestFaaStoreAblation:
    def run_with_policy(self, use_faastore: bool) -> float:
        cluster = make_cluster()
        if use_faastore:
            system, scheduler = _grouped_system(cluster)
        else:
            system, scheduler = _grouped_system(
                cluster, policy=RemoteStorePolicy
            )
        dag = build("cycles")
        _deploy_grouped(system, scheduler, dag)
        return _mean_latency(run_closed_loop(system, "cycles", 4))

    def test_bench_faastore_gain_at_fixed_partition(self, benchmark):
        """Same WorkerSP engine and grouped placement; only the storage
        policy changes — the isolated FaaStore gain."""
        with_store = benchmark(self.run_with_policy, True)
        without_store = self.run_with_policy(False)
        assert with_store < without_store


class TestReclamationMarginAblation:
    def run_with_mu(self, mu: float) -> tuple[float, float]:
        cluster = make_cluster()
        reclamation = ReclamationConfig(
            container_memory=cluster.config.container.memory_limit, mu=mu
        )
        system, scheduler = _grouped_system(cluster, reclamation=reclamation)
        dag = build("epigenomics")
        _deploy_grouped(system, scheduler, dag)
        records = run_closed_loop(system, "epigenomics", 3)
        return (
            _mean_latency(records),
            system.metrics.local_fraction("epigenomics"),
        )

    def test_bench_mu_sweep(self, benchmark):
        """A huge safety margin starves the quota: locality collapses."""
        _, local_small_mu = benchmark(self.run_with_mu, 32 * MB)
        _, local_huge_mu = self.run_with_mu(144 * MB)
        assert local_small_mu > local_huge_mu

    def test_bench_zero_mu_is_most_aggressive(self, benchmark):
        _, local_zero = benchmark(self.run_with_mu, 0.0)
        _, local_default = self.run_with_mu(32 * MB)
        assert local_zero >= local_default - 1e-9


class TestStorageConcurrencyAblation:
    def run_with_db_concurrency(self, concurrency: int) -> float:
        from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

        cluster = Cluster(
            Environment(),
            ClusterConfig(
                workers=7,
                storage_bandwidth=50 * MB,
                container=ContainerSpec(cold_start_time=0.5),
                db_concurrency=concurrency,
            ),
        )
        from repro.core import HyperFlowServerlessSystem
        from repro.experiments.common import register_hyperflow

        system = HyperFlowServerlessSystem(cluster, EngineConfig(ship_data=True))
        dag = build("genome")
        register_hyperflow(system, dag)
        return _mean_latency(run_closed_loop(system, "genome", 3))

    def test_bench_db_concurrency_sensitivity(self, benchmark):
        """More store-side parallelism shortens the baseline's e2e
        latency (bursty fan-out stops queueing)."""
        serialized = benchmark(self.run_with_db_concurrency, 1)
        wide = self.run_with_db_concurrency(32)
        assert wide < serialized

"""Cross-module consistency tests: things that must agree system-wide.

These check identities between independent accounting paths — the
metrics ledger vs the network's byte counters, recorded latencies vs
physical lower bounds, determinism of whole runs — the invariants that
catch subtle double-counting or clock bugs no unit test would.
"""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    GraphScheduler,
    HyperFlowServerlessSystem,
    hash_partition,
)
from repro.sim import (
    Cluster,
    ClusterConfig,
    ContainerSpec,
    Environment,
    MB,
    NetworkConfig,
)
from repro.workloads import build


def fresh_cluster(workers=3, bandwidth=50 * MB):
    env = Environment()
    return Cluster(
        env,
        ClusterConfig(
            workers=workers,
            storage_bandwidth=bandwidth,
            container=ContainerSpec(cold_start_time=0.1),
        ),
    )


class TestPhysicalLowerBounds:
    @pytest.mark.parametrize("name", ["word-count", "file-processing"])
    def test_latency_at_least_critical_path(self, name):
        cluster = fresh_cluster()
        system = HyperFlowServerlessSystem(cluster, EngineConfig())
        dag = build(name)
        system.register(dag, hash_partition(dag, cluster.worker_names()))
        for record in run_closed_loop(system, name, 3):
            assert record.latency >= record.critical_path_exec

    def test_remote_bytes_bounded_by_nic_time(self):
        """Remote data cannot move faster than the storage NIC allows."""
        cluster = fresh_cluster(bandwidth=10 * MB)
        system = HyperFlowServerlessSystem(cluster, EngineConfig())
        dag = build("word-count")
        system.register(dag, hash_partition(dag, cluster.worker_names()))
        records = run_closed_loop(system, "word-count", 2)
        elapsed = records[-1].finished_at - records[0].started_at
        remote = system.metrics.remote_data_moved("word-count")
        assert remote <= 10 * MB * elapsed * 1.01

    def test_timestamps_are_ordered(self):
        cluster = fresh_cluster()
        system = HyperFlowServerlessSystem(cluster, EngineConfig())
        dag = build("illegal-recognizer")
        system.register(dag, hash_partition(dag, cluster.worker_names()))
        records = run_closed_loop(system, "illegal-recognizer", 4)
        for earlier, later in zip(records, records[1:]):
            assert earlier.finished_at <= later.started_at  # closed loop
            assert earlier.started_at < earlier.finished_at


class TestLedgerAgreement:
    def test_metrics_remote_bytes_match_network_storage_traffic(self):
        """The metrics ledger's remote bytes equal what the network saw
        crossing the storage node (independent accounting paths)."""
        cluster = fresh_cluster()
        system = HyperFlowServerlessSystem(cluster, EngineConfig())
        dag = build("file-processing")
        system.register(dag, hash_partition(dag, cluster.worker_names()))
        run_closed_loop(system, "file-processing", 3)
        ledger_bytes = system.metrics.remote_data_moved("file-processing")
        nic = cluster.storage_node.nic
        network_bytes = nic.bytes_received + nic.bytes_sent
        # The NIC additionally carries control messages (KBs).
        assert network_bytes == pytest.approx(ledger_bytes, rel=0.01)

    def test_local_bytes_never_touch_the_network(self):
        cluster = fresh_cluster(workers=2)
        system = FaaSFlowSystem(cluster, EngineConfig())
        scheduler = GraphScheduler(cluster)
        dag = build("word-count")
        from repro.dag import estimate_edge_weights

        estimate_edge_weights(dag, bandwidth=50 * MB)
        placement, quotas, _ = scheduler.schedule(dag, force_grouping=True)
        system.deploy(dag, placement, quotas=quotas)
        run_closed_loop(system, "word-count", 3)
        ledger_remote = system.metrics.remote_data_moved("word-count")
        nic = cluster.storage_node.nic
        network_bytes = nic.bytes_received + nic.bytes_sent
        assert network_bytes == pytest.approx(ledger_remote, rel=0.01)
        # And locality actually happened.
        assert system.metrics.local_fraction("word-count") > 0.5


class TestDeterminism:
    def _run_once(self):
        cluster = fresh_cluster()
        system = FaaSFlowSystem(cluster, EngineConfig())
        scheduler = GraphScheduler(cluster, seed=3)
        dag = build("file-processing")
        placement, quotas, _ = scheduler.schedule(dag)
        system.deploy(dag, placement, quotas=quotas)
        records = run_closed_loop(system, "file-processing", 4)
        return [round(r.latency, 12) for r in records]

    def test_whole_runs_are_bit_identical(self):
        assert self._run_once() == self._run_once()

    def _run_system(self, incremental):
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=3,
                storage_bandwidth=50 * MB,
                container=ContainerSpec(cold_start_time=0.1),
                network=NetworkConfig(incremental=incremental),
            ),
        )
        system = FaaSFlowSystem(cluster, EngineConfig())
        scheduler = GraphScheduler(cluster, seed=3)
        dag = build("file-processing")
        placement, quotas, _ = scheduler.schedule(dag)
        system.deploy(dag, placement, quotas=quotas)
        records = run_closed_loop(system, "file-processing", 4)
        return (
            [(r.started_at, r.finished_at, r.latency) for r in records],
            cluster.network.total_bytes,
            cluster.total_data_moved,
        )

    def test_incremental_network_matches_full_recompute(self):
        """Component-local rebalancing is an optimization, not a model
        change: a whole system run must be bit-identical either way."""
        assert self._run_system(True) == self._run_system(False)

    def test_scheduler_seed_changes_bootstrap_only_randomness(self):
        cluster_a = fresh_cluster()
        cluster_b = fresh_cluster()
        dag_a = build("genome")
        dag_b = build("genome")
        from repro.dag import estimate_edge_weights

        for dag in (dag_a, dag_b):
            estimate_edge_weights(dag, bandwidth=50 * MB)
        p_a, _, _ = GraphScheduler(cluster_a, seed=1).schedule(
            dag_a, force_grouping=True
        )
        p_b, _, _ = GraphScheduler(cluster_b, seed=1).schedule(
            dag_b, force_grouping=True
        )
        assert p_a.assignment == p_b.assignment


class TestResourceHygiene:
    def test_no_leaked_cpu_or_state_after_runs(self):
        cluster = fresh_cluster()
        system = FaaSFlowSystem(cluster, EngineConfig())
        dag = build("file-processing")
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        run_closed_loop(system, "file-processing", 5)
        for worker in cluster.workers:
            assert worker.cpu.busy == 0
        for engine in system.engines.values():
            for structure in engine._structures.values():
                assert structure.live_invocations == 0

    def test_memstore_drains_after_invocations(self):
        cluster = fresh_cluster(workers=2)
        system = FaaSFlowSystem(cluster, EngineConfig())
        scheduler = GraphScheduler(cluster)
        dag = build("word-count")
        from repro.dag import estimate_edge_weights

        estimate_edge_weights(dag, bandwidth=50 * MB)
        placement, quotas, _ = scheduler.schedule(dag, force_grouping=True)
        system.deploy(dag, placement, quotas=quotas)
        run_closed_loop(system, "word-count", 3)
        for worker in cluster.workers:
            assert worker.memstore.key_count == 0
            assert worker.memstore.used == pytest.approx(0.0, abs=1.0)

    def test_remote_store_cleaned_after_invocations(self):
        cluster = fresh_cluster()
        system = HyperFlowServerlessSystem(cluster, EngineConfig())
        dag = build("file-processing")
        system.register(dag, hash_partition(dag, cluster.worker_names()))
        run_closed_loop(system, "file-processing", 3)
        assert cluster.remote_store.key_count == 0

"""Conservative shard runtime: protocol, partitioning, and exactness.

The network exactness tests drive the same absolute-time transfer plan
through one analytic environment and through S shard environments under
the barrier protocol, and require the merged records to be
bit-identical.  The relay tests exercise the reactive path — messages
crossing shards mid-run through conservative windows — and pin hop
timestamps against a single-environment reference.
"""

import math

import pytest

from repro.experiments.fig_scale import make_plan
from repro.sim.kernel import Environment, SimulationError
from repro.sim.network import MB
from repro.sim.shard import (
    DEFAULT_LOOKAHEAD,
    ShardAPI,
    ShardCoordinator,
    partition_nodes,
    run_network_single,
    run_network_sharded,
)

INF = float("inf")


def _abs_plan(nodes: int, flows: int, seed: int):
    plan = make_plan(nodes, flows, seed=seed)
    names = [f"n{i}" for i in range(nodes)]
    return (
        [(at, f"n{s}", f"n{d}", size) for _gap, at, s, d, size in plan],
        names,
    )


class TestPartitionNodes:
    def test_even_split(self):
        parts = partition_nodes([f"n{i}" for i in range(8)], 4)
        assert parts == [
            ["n0", "n1"], ["n2", "n3"], ["n4", "n5"], ["n6", "n7"]
        ]

    def test_remainder_goes_to_leading_shards(self):
        parts = partition_nodes([f"n{i}" for i in range(10)], 4)
        assert [len(p) for p in parts] == [3, 3, 2, 2]

    def test_groups_never_straddle_shards(self):
        names = [f"n{i}" for i in range(48)]
        parts = partition_nodes(names, 5, group_size=4)
        for part in parts:
            assert len(part) % 4 == 0
        # Order and membership preserved.
        assert [n for p in parts for n in p] == names

    def test_too_many_shards_raises(self):
        with pytest.raises(SimulationError):
            partition_nodes(["a", "b", "c"], 2, group_size=3)

    def test_bad_arguments_raise(self):
        with pytest.raises(SimulationError):
            partition_nodes(["a"], 0)
        with pytest.raises(SimulationError):
            partition_nodes(["a"], 1, group_size=0)


class TestShardAPI:
    def test_default_timestamp_is_lookahead_away(self):
        env = Environment()
        api = ShardAPI(env, 0, 0.5)
        api.send(1, "hello")
        assert api._outbox == [(1, 0.5, "hello")]

    def test_lookahead_violation_raises(self):
        env = Environment()
        api = ShardAPI(env, 0, 0.5)
        with pytest.raises(SimulationError):
            api.send(1, "too soon", ts=0.4)

    def test_explicit_legal_timestamp(self):
        env = Environment()
        api = ShardAPI(env, 0, 0.5)
        api.send(1, "later", ts=2.0)
        assert api._outbox == [(1, 2.0, "later")]


class TestScheduleAt:
    def test_fires_at_exact_time(self):
        env = Environment()
        fired = []
        event = env.schedule_at(1.25, value="x")
        event.callbacks.append(lambda e: fired.append((env.now, e._value)))
        env.run()
        assert fired == [(1.25, "x")]

    def test_past_time_raises(self):
        env = Environment()
        env.run(until=2.0)
        with pytest.raises(SimulationError):
            env.schedule_at(1.0)

    def test_peek_sees_scheduled_time(self):
        env = Environment()
        env.schedule_at(3.5)
        assert env.peek() == 3.5


class TestCoordinatorValidation:
    def test_no_programs_raises(self):
        with pytest.raises(SimulationError):
            ShardCoordinator([])

    def test_nonpositive_lookahead_raises(self):
        with pytest.raises(SimulationError):
            ShardCoordinator([(lambda e, a, p: None, {})], lookahead=0.0)


class TestAlignedNetworkExactness:
    """Partition aligned on traffic-group boundaries: zero cross-shard
    flows, merged records bit-identical to the single analytic run."""

    @pytest.mark.parametrize("seed", [11, 29, 97])
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_bit_identical_records(self, seed, shards):
        plan, names = _abs_plan(64, 300, seed)
        single = run_network_single(plan, names)
        sharded = run_network_sharded(
            plan, names, shards, group_size=8, processes=False, strict=True
        )
        assert sharded["records"] == single["records"]
        assert sharded["cross_flows"] == 0
        assert sharded["nic_bytes"] == single["nic_bytes"]
        assert sharded["makespan"] == single["makespan"]
        # Totals are summed per shard, so only the addition order
        # differs from the single run.
        assert math.isclose(
            sharded["total_bytes"], single["total_bytes"], rel_tol=1e-12
        )
        # The whole plan is known up front (causally closed): the
        # coordinator grants one drain-to-completion window.
        assert sharded["rounds"] == 1

    def test_process_backend_matches_inproc(self):
        plan, names = _abs_plan(64, 300, 11)
        single = run_network_single(plan, names)
        sharded = run_network_sharded(
            plan, names, 4, group_size=8, processes=True, strict=True
        )
        assert sharded["records"] == single["records"]
        assert sharded["backend"] in ("process", "inproc")

    def test_shards1_is_passthrough(self):
        plan, names = _abs_plan(32, 100, 11)
        direct = run_network_single(plan, names)
        via_sharded = run_network_sharded(plan, names, 1)
        assert via_sharded["records"] == direct["records"]
        assert via_sharded["backend"] == "single"
        assert via_sharded["rounds"] == 0


class TestMisalignedPartition:
    """Partition that splits traffic groups: cross-shard flows are
    simulated source-side (documented divergence), the merge reports the
    risk counters, and strict mode refuses the layout."""

    def _run(self, **kwargs):
        plan, names = _abs_plan(64, 300, 11)
        # group_size=1 lets the partitioner cut inside the 8-node
        # traffic groups; 3 shards over 64 nodes guarantees a cut.
        return plan, names, run_network_sharded(
            plan, names, 3, group_size=1, processes=False, **kwargs
        )

    def test_strict_refuses_cross_flows(self):
        plan, names = _abs_plan(64, 300, 11)
        with pytest.raises(SimulationError):
            run_network_sharded(
                plan, names, 3, group_size=1, processes=False, strict=True
            )

    def test_counters_and_accounting(self):
        plan, names, sharded = self._run()
        single = run_network_single(plan, names)
        assert sharded["cross_flows"] > 0
        assert sharded["remote_ingests"] == sharded["cross_flows"]
        assert sharded["divergence_risk"] >= 0
        assert len(sharded["records"]) == len(single["records"])
        # Accounting stays complete: every byte of every flow lands on
        # its destination NIC (via barrier ingest for cross flows), even
        # though contention-coupled timings may diverge.
        for name in names:
            assert math.isclose(
                sharded["nic_bytes"][name][1],
                single["nic_bytes"][name][1],
                rel_tol=1e-9,
                abs_tol=1.0,
            )
        assert math.isclose(
            sharded["total_bytes"], single["total_bytes"], rel_tol=1e-9
        )


class _RelayProgram:
    """Passes a token around the shards, one conservative hop at a time."""

    may_send = True

    def __init__(self, env, api, payload):
        self.env = env
        self.api = api
        self.shard_id = payload["shard_id"]
        self.shards = payload["shards"]
        self.hops = payload["hops"]
        self.log = []
        if self.shard_id == 0:
            event = env.schedule_at(payload["start"])
            event.callbacks.append(lambda _e: self._hop(0))

    def _hop(self, count):
        self.log.append((count, self.env.now))
        if count + 1 < self.hops:
            self.api.send((self.shard_id + 1) % self.shards, count + 1)

    def on_message(self, payload, ts):
        event = self.env.schedule_at(ts)
        event.callbacks.append(lambda _e, count=payload: self._hop(count))

    def result(self):
        return self.log


def _relay_factory(env, api, payload):
    return _RelayProgram(env, api, payload)


class TestReactiveRelay:
    """Messages generated mid-run cross shards without ever arriving in
    a receiver's past, and hop timestamps are bit-exact."""

    @pytest.mark.parametrize("processes", [False, True])
    def test_hop_times_match_single_env(self, processes):
        shards, hops, start, look = 3, 7, 0.1, DEFAULT_LOOKAHEAD
        outcome = ShardCoordinator(
            [
                (
                    _relay_factory,
                    {
                        "shard_id": i,
                        "shards": shards,
                        "hops": hops,
                        "start": start,
                    },
                )
                for i in range(shards)
            ],
            lookahead=look,
            processes=processes,
        ).run()
        merged = sorted(
            entry for log in outcome["results"] for entry in log
        )

        # Single-environment reference: the same chain of
        # now + lookahead accumulations in one event queue.
        env = Environment()
        reference = []

        def hop(count):
            reference.append((count, env.now))
            if count + 1 < hops:
                event = env.schedule_at(env.now + look)
                event.callbacks.append(lambda _e, c=count + 1: hop(c))

        first = env.schedule_at(start)
        first.callbacks.append(lambda _e: hop(0))
        env.run()

        assert merged == sorted(reference)
        assert outcome["messages"] == hops - 1

    def test_monotone_delivery(self):
        """Every hop lands strictly later than the previous one."""
        outcome = ShardCoordinator(
            [
                (
                    _relay_factory,
                    {"shard_id": i, "shards": 2, "hops": 5, "start": 0.0},
                )
                for i in range(2)
            ],
            processes=False,
        ).run()
        merged = sorted(
            entry for log in outcome["results"] for entry in log
        )
        times = [ts for _count, ts in merged]
        assert times == sorted(times)
        assert all(b > a for a, b in zip(times, times[1:]))

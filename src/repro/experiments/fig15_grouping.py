"""Fig. 15 — grouping & scheduling distribution of the 8 benchmarks.

The paper shows where the graph scheduler puts every benchmark when all
eight are deployed on the cluster: the 50-node scientific workflows
spread across the 7 workers (their heavy, quota-blocked, or
capacity-bound groups cannot merge onto one node once auto-scaling
headroom is provisioned), while the ~10-node real-world applications
each land on a single worker.

Following the artifact's ``scale_limit`` provisioning, each function
node reserves auto-scaling headroom via the scheduler's ``Scale``
metric (default 1; the scheduler's per-worker concurrency bound of
cores x 1.25 containers already forces large workflows to spread, and
raising the headroom spreads them further).
"""

from __future__ import annotations

from collections import Counter

from ..workloads import ALL_BENCHMARKS, BENCHMARKS, build
from .common import ExperimentResult, make_cluster, make_faasflow

__all__ = ["run"]


def run(
    provision_scale: float = 1.0, benchmarks: list[str] | None = None
) -> ExperimentResult:
    names = benchmarks or ALL_BENCHMARKS
    cluster = make_cluster()
    _, scheduler = make_faasflow(cluster, ship_data=True)
    rows = []
    distribution: dict[str, Counter] = {}
    for name in names:
        dag = build(name)
        from ..dag import estimate_edge_weights

        estimate_edge_weights(dag, bandwidth=cluster.config.storage_bandwidth)
        for node in dag.real_nodes():
            scheduler.observe_scale(node.name, provision_scale)
        scheduler.absorb_feedback(dag, _empty_metrics())
        placement, quotas, report = scheduler.schedule(
            dag, force_grouping=True
        )
        workers_used = Counter(
            placement.node_of(n.name) for n in dag.real_nodes()
        )
        distribution[name] = workers_used
        grouping = report.grouping
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                BENCHMARKS[name].category,
                len(dag.real_nodes()),
                len(grouping.groups) if grouping else "-",
                len(workers_used),
                ", ".join(
                    f"{w.split('-')[-1]}:{c}"
                    for w, c in sorted(workers_used.items())
                ),
            ]
        )
    notes = [
        "paper: 50-node scientific workflows distribute across all 7 "
        "workers; ~10-node real-world apps group onto one worker",
        f"capacity provisioned for Scale(v)={provision_scale:.0f} "
        "(auto-scaling headroom; the Table 3 limit of 10 is the cap)",
    ]
    return ExperimentResult(
        experiment="fig15",
        title="Grouping & scheduling distribution across the 7 workers",
        headers=[
            "benchmark",
            "category",
            "functions",
            "groups",
            "workers used",
            "functions per worker",
        ],
        rows=rows,
        notes=notes,
        data={"distribution": distribution},
    )


def _empty_metrics():
    from ..metrics import MetricsCollector

    return MetricsCollector()


if __name__ == "__main__":  # pragma: no cover
    run().print()

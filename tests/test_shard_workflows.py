"""Sharded workflow cells are bit-identical to serial execution.

Satellite of the shard work: engine runs (MasterSP and WorkerSP) shard
at *cell* granularity — whole independent scenarios dealt to worker
processes — because the remote store's slot queue and the storage NIC
couple all nodes with zero lookahead.  Exactness then rests on two
facts these tests pin across shard counts S ∈ {2, 4, 8}, random seeds,
node counts, and workload types:

- each cell is causally closed, so *where* it runs cannot change its
  events;
- each cell's invocation-id range is pinned by
  ``reset_invocation_ids``, so even the ids in its records are
  reproducible.
"""

import pytest

from repro.runner import run_trials
from repro.sim.shard import make_workflow_cell, run_workflow_cells

# A spread of scenarios: synthetic DAGs and realworld benchmarks, both
# engine modes, varying seeds and cluster sizes.
CELLS = [
    make_workflow_cell(
        ("layered_random", {"seed": 3}),
        engine="worker", seed=13, invocations=2, workers=3,
    ),
    make_workflow_cell(
        ("layered_random", {"seed": 5}),
        engine="master", seed=17, invocations=2, workers=5,
    ),
    make_workflow_cell(
        ("chain", {"length": 6}),
        engine="worker", seed=29, invocations=2, workers=2,
    ),
    make_workflow_cell(
        "video-ffmpeg", engine="worker", seed=13, invocations=2, workers=4,
    ),
    make_workflow_cell(
        "video-ffmpeg", engine="master", seed=41, invocations=2, workers=4,
    ),
    make_workflow_cell(
        "cycles", engine="worker", seed=7, invocations=2, workers=3,
    ),
]


@pytest.fixture(scope="module")
def serial_results():
    return run_workflow_cells(CELLS, shards=1)


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_sharded_cells_bit_identical(shards, serial_results):
    sharded = run_workflow_cells(CELLS, shards=shards)
    assert sharded == serial_results


def test_records_and_id_ranges(serial_results):
    for index, result in enumerate(serial_results):
        assert result["cell_index"] == index
        records = result["records"]
        assert len(records) == 2  # invocations per cell
        for record in records:
            invocation_id = record[1]
            base = index * 10_000_000
            # Ids live in the cell's disjoint range — proof the record
            # cannot depend on which worker ran which other cell first.
            assert base < invocation_id < base + 10_000_000
            assert record[5] == "ok"


def test_engines_both_covered(serial_results):
    assert {r["engine"] for r in serial_results} == {"worker", "master"}


class TestRunTrialsSharded:
    def test_sharded_trials_match_each_other(self):
        kwargs = dict(trials=3, invocations=2, workers=3, seed=13)
        one = run_trials("cycles", shards=1, **kwargs)
        four = run_trials("cycles", shards=4, **kwargs)
        assert [dict(s) for s in one] == [dict(s) for s in four]

    def test_scalars_match_legacy_path(self):
        kwargs = dict(trials=2, invocations=2, workers=3, seed=13)
        legacy = run_trials("cycles", **kwargs)
        sharded = run_trials("cycles", shards=2, **kwargs)
        for a, b in zip(legacy, sharded):
            for key in (
                "mean_latency", "p99_latency", "completed",
                "timeouts", "failures", "cold_starts",
            ):
                assert a[key] == b[key]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials("cycles", trials=2, shards=0)

"""Timeout cancellation semantics (lazy drop at heap pop)."""

import pytest

from repro.sim import Environment, SimulationError, Timeout


def test_cancelled_timeout_callbacks_never_run():
    env = Environment()
    fired = []
    timer = env.timeout(1.0)
    timer.callbacks.append(lambda ev: fired.append(ev))
    timer.cancel()
    env.run()
    assert fired == []
    assert env.now == 1.0  # the heap entry still advances the clock


def test_cancel_is_idempotent():
    env = Environment()
    timer = env.timeout(0.5)
    timer.cancel()
    timer.cancel()
    assert timer.cancelled
    env.run()


def test_cancel_after_processed_raises():
    env = Environment()
    timer = env.timeout(0.5)
    env.run()
    with pytest.raises(SimulationError, match="processed"):
        timer.cancel()


def test_cancelled_flag_resets_when_dropped():
    """After the drop, the event reads as processed-and-uncancelled so a
    pooled reuse starts clean."""
    env = Environment()
    timer = env.timeout(0.25)
    timer.cancel()
    assert timer.cancelled
    env.run()
    assert not timer.cancelled
    assert timer.processed


def test_uncancelled_timeouts_unaffected():
    env = Environment()
    fired = []
    keep = env.timeout(1.0, value="keep")
    keep.callbacks.append(lambda ev: fired.append(ev.value))
    drop = env.timeout(1.0, value="drop")
    drop.callbacks.append(lambda ev: fired.append(ev.value))
    drop.cancel()
    env.run()
    assert fired == ["keep"]


def test_process_waiting_on_cancelled_timeout_never_resumes():
    env = Environment()
    log = []

    def waiter(env, timer):
        yield timer
        log.append("resumed")

    timer = Timeout(env, 1.0)
    env.process(waiter(env, timer))
    env.run(until=0.0)  # bootstrap the process onto the timeout
    timer.cancel()
    env.run(until=5.0)
    assert log == []


def test_negative_delay_still_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Timeout(env, -1.0)

"""Tests for execution tracing and engine execution invariants."""

import pytest

from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    HyperFlowServerlessSystem,
    Kind,
    Tracer,
)
from repro.clients import run_closed_loop

from .conftest import all_on, fanout_dag, linear_dag, round_robin


def make_traced_faasflow(cluster, **config_kwargs):
    config_kwargs.setdefault("ship_data", False)
    tracer = Tracer()
    system = FaaSFlowSystem(
        cluster, EngineConfig(**config_kwargs), tracer=tracer
    )
    return system, tracer


class TestTracerBasics:
    def test_records_accumulate(self):
        tracer = Tracer()
        tracer.record(1.0, Kind.INVOCATION_START, "w", 1)
        tracer.record(2.0, Kind.INVOCATION_END, "w", 1, detail="ok")
        assert tracer.count(Kind.INVOCATION_START) == 1
        assert len(tracer.of_invocation(1)) == 2

    def test_limit_drops_excess(self):
        tracer = Tracer(limit=2)
        for i in range(5):
            tracer.record(float(i), Kind.STATE_SYNC, "w", 1)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_limit_keeps_newest_events(self):
        tracer = Tracer(limit=3)
        for i in range(7):
            tracer.record(float(i), Kind.STATE_SYNC, "w", i)
        # Drop-oldest: the tail of the stream survives, not the head.
        assert [e.time for e in tracer.events] == [4.0, 5.0, 6.0]
        assert tracer.dropped == 4
        tracer.record(7.0, Kind.STATE_SYNC, "w", 7)
        assert [e.time for e in tracer.events] == [5.0, 6.0, 7.0]
        assert tracer.dropped == 5

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, Kind.STATE_SYNC, "w", 1)
        tracer.clear()
        assert not tracer.events


class TestWorkerSPTracing:
    def test_invocation_bracketed(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = linear_dag(n=2)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        events = tracer.of_invocation(record.invocation_id)
        assert events[0].kind == Kind.INVOCATION_START
        assert events[-1].kind == Kind.INVOCATION_END
        assert events[-1].detail == "ok"

    def test_every_function_executes_exactly_once(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = fanout_dag(branches=4)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        record = run_closed_loop(system, "fan", 1)[0]
        counts = tracer.execution_counts(record.invocation_id)
        assert counts == {name: 1 for name in dag.node_names}

    def test_execution_respects_predecessor_order(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = fanout_dag(branches=3)
        system.deploy(dag, round_robin(dag, cluster.worker_names()))
        record = run_closed_loop(system, "fan", 1)[0]
        inv = record.invocation_id
        for edge in dag.edges:
            assert tracer.execution_time(inv, edge.src) <= (
                tracer.execution_time(inv, edge.dst)
            )

    def test_cold_starts_traced_once_then_warm(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-1"))
        run_closed_loop(system, "lin", 2)
        assert tracer.count(Kind.COLD_START) == 3  # only the first run

    def test_state_sync_only_for_cross_worker_edges(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = linear_dag(n=4)
        system.deploy(dag, all_on(dag, "worker-0"))
        run_closed_loop(system, "lin", 1)
        assert tracer.count(Kind.STATE_SYNC) == 0
        tracer.clear()
        dag2 = linear_dag(name="lin2", n=4)
        system.deploy(dag2, round_robin(dag2, ["worker-0", "worker-1"]))
        run_closed_loop(system, "lin2", 1)
        assert tracer.count(Kind.STATE_SYNC) == 3

    def test_executed_node_matches_placement(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = linear_dag(n=3)
        placement = round_robin(dag, cluster.worker_names())
        system.deploy(dag, placement)
        record = run_closed_loop(system, "lin", 1)[0]
        for event in tracer.of_invocation(record.invocation_id):
            if event.kind == Kind.FUNCTION_EXECUTED:
                assert event.node == placement.node_of(event.function)

    def test_timeline_renders(self, env, cluster):
        system, tracer = make_traced_faasflow(cluster)
        dag = linear_dag(n=2)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        text = tracer.timeline(record.invocation_id)
        assert "invocation-start" in text
        assert "f0 @worker-0" in text

    def test_execution_time_unknown_function_raises(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            tracer.execution_time(1, "ghost")


class TestMasterSPTracing:
    def test_assignments_traced(self, env, cluster):
        tracer = Tracer()
        system = HyperFlowServerlessSystem(
            cluster, EngineConfig(ship_data=False), tracer=tracer
        )
        dag = linear_dag(n=3)
        system.register(dag, all_on(dag, "worker-2"))
        record = run_closed_loop(system, "lin", 1)[0]
        assert tracer.count(Kind.TASK_ASSIGNED) == 3
        counts = tracer.execution_counts(record.invocation_id)
        assert counts == {name: 1 for name in dag.node_names}

    def test_no_tracer_costs_nothing(self, env, cluster):
        system = HyperFlowServerlessSystem(
            cluster, EngineConfig(ship_data=False)
        )
        dag = linear_dag(n=2)
        system.register(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        assert record.status == "ok"

"""Tests for networkx / DOT interop (and cross-validation oracles)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Placement
from repro.dag import (
    DAGError,
    WorkflowDAG,
    critical_path,
    from_networkx,
    to_dot,
    to_networkx,
)
from repro.workloads import build, layered_random

MB = 1024.0 * 1024.0


class TestToNetworkx:
    def test_structure_preserved(self):
        dag = build("file-processing")
        graph = to_networkx(dag)
        assert graph.number_of_nodes() == len(dag.node_names)
        assert graph.number_of_edges() == len(dag.edges)
        assert nx.is_directed_acyclic_graph(graph)

    def test_attributes_carried(self):
        dag = build("word-count")
        graph = to_networkx(dag)
        node = graph.nodes["count-words"]
        assert node["map_factor"] == 8.0
        assert node["service_time"] == pytest.approx(0.4)

    def test_round_trip(self):
        dag = build("genome")
        clone = from_networkx(to_networkx(dag))
        assert sorted(clone.node_names) == sorted(dag.node_names)
        assert sorted(e.key for e in clone.edges) == sorted(
            e.key for e in dag.edges
        )
        assert clone.total_data_size == pytest.approx(dag.total_data_size)
        for name in dag.node_names:
            assert clone.node(name).service_time == pytest.approx(
                dag.node(name).service_time
            )

    def test_from_networkx_rejects_cycles(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        with pytest.raises(DAGError):
            from_networkx(graph)


class TestCrossValidation:
    """networkx as an independent oracle for our graph algorithms."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_topological_order_agrees_with_networkx(self, seed):
        dag = layered_random(layers=4, width=3, seed=seed)
        graph = to_networkx(dag)
        position = {n: i for i, n in enumerate(dag.topological_order())}
        for src, dst in graph.edges:
            assert position[src] < position[dst]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_critical_path_agrees_with_networkx_longest_path(self, seed):
        """nx.dag_longest_path_length as an oracle: node service times
        are pushed onto incoming edges, and all sources hang off a
        zero-cost super-source carrying each entry's own cost."""
        dag = layered_random(layers=4, width=3, seed=seed)
        for edge in dag.edges:
            edge.weight = 0.25
        ours = critical_path(dag).length
        graph = nx.DiGraph()
        super_source = "__start__"
        graph.add_node(super_source)
        for node in dag.nodes:
            graph.add_node(node.name)
        for source in dag.sources():
            graph.add_edge(
                super_source, source, w=dag.node(source).service_time
            )
        for edge in dag.edges:
            graph.add_edge(
                edge.src,
                edge.dst,
                w=edge.weight + dag.node(edge.dst).service_time,
            )
        oracle = nx.dag_longest_path_length(graph, weight="w")
        assert ours == pytest.approx(oracle, rel=1e-9)


class TestDot:
    def test_renders_nodes_and_edges(self):
        dag = build("file-processing")
        dot = to_dot(dag)
        assert dot.startswith('digraph "file-processing"')
        assert '"fetch-note" -> "process.start"' in dot
        assert "[shape=point]" in dot  # virtual nodes

    def test_placement_clusters(self):
        dag = WorkflowDAG("w")
        dag.add_function("a")
        dag.add_function("b")
        dag.add_edge("a", "b")
        placement = Placement(
            workflow="w", assignment={"a": "w0", "b": "w1"}
        )
        dot = to_dot(dag, placement=placement)
        assert "cluster_0" in dot and "cluster_1" in dot
        assert 'label="w0"' in dot

    def test_edge_labels_show_data(self):
        dag = WorkflowDAG("w")
        dag.add_function("a", output_size=4 * MB)
        dag.add_function("b")
        dag.add_edge("a", "b", data_size=4 * MB)
        assert '4.0MB' in to_dot(dag)

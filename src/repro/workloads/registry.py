"""Benchmark registry: the paper's Table 1 in executable form."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..dag import WorkflowDAG
from . import pegasus, realworld

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "SCIENTIFIC",
    "REAL_WORLD",
    "ALL_BENCHMARKS",
    "build",
    "build_all",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: metadata plus its DAG builder."""

    name: str
    abbrev: str
    category: str  # "scientific" | "real-world"
    source: str
    builder: Callable[..., WorkflowDAG]

    def build(self, **kwargs) -> WorkflowDAG:
        return self.builder(**kwargs)


BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            name="cycles",
            abbrev="Cyc",
            category="scientific",
            source="Pegasus workflow instances",
            builder=pegasus.cycles,
        ),
        BenchmarkSpec(
            name="epigenomics",
            abbrev="Epi",
            category="scientific",
            source="Pegasus workflow instances",
            builder=pegasus.epigenomics,
        ),
        BenchmarkSpec(
            name="genome",
            abbrev="Gen",
            category="scientific",
            source="Pegasus workflow instances",
            builder=pegasus.genome,
        ),
        BenchmarkSpec(
            name="soykb",
            abbrev="Soy",
            category="scientific",
            source="Pegasus workflow instances",
            builder=pegasus.soykb,
        ),
        BenchmarkSpec(
            name="video-ffmpeg",
            abbrev="Vid",
            category="real-world",
            source="Alibaba Function Compute",
            builder=realworld.video_ffmpeg,
        ),
        BenchmarkSpec(
            name="illegal-recognizer",
            abbrev="IR",
            category="real-world",
            source="Google Cloud Functions",
            builder=realworld.illegal_recognizer,
        ),
        BenchmarkSpec(
            name="file-processing",
            abbrev="FP",
            category="real-world",
            source="AWS Lambda",
            builder=realworld.file_processing,
        ),
        BenchmarkSpec(
            name="word-count",
            abbrev="WC",
            category="real-world",
            source="Zhang et al.",
            builder=realworld.word_count,
        ),
    ]
}

SCIENTIFIC = [n for n, s in BENCHMARKS.items() if s.category == "scientific"]
REAL_WORLD = [n for n, s in BENCHMARKS.items() if s.category == "real-world"]
ALL_BENCHMARKS = list(BENCHMARKS)


def build(name: str, **kwargs) -> WorkflowDAG:
    """Build a benchmark DAG by name (accepts abbreviations too)."""
    spec = BENCHMARKS.get(name)
    if spec is None:
        by_abbrev = {s.abbrev.lower(): s for s in BENCHMARKS.values()}
        spec = by_abbrev.get(name.lower())
    if spec is None:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {ALL_BENCHMARKS}"
        )
    return spec.build(**kwargs)


def build_all() -> dict[str, WorkflowDAG]:
    """All 8 benchmarks at their paper-default sizes."""
    return {name: spec.build() for name, spec in BENCHMARKS.items()}

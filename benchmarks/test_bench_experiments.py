"""Benches: regenerate every paper table/figure (reduced settings).

Run with ``pytest benchmarks/ --benchmark-only``.  Each bench executes
one experiment end-to-end; the regenerated rows land in the benchmark's
``extra_info``.  Full-setting runs (the numbers recorded in
EXPERIMENTS.md) come from ``faasflow-experiment <id>``.
"""

from repro.experiments import (
    fig04_master_overhead,
    fig05_data_movement,
    fig11_sched_overhead,
    fig12_bandwidth_sweep,
    fig13_tail_latency,
    fig14_colocation,
    fig15_grouping,
    fig16_scheduler_scalability,
    sec57_component_overhead,
    tab04_transfer_latency,
)

MB = 1024.0 * 1024.0


def test_bench_fig04_master_overhead(benchmark, record_result):
    result = benchmark(fig04_master_overhead.run, invocations=10)
    record_result(result)
    assert len(result.rows) == 8


def test_bench_fig05_data_movement(benchmark, record_result):
    result = benchmark(fig05_data_movement.run)
    record_result(result)
    assert len(result.rows) == 8


def test_bench_fig11_sched_overhead(benchmark, record_result):
    result = benchmark(fig11_sched_overhead.run, invocations=10)
    record_result(result)
    reductions = result.data["reductions"]
    assert sum(reductions) / len(reductions) > 50


def test_bench_tab04_transfer_latency(benchmark, record_result):
    result = benchmark(tab04_transfer_latency.run, invocations=3)
    record_result(result)
    assert len(result.rows) == 8


def test_bench_fig12_bandwidth_sweep(benchmark, record_result):
    result = benchmark(
        fig12_bandwidth_sweep.run,
        invocations=10,
        bandwidths=(25 * MB, 100 * MB),
        rates=(4.0, 6.0),
    )
    record_result(result)
    assert len(result.rows) == 8  # 2 benchmarks x 2 bandwidths x 2 rates


def test_bench_fig13_tail_latency(benchmark, record_result):
    result = benchmark(fig13_tail_latency.run, invocations=15)
    record_result(result)
    assert len(result.rows) == 8


def test_bench_fig14_colocation(benchmark, record_result):
    result = benchmark(fig14_colocation.run, invocations=4)
    record_result(result)
    assert len(result.rows) == 16


def test_bench_fig15_grouping(benchmark, record_result):
    result = benchmark(fig15_grouping.run)
    record_result(result)
    assert len(result.rows) == 8


def test_bench_fig16_scheduler_scalability(benchmark, record_result):
    result = benchmark(
        fig16_scheduler_scalability.run, sizes=(10, 25, 50, 100), repeats=2
    )
    record_result(result)
    assert len(result.rows) == 4


def test_bench_sec57_component_overhead(benchmark, record_result):
    result = benchmark(
        sec57_component_overhead.run,
        worker_counts=(1, 5, 10, 25),
        invocations=5,
    )
    record_result(result)
    assert len(result.rows) == 4


def test_bench_sec6_memory_vs_network(benchmark, record_result):
    from repro.experiments import sec6_memory_vs_network

    result = benchmark(sec6_memory_vs_network.run, invocations=10)
    record_result(result)
    assert len(result.rows) == 3

"""Extension — DataflowSP eager-shipping ablation with span attribution.

The three-way fig12/fig13 sweeps show *where* DataflowSP's tail sits;
this experiment shows *why*.  Each data-intensive benchmark runs on
WorkerSP, DataflowSP with eager shipping, and DataflowSP with shipping
disabled (trigger-only dataflow), all with span tracing on, and the
table reports the measured exact-sum latency decomposition.  The
signature of communication/computation overlap is in the ``transfer``
column: eager shipping moves the producer→consumer bytes while
upstream functions still compute, so the consumer-side window that
``breakdown()`` attributes to transfer collapses while ``execute``
stays constant.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..workloads import BENCHMARKS, build
from .common import (
    ExperimentResult,
    MB,
    ParallelRunner,
    deploy_with_feedback,
    derive_seed,
    make_cluster,
    make_dataflow,
    make_faasflow,
)

__all__ = ["run"]

VARIANTS = (
    ("worker", "WorkerSP"),
    ("dataflow", "DataflowSP"),
    ("dataflow-noship", "DataflowSP (no eager ship)"),
)


def _cell(task: tuple) -> dict:
    """One (benchmark, variant) run with spans on — pool-shippable."""
    name, variant, invocations, bandwidth, seed = task
    from ..obs import SpanTracer

    cluster = make_cluster(storage_bandwidth=bandwidth)
    # Spans must be installed before the system is built (engines and
    # the runtime snapshot cluster.spans at construction).
    if not cluster.spans.enabled:
        cluster.install_spans(SpanTracer(cluster.env))
    if variant == "worker":
        system, scheduler = make_faasflow(cluster, ship_data=True)
    else:
        system, scheduler = make_dataflow(
            cluster, ship_data=True,
            eager_ship=(variant == "dataflow"),
        )
    dag = build(name)
    deploy_with_feedback(system, scheduler, dag, warmup_invocations=1)
    system.metrics.clear()
    run_closed_loop(system, name, invocations)
    parts = system.metrics.mean_breakdown(name)
    return {
        "e2e": parts["e2e"],
        "execute": parts["execute"],
        "cold_start": parts["cold_start"],
        "transfer": parts["transfer"],
        "queue_wait": parts["queue_wait"],
        "sync": parts["sync"],
        "engine": parts["engine"],
        "local_fraction": system.metrics.local_fraction(name),
    }


def run(
    invocations: int = 20,
    bandwidth: float = 50 * MB,
    benchmarks: tuple[str, ...] = ("genome", "video-ffmpeg"),
    jobs: int = 1,
    seed: int = 13,
) -> ExperimentResult:
    tasks = [
        (
            name,
            variant,
            invocations,
            bandwidth,
            derive_seed(seed, name, variant),
        )
        for name in benchmarks
        for variant, _ in VARIANTS
    ]
    results = ParallelRunner(jobs).map(_cell, tasks)
    rows = []
    series: dict[tuple, dict] = {}
    for (name, variant, _, _, _), parts in zip(tasks, results):
        series[(name, variant)] = parts
        label = dict(VARIANTS)[variant]
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                label,
                round(parts["e2e"], 2),
                round(parts["execute"], 2),
                round(parts["transfer"], 2),
                round(parts["queue_wait"], 2),
                round(parts["sync"] + parts["engine"], 3),
                f"{parts['local_fraction'] * 100:.0f}%",
            ]
        )
    notes = []
    for name in benchmarks:
        worker = series[(name, "worker")]
        eager = series[(name, "dataflow")]
        noship = series[(name, "dataflow-noship")]
        if worker["e2e"] > 0:
            notes.append(
                f"{name}: DataflowSP e2e {eager['e2e'] / worker['e2e']:.2f}x "
                f"of WorkerSP; transfer component "
                f"{worker['transfer']:.2f}s -> {eager['transfer']:.2f}s "
                f"(eager off: {noship['transfer']:.2f}s) — the delta is "
                "communication/computation overlap, not faster compute"
            )
    return ExperimentResult(
        experiment="ext-dataflow",
        title=(
            f"DataflowSP eager-shipping ablation @ {bandwidth / MB:.0f} MB/s "
            "(measured span breakdown, means over completed invocations)"
        ),
        headers=[
            "benchmark",
            "engine",
            "e2e (s)",
            "execute (s)",
            "transfer (s)",
            "queue (s)",
            "sync+engine (s)",
            "local",
        ],
        rows=rows,
        notes=notes,
        data={"series": series},
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

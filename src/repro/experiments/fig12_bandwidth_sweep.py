"""Fig. 12 — p99 latency vs load under 25/50/75/100 MB/s storage bandwidth.

The §5.4 sweep: Gen and Vid (the two data-intensive benchmarks) under
open-loop load at several invocation rates, with the storage node's NIC
throttled to each bandwidth.  The paper's observations to reproduce:

- HyperFlow-serverless is highly bandwidth-sensitive; its tails blow up
  as the NIC shrinks.
- FaaSFlow-FaaStore at 25-50 MB/s matches HyperFlow at 75-100 MB/s,
  i.e. localization multiplies effective bandwidth by 1.5-4x.
- Dropping 50 -> 25 MB/s degrades HyperFlow's sustainable throughput by
  ~32.5% but FaaSFlow-FaaStore by < 9.5%.
"""

from __future__ import annotations

from ..clients import run_open_loop
from ..workloads import BENCHMARKS, build
from .common import (
    ExperimentResult,
    MB,
    ParallelRunner,
    deploy_with_feedback,
    derive_seed,
    make_cluster,
    make_dataflow,
    make_faasflow,
    make_hyperflow,
    register_hyperflow,
)

__all__ = ["run"]

DEFAULT_BANDWIDTHS = (25 * MB, 50 * MB, 75 * MB, 100 * MB)
DEFAULT_RATES = (2.0, 4.0, 6.0, 8.0)


def _sweep_cell(task: tuple) -> tuple[float, float, float]:
    """One independent sweep point: all three systems at (name, bw, rate).

    Module-level and fed by a plain tuple so a ParallelRunner can ship
    it to a worker process.  All systems see the same arrival process
    (same derived seed) — the three-way comparison stays paired.
    """
    name, bandwidth, rate, invocations, seed = task
    cluster_m = make_cluster(storage_bandwidth=bandwidth)
    hyper = make_hyperflow(cluster_m, ship_data=True)
    dag_m = build(name)
    register_hyperflow(hyper, dag_m)
    run_open_loop(hyper, name, invocations, rate, seed=seed)
    hyper_p99 = hyper.metrics.tail_latency(name, q=99)

    cluster_w = make_cluster(storage_bandwidth=bandwidth)
    faasflow, scheduler = make_faasflow(cluster_w, ship_data=True)
    dag_w = build(name)
    deploy_with_feedback(faasflow, scheduler, dag_w, warmup_invocations=1)
    faasflow.metrics.clear()
    run_open_loop(faasflow, name, invocations, rate, seed=seed)
    faas_p99 = faasflow.metrics.tail_latency(name, q=99)

    cluster_d = make_cluster(storage_bandwidth=bandwidth)
    dataflow, d_scheduler = make_dataflow(cluster_d, ship_data=True)
    dag_d = build(name)
    deploy_with_feedback(dataflow, d_scheduler, dag_d, warmup_invocations=1)
    dataflow.metrics.clear()
    run_open_loop(dataflow, name, invocations, rate, seed=seed)
    dataflow_p99 = dataflow.metrics.tail_latency(name, q=99)
    return hyper_p99, faas_p99, dataflow_p99


def run(
    invocations: int = 30,
    benchmarks: tuple[str, ...] = ("genome", "video-ffmpeg"),
    bandwidths: tuple[float, ...] = DEFAULT_BANDWIDTHS,
    rates: tuple[float, ...] = DEFAULT_RATES,
    jobs: int = 1,
    seed: int = 13,
) -> ExperimentResult:
    tasks = [
        (
            name,
            bandwidth,
            rate,
            invocations,
            derive_seed(seed, name, bandwidth / MB, rate),
        )
        for name in benchmarks
        for bandwidth in bandwidths
        for rate in rates
    ]
    results = ParallelRunner(jobs).map(_sweep_cell, tasks)
    rows = []
    series: dict[tuple, float] = {}
    for (name, bandwidth, rate, _, _), (hyper_p99, faas_p99, dataflow_p99) in zip(
        tasks, results
    ):
        series[(name, bandwidth / MB, rate, "hyper")] = hyper_p99
        series[(name, bandwidth / MB, rate, "faasflow")] = faas_p99
        series[(name, bandwidth / MB, rate, "dataflow")] = dataflow_p99
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                int(bandwidth / MB),
                rate,
                round(hyper_p99, 2),
                round(faas_p99, 2),
                round(dataflow_p99, 2),
            ]
        )
    notes = _bandwidth_equivalence_notes(series, benchmarks, rates)
    notes.extend(_dataflow_notes(series, benchmarks, bandwidths, rates))
    return ExperimentResult(
        experiment="fig12",
        title="p99 latency vs load across storage bandwidths",
        headers=[
            "benchmark",
            "bandwidth (MB/s)",
            "rate (/min)",
            "HyperFlow p99 (s)",
            "FaaSFlow p99 (s)",
            "DataflowSP p99 (s)",
        ],
        rows=rows,
        notes=notes,
        data={"series": series},
    )


def _bandwidth_equivalence_notes(series, benchmarks, rates) -> list[str]:
    """How much bandwidth does FaaStore 'multiply'?  Compare FaaSFlow at
    25/50 MB/s against HyperFlow at higher bandwidths."""
    notes = []
    for name in benchmarks:
        for low, highs in ((25.0, (75.0, 100.0)), (50.0, (75.0, 100.0))):
            faas = [series.get((name, low, r, "faasflow")) for r in rates]
            if any(v is None for v in faas):
                continue
            matched = []
            for high in highs:
                hyper = [series.get((name, high, r, "hyper")) for r in rates]
                if any(v is None for v in hyper):
                    continue
                mean_f = sum(faas) / len(faas)
                mean_h = sum(hyper) / len(hyper)
                if mean_f <= mean_h * 1.2:
                    matched.append(int(high))
            if matched:
                notes.append(
                    f"{name}: FaaSFlow-FaaStore @ {low:.0f} MB/s <= "
                    f"HyperFlow @ {matched} MB/s "
                    f"(bandwidth multiplied {min(matched) / low:.1f}x+)"
                )
    return notes


def _dataflow_notes(series, benchmarks, bandwidths, rates) -> list[str]:
    """Where does function-level dataflow triggering + eager shipping
    sit relative to WorkerSP at each bandwidth?"""
    notes = []
    for name in benchmarks:
        for bandwidth in bandwidths:
            bw = bandwidth / MB
            faas = [series.get((name, bw, r, "faasflow")) for r in rates]
            flow = [series.get((name, bw, r, "dataflow")) for r in rates]
            if any(v is None for v in faas) or any(v is None for v in flow):
                continue
            mean_f = sum(faas) / len(faas)
            mean_d = sum(flow) / len(flow)
            if mean_f > 0:
                notes.append(
                    f"{name} @ {bw:.0f} MB/s: DataflowSP mean p99 "
                    f"{mean_d / mean_f:.2f}x of FaaSFlow-FaaStore "
                    f"(overlap {'wins' if mean_d <= mean_f else 'loses'})"
                )
    return notes


if __name__ == "__main__":  # pragma: no cover
    run().print()

"""Tests for the terminal chart renderer."""

import pytest

from repro.experiments import ExperimentResult
from repro.experiments.charts import bar_chart, chart_for_result, grouped_bar_chart


class TestBarChart:
    def test_bars_scale_to_maximum(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_included(self):
        chart = bar_chart(["a"], [1.0], title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_values_printed(self):
        chart = bar_chart(["a"], [3.14159])
        assert "3.14" in chart

    def test_unit_suffix(self):
        chart = bar_chart(["a"], [1.0], unit="ms")
        assert "1.00 ms" in chart

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0], width=10)
        assert "#" not in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], [])

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGroupedBarChart:
    def test_two_series_per_label(self):
        chart = grouped_bar_chart(
            ["Cyc", "Epi"],
            {"Hyper": [204.2, 2.23], "FaaS": [10.28, 0.69]},
        )
        assert chart.count("Hyper") == 2
        assert chart.count("FaaS") == 2

    def test_shared_scale_across_series(self):
        chart = grouped_bar_chart(
            ["x"], {"big": [100.0], "small": [50.0]}, width=10
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {})


class TestChartForResult:
    def make_result(self, rows):
        return ExperimentResult(
            experiment="figX",
            title="t",
            headers=["benchmark", "latency"],
            rows=rows,
        )

    def test_numeric_column_charts(self):
        chart = chart_for_result(self.make_result([["a", 1.0], ["b", 2.0]]))
        assert chart is not None
        assert "figX" in chart

    def test_non_numeric_column_returns_none(self):
        chart = chart_for_result(self.make_result([["a", "n/a"]]))
        assert chart is None

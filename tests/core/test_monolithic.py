"""Unit tests for the monolithic deployment baseline (Fig. 5)."""

import pytest

from repro.core import (
    EngineConfig,
    HyperFlowServerlessSystem,
    MonolithicSystem,
)
from repro.metrics import InvocationStatus

from .conftest import MB, all_on, fanout_dag, linear_dag


class TestMonolithicExecution:
    def test_completes(self, env, cluster):
        system = MonolithicSystem(cluster)
        dag = linear_dag(n=3)
        system.register(dag)
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.OK

    def test_no_cold_starts_or_network(self, env, cluster):
        system = MonolithicSystem(cluster)
        dag = linear_dag(n=3, output_size=4 * MB)
        system.register(dag)
        env.run(until=env.process(system.invoke("lin")))
        assert cluster.total_data_moved == 0
        assert cluster.workers[0].containers.total_containers == 0

    def test_latency_close_to_critical_exec(self, env, cluster):
        system = MonolithicSystem(cluster)
        dag = linear_dag(n=3, service_time=0.1, output_size=0)
        system.register(dag)
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.latency == pytest.approx(0.3, rel=1e-3)


class TestMonolithicTracing:
    def test_tracer_brackets_invocation(self, env, cluster):
        from repro.core import Kind, Tracer

        tracer = Tracer()
        system = MonolithicSystem(cluster, tracer=tracer)
        dag = linear_dag(n=3)
        system.register(dag)
        record = env.run(until=env.process(system.invoke("lin")))
        events = tracer.of_invocation(record.invocation_id)
        assert events[0].kind == Kind.INVOCATION_START
        assert events[-1].kind == Kind.INVOCATION_END
        assert events[-1].detail == "ok"
        executed = [e for e in events if e.kind == Kind.FUNCTION_EXECUTED]
        assert {e.function for e in executed} == set(dag.node_names)
        assert all(e.node == "worker-0" for e in executed)

    def test_span_tracer_produces_tree(self, env, cluster):
        from repro.obs import SpanKind, SpanTracer

        tracer = SpanTracer(env)
        cluster.install_spans(tracer)
        system = MonolithicSystem(cluster)
        dag = linear_dag(n=3)
        system.register(dag)
        record = env.run(until=env.process(system.invoke("lin")))
        root = tracer.root_of(record.invocation_id)
        assert root is not None and root.status == "ok"
        fn_spans = tracer.of_kind(SpanKind.FUNCTION)
        assert {s.function for s in fn_spans} == set(dag.node_names)
        assert all(s.parent_id == root.span_id for s in fn_spans)
        # No containers in a monolith: no cold-start or container spans.
        assert tracer.of_kind(SpanKind.COLD_START) == []
        assert tracer.of_kind(SpanKind.CONTAINER) == []

    def test_untraced_by_default(self, env, cluster):
        system = MonolithicSystem(cluster)
        assert system.tracer is None
        assert system.spans.enabled is False


class TestDataMovementComparison:
    def test_each_output_counted_once(self, env, cluster):
        system = MonolithicSystem(cluster)
        dag = fanout_dag(branches=3, output_size=2 * MB)
        system.register(dag)
        record = env.run(until=env.process(system.invoke("fan")))
        moved = system.metrics.data_moved("fan", record.invocation_id)
        # head (2 MB) + three branches (2 MB each); tail produces none.
        assert moved == pytest.approx(8 * MB)

    def test_faas_moves_more_than_monolithic(self, env, cluster):
        """The Fig. 5 comparison: FaaS data-shipping amplifies movement."""
        dag = fanout_dag(branches=3, output_size=2 * MB)
        mono = MonolithicSystem(cluster)
        mono.register(dag)
        mono_record = env.run(until=env.process(mono.invoke("fan")))
        mono_moved = mono.metrics.data_moved("fan", mono_record.invocation_id)

        faas = HyperFlowServerlessSystem(cluster, EngineConfig(ship_data=True))
        faas.register(dag, all_on(dag, "worker-0"))
        faas_record = env.run(until=env.process(faas.invoke("fan")))
        faas_moved = faas.metrics.data_moved("fan", faas_record.invocation_id)
        # head's output: 1 put + 3 gets; each branch: 1 put + 1 get.
        assert faas_moved == pytest.approx(2 * MB * (4 + 6))
        assert faas_moved > 2 * mono_moved

    def test_parallelism_bounded_by_cores(self, env):
        from repro.sim import Cluster, ClusterConfig, Environment, NodeConfig

        env2 = Environment()
        cluster2 = Cluster(
            env2,
            ClusterConfig(
                workers=1, worker=NodeConfig(cores=2, memory=8 * 1024 * MB)
            ),
        )
        system = MonolithicSystem(cluster2)
        dag = fanout_dag(branches=4, output_size=0)
        system.register(dag)
        record = env2.run(until=env2.process(system.invoke("fan")))
        # 4 branches of 0.1 s on 2 cores -> at least two waves.
        assert record.latency >= 0.05 + 0.2 + 0.05 - 1e-9

"""Human-friendly unit parsing for the workflow definition language.

WDL files describe data sizes ("2MB", "512KB") and durations ("200ms",
"1.5s").  This module converts them to bytes / seconds.
"""

from __future__ import annotations

import re
from typing import Union

__all__ = ["parse_size", "parse_duration", "UnitError", "format_size"]

Numeric = Union[int, float]

_SIZE_UNITS = {
    "b": 1.0,
    "kb": 1024.0,
    "mb": 1024.0**2,
    "gb": 1024.0**3,
    "tb": 1024.0**4,
}

_DURATION_UNITS = {
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
}

_PATTERN = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


class UnitError(ValueError):
    """Unparseable size or duration literal."""


def parse_size(value: Union[str, Numeric]) -> float:
    """Parse a data size into bytes.

    Bare numbers are bytes.  Accepts B/KB/MB/GB/TB suffixes
    (case-insensitive).

    >>> parse_size("2MB")
    2097152.0
    >>> parse_size(1024)
    1024.0
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise UnitError(f"negative size: {value}")
        return float(value)
    match = _PATTERN.match(value)
    if not match:
        raise UnitError(f"unparseable size literal: {value!r}")
    number, unit = match.groups()
    unit = unit.lower() or "b"
    if unit not in _SIZE_UNITS:
        raise UnitError(f"unknown size unit {unit!r} in {value!r}")
    return float(number) * _SIZE_UNITS[unit]


def parse_duration(value: Union[str, Numeric]) -> float:
    """Parse a duration into seconds.  Bare numbers are seconds.

    >>> parse_duration("200ms")
    0.2
    >>> parse_duration(1.5)
    1.5
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise UnitError(f"negative duration: {value}")
        return float(value)
    match = _PATTERN.match(value)
    if not match:
        raise UnitError(f"unparseable duration literal: {value!r}")
    number, unit = match.groups()
    unit = unit.lower() or "s"
    if unit not in _DURATION_UNITS:
        raise UnitError(f"unknown duration unit {unit!r} in {value!r}")
    return float(number) * _DURATION_UNITS[unit]


def format_size(nbytes: float) -> str:
    """Render a byte count for reports ("1.2 MB")."""
    for unit in ("TB", "GB", "MB", "KB"):
        threshold = _SIZE_UNITS[unit.lower()]
        if abs(nbytes) >= threshold:
            return f"{nbytes / threshold:.2f} {unit}"
    return f"{nbytes:.0f} B"

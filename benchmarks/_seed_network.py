"""FROZEN pre-optimization network model — the benchmark baseline.

Verbatim copy of ``src/repro/sim/network.py`` as it stood before the
incremental max-min allocator and flow aggregation landed (only the
relative imports were rewritten so the file loads standalone).  Every
flow arrival/completion re-runs full water-filling over *all* active
flows and links, which is the O(F^2 * L) behavior
``test_bench_network.py`` measures the optimized model against.  Do not
"fix" or optimize this file: it exists so the speedup has a stable
denominator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.spans import NULL_SPANS, SpanKind
from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["NIC", "Network", "Flow", "TransferRecord", "MB", "KB"]

KB = 1024.0
MB = 1024.0 * 1024.0

_EPS = 1e-9


class _Link:
    """One direction of a NIC: a capacity shared by the flows crossing it."""

    __slots__ = ("name", "bandwidth", "flows", "bytes_carried")

    def __init__(self, name: str, bandwidth: float):
        self.name = name
        self.bandwidth = float(bandwidth)
        # Insertion-ordered (dict-as-set): the water-filling arithmetic
        # must visit flows in a deterministic order, not id()-hash order.
        self.flows: dict["Flow", None] = {}
        self.bytes_carried = 0.0


class NIC:
    """A node's network interface: an egress link and an ingress link."""

    def __init__(self, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be > 0, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.egress = _Link(f"{name}.egress", bandwidth)
        self.ingress = _Link(f"{name}.ingress", bandwidth)

    def set_bandwidth(self, bandwidth: float) -> None:
        """Reconfigure NIC speed (the paper's ``wondershaper`` sweep)."""
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be > 0, got {bandwidth}")
        self.bandwidth = float(bandwidth)
        self.egress.bandwidth = float(bandwidth)
        self.ingress.bandwidth = float(bandwidth)

    @property
    def bytes_sent(self) -> float:
        return self.egress.bytes_carried

    @property
    def bytes_received(self) -> float:
        return self.ingress.bytes_carried

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NIC {self.name} {self.bandwidth / MB:.1f} MB/s>"


class Flow:
    """A bulk transfer in progress."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "links",
        "done",
        "started_at",
        "tag",
    )

    def __init__(
        self,
        flow_id: int,
        src: NIC,
        dst: NIC,
        size: float,
        done: Event,
        started_at: float,
        tag: str,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.links = (src.egress, dst.ingress)
        self.done = done
        self.started_at = started_at
        self.tag = tag


@dataclass(frozen=True)
class TransferRecord:
    """Ledger entry for one completed transfer (bulk or message)."""

    src: str
    dst: str
    size: float
    started_at: float
    finished_at: float
    kind: str  # "flow", "message", or "local"
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class NetworkConfig:
    """Tuning knobs for the network model."""

    latency: float = 0.0005  # one-way propagation latency, seconds
    message_threshold: float = 64 * KB  # below this, skip the fluid model
    local_copy_rate: float = 4096 * MB  # intra-node memcpy bandwidth
    record_transfers: bool = True
    record_limit: int = 2_000_000
    extra: dict = field(default_factory=dict)


class Network:
    """The cluster fabric: NIC registry plus the fluid flow scheduler."""

    def __init__(self, env: Environment, config: Optional[NetworkConfig] = None):
        self.env = env
        self.config = config or NetworkConfig()
        self._nics: dict[str, NIC] = {}
        # dict-as-ordered-set: iteration order (and with it the fair-share
        # float accumulation order) is start-order of the flows, identical
        # in every process — a plain set iterates in address order, which
        # varies run to run and would break serial/parallel equality.
        self._flows: dict[Flow, None] = {}
        self._flow_ids = itertools.count(1)
        self._last_advance = env.now
        self._timer_version = 0
        self.records: list[TransferRecord] = []
        self.total_bytes = 0.0
        self.message_count = 0
        self.flow_count = 0
        self.spans = NULL_SPANS

    # -- topology ------------------------------------------------------
    def attach(self, name: str, bandwidth: float) -> NIC:
        """Create and register a NIC for node ``name``."""
        if name in self._nics:
            raise SimulationError(f"NIC {name!r} already attached")
        nic = NIC(name, bandwidth)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> NIC:
        return self._nics[name]

    @property
    def nics(self) -> dict[str, NIC]:
        return dict(self._nics)

    # -- transfers -------------------------------------------------------
    def transfer(self, src: NIC, dst: NIC, size: float, tag: str = "") -> Event:
        """Move ``size`` bytes from ``src`` to ``dst``.

        Returns an event that fires when the last byte arrives.  Local
        transfers (same NIC) cost a memcpy; small transfers cost latency
        plus nominal serialization; large transfers enter the fair-share
        fluid model.
        """
        if size < 0:
            raise SimulationError(f"negative transfer size {size}")
        done = self.env.event()
        started = self.env.now
        if src is dst:
            duration = size / self.config.local_copy_rate
            self._complete_later(done, duration, src, dst, size, started, "local", tag)
            return done
        if size <= self.config.message_threshold:
            duration = self.config.latency + size / min(
                src.bandwidth, dst.bandwidth
            )
            self.message_count += 1
            self._complete_later(
                done, duration, src, dst, size, started, "message", tag
            )
            return done
        self._advance()
        flow = Flow(next(self._flow_ids), src, dst, size, done, started, tag)
        self._flows[flow] = None
        for link in flow.links:
            link.flows[flow] = None
        self.flow_count += 1
        self._rebalance()
        return done

    def message(self, src: NIC, dst: NIC, size: float = 1 * KB, tag: str = "") -> Event:
        """A latency-dominated control message, never contention-modeled."""
        if size < 0:
            raise SimulationError(f"negative message size {size}")
        done = self.env.event()
        started = self.env.now
        if src is dst:
            duration = self.config.extra.get("loopback_latency", 0.00005)
        else:
            duration = self.config.latency + size / min(src.bandwidth, dst.bandwidth)
        self.message_count += 1
        self._complete_later(done, duration, src, dst, size, started, "message", tag)
        return done

    # -- internals -------------------------------------------------------
    def _complete_later(
        self,
        done: Event,
        duration: float,
        src: NIC,
        dst: NIC,
        size: float,
        started: float,
        kind: str,
        tag: str,
    ) -> None:
        def _finish(_: Event) -> None:
            self._record(src, dst, size, started, kind, tag)
            done.succeed()

        timer = self.env.timeout(duration)
        timer.callbacks.append(_finish)

    def _record(
        self, src: NIC, dst: NIC, size: float, started: float, kind: str, tag: str
    ) -> None:
        self.total_bytes += size
        src.egress.bytes_carried += size
        if dst is not src:
            dst.ingress.bytes_carried += size
        if self.spans.enabled:
            # Contention-induced slowdown: actual wire time over the
            # uncontended time the same bytes would have taken.
            actual = self.env.now - started
            if src is dst:
                ideal = size / self.config.local_copy_rate
            else:
                ideal = self.config.latency + size / min(
                    src.bandwidth, dst.bandwidth
                )
            self.spans.record(
                SpanKind.NET,
                started,
                self.env.now,
                node=src.name,
                transfer=kind,
                dst=dst.name,
                size=size,
                tag=tag,
                slowdown=round(actual / ideal, 4) if ideal > 0 else 1.0,
            )
        if self.config.record_transfers and len(self.records) < self.config.record_limit:
            self.records.append(
                TransferRecord(
                    src=src.name,
                    dst=dst.name,
                    size=size,
                    started_at=started,
                    finished_at=self.env.now,
                    kind=kind,
                    tag=tag,
                )
            )

    def _advance(self) -> None:
        """Progress all active flows up to the current time."""
        dt = self.env.now - self._last_advance
        self._last_advance = self.env.now
        if dt <= 0:
            return
        for flow in self._flows:
            flow.remaining = max(0.0, flow.remaining - flow.rate * dt)

    def _rebalance(self) -> None:
        """Max-min fair water-filling over all active flows, then re-arm."""
        self._allocate_rates()
        self._arm_timer()

    def _allocate_rates(self) -> None:
        unfrozen = dict.fromkeys(self._flows)
        link_spare: dict[_Link, float] = {}
        link_count: dict[_Link, int] = {}
        for flow in self._flows:
            flow.rate = 0.0
            for link in flow.links:
                link_spare.setdefault(link, link.bandwidth)
                link_count[link] = link_count.get(link, 0) + 1
        while unfrozen:
            # Most-contended link determines the next fair-share level.
            bottleneck = None
            share = float("inf")
            for link, count in link_count.items():
                if count <= 0:
                    continue
                level = link_spare[link] / count
                if level < share - _EPS:
                    share = level
                    bottleneck = link
            if bottleneck is None:
                break
            frozen_now = [f for f in unfrozen if bottleneck in f.links]
            if not frozen_now:  # pragma: no cover - defensive
                break
            for flow in frozen_now:
                flow.rate = share
                unfrozen.pop(flow, None)
                for link in flow.links:
                    link_spare[link] -= share
                    link_count[link] -= 1
            link_count[bottleneck] = 0

    def _arm_timer(self) -> None:
        """Schedule a wake-up at the earliest flow completion."""
        self._timer_version += 1
        version = self._timer_version
        soonest = float("inf")
        for flow in self._flows:
            if flow.rate > _EPS:
                soonest = min(soonest, flow.remaining / flow.rate)
        if soonest == float("inf"):
            return
        timer = self.env.timeout(max(0.0, soonest))
        timer.callbacks.append(lambda _: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a later rebalance
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS * max(1.0, f.size)]
        for flow in finished:
            self._flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
            self._record(
                flow.src,
                flow.dst,
                flow.size,
                flow.started_at,
                "flow",
                flow.tag,
            )
            # Tail latency of the last byte crossing the wire.
            done = flow.done
            tail = self.env.timeout(self.config.latency)
            tail.callbacks.append(lambda _, d=done: d.succeed())
        self._rebalance()

    # -- introspection -----------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def bytes_between(self, src: str, dst: str) -> float:
        """Total recorded bytes moved from node ``src`` to node ``dst``."""
        return sum(
            r.size for r in self.records if r.src == src and r.dst == dst
        )

"""FaaSFlow's core: engines, scheduler, grouping, FaaStore, reclamation."""

from .config import EngineConfig
from .dataflow_engine import DataflowEngine, DataflowSystem
from .faastore import DataPolicy, FaaStorePolicy, RemoteStorePolicy, object_key
from .faults import (
    CancelCause,
    CancelKind,
    FaultDriver,
    FaultInjector,
    FaultPlan,
    FunctionFailure,
    NetworkDegradation,
    NodeCrash,
    ProcessRegistry,
    RetryPolicy,
    TaskCancelled,
)
from .grouping import (
    GroupingConfig,
    GroupingError,
    GroupingResult,
    group_functions,
)
from .master_engine import HyperFlowServerlessSystem, static_critical_exec
from .monolithic import MonolithicSystem
from .reclamation import (
    MemoryUsageHistory,
    ReclamationConfig,
    over_provisioned,
    per_node_quotas,
    workflow_quota,
)
from .runtime import ExecutionResult, FunctionRuntime
from .scheduler import (
    GraphScheduler,
    SchedulerReport,
    hash_partition,
    update_edge_weights,
)
from .switching import is_skipped, selected_case
from .tracing import Kind, TraceEvent, Tracer
from .state import (
    FunctionInfo,
    FunctionState,
    InvocationID,
    InvocationState,
    Placement,
    PlacementError,
    WorkflowStructure,
    new_invocation_id,
)
from .worker_engine import FaaSFlowSystem, WorkerEngine

__all__ = [
    "DataPolicy",
    "DataflowEngine",
    "DataflowSystem",
    "EngineConfig",
    "ExecutionResult",
    "FaaSFlowSystem",
    "FaaStorePolicy",
    "CancelCause",
    "CancelKind",
    "FaultDriver",
    "FaultInjector",
    "FaultPlan",
    "FunctionFailure",
    "NetworkDegradation",
    "NodeCrash",
    "ProcessRegistry",
    "RetryPolicy",
    "TaskCancelled",
    "FunctionInfo",
    "FunctionRuntime",
    "FunctionState",
    "GraphScheduler",
    "GroupingConfig",
    "GroupingError",
    "GroupingResult",
    "group_functions",
    "hash_partition",
    "is_skipped",
    "selected_case",
    "HyperFlowServerlessSystem",
    "InvocationID",
    "InvocationState",
    "MemoryUsageHistory",
    "MonolithicSystem",
    "new_invocation_id",
    "object_key",
    "over_provisioned",
    "per_node_quotas",
    "Placement",
    "PlacementError",
    "ReclamationConfig",
    "RemoteStorePolicy",
    "SchedulerReport",
    "static_critical_exec",
    "TraceEvent",
    "Tracer",
    "Kind",
    "update_edge_weights",
    "WorkerEngine",
    "WorkflowStructure",
    "workflow_quota",
]

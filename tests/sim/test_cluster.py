"""Unit tests for cluster assembly."""

import pytest

from repro.sim.cluster import GB, Cluster, ClusterConfig, NodeConfig
from repro.sim.kernel import Environment, SimulationError
from repro.sim.network import MB


@pytest.fixture
def env():
    return Environment()


class TestClusterShape:
    def test_default_matches_paper_testbed(self, env):
        cluster = Cluster(env)
        assert len(cluster.workers) == 7
        assert cluster.workers[0].config.cores == 8
        assert cluster.workers[0].config.memory == 32 * GB
        assert cluster.storage_node.config.cores == 16

    def test_node_lookup(self, env):
        cluster = Cluster(env)
        assert cluster.node("worker-3").name == "worker-3"
        assert cluster.node("storage") is cluster.storage_node
        with pytest.raises(SimulationError):
            cluster.node("worker-99")

    def test_worker_names(self, env):
        cluster = Cluster(env, ClusterConfig(workers=3))
        assert cluster.worker_names() == ["worker-0", "worker-1", "worker-2"]

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            ClusterConfig(workers=0)
        with pytest.raises(SimulationError):
            NodeConfig(cores=0)
        with pytest.raises(SimulationError):
            ClusterConfig(storage_bandwidth=0)


class TestStorageBandwidth:
    def test_default_bandwidth_applied(self, env):
        cluster = Cluster(env, ClusterConfig(storage_bandwidth=25 * MB))
        assert cluster.storage_node.nic.bandwidth == 25 * MB

    def test_set_storage_bandwidth(self, env):
        cluster = Cluster(env)
        cluster.set_storage_bandwidth(75 * MB)
        assert cluster.storage_node.nic.bandwidth == 75 * MB

    def test_remote_store_behind_storage_nic(self, env):
        cluster = Cluster(env, ClusterConfig(storage_bandwidth=10 * MB))
        worker = cluster.workers[0]
        done = cluster.remote_store.put("k", 10 * MB, src=worker.nic)
        env.run(until=done)
        assert env.now >= 1.0  # bottlenecked by the 10 MB/s storage NIC


class TestFaaStoreQuota:
    def test_quota_pins_memory(self, env):
        cluster = Cluster(env)
        worker = cluster.workers[0]
        worker.set_faastore_quota(1 * GB)
        assert worker.memory.reserved_by_tag("faastore-pool") == pytest.approx(1 * GB)
        assert worker.memstore.quota == 1 * GB

    def test_quota_update_replaces_pool(self, env):
        cluster = Cluster(env)
        worker = cluster.workers[0]
        worker.set_faastore_quota(1 * GB)
        worker.set_faastore_quota(2 * GB)
        assert worker.memory.reserved_by_tag("faastore-pool") == pytest.approx(2 * GB)

    def test_zero_quota_clears_pool(self, env):
        cluster = Cluster(env)
        worker = cluster.workers[0]
        worker.set_faastore_quota(1 * GB)
        worker.set_faastore_quota(0)
        assert worker.memory.reserved_by_tag("faastore-pool") == 0


class TestDataAccounting:
    def test_total_data_moved_excludes_local(self, env):
        cluster = Cluster(env)
        w0, w1 = cluster.workers[0], cluster.workers[1]
        env.run(until=cluster.network.transfer(w0.nic, w1.nic, 5 * MB))
        env.run(until=cluster.network.transfer(w0.nic, w0.nic, 50 * MB))
        assert cluster.total_data_moved == pytest.approx(5 * MB)

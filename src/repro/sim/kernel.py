"""Discrete-event simulation kernel.

This module is the foundation of the cluster substrate: a small,
self-contained discrete-event engine in the style of SimPy.  Simulation
actors (workflow engines, containers, network flows, clients) are written
as Python generator functions that ``yield`` events; the
:class:`Environment` advances a virtual clock and resumes each process
when the event it waits on fires.

Example
-------
>>> env = Environment()
>>> def hello(env, log):
...     yield env.timeout(5.0)
...     log.append(env.now)
>>> log = []
>>> _ = env.process(hello(env, log))
>>> env.run()
>>> log
[5.0]
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

# CPython refcount introspection lets ``step()`` prove that a processed
# Timeout has no remaining referents and can be recycled.  On runtimes
# without ``sys.getrefcount`` the free-list simply stays empty.
_getrefcount = getattr(sys, "getrefcount", None)

# Upper bound on each per-environment free-list; beyond this, processed
# objects are left for the garbage collector as usual.
_POOL_CAP = 128

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach a ``cause`` explaining why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised to exit a process early with a return value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the event queue, not yet processed
PROCESSED = 2  # callbacks have run


class Event:
    """An occurrence at a point in simulated time that processes wait on.

    Events move through three states: *pending* (created, not fired),
    *triggered* (value set, callbacks scheduled), and *processed*
    (callbacks executed).  Waiting processes register themselves in
    :attr:`callbacks`.
    """

    __slots__ = ("env", "callbacks", "_state", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = PENDING
        self._value: Any = None
        self._ok: Optional[bool] = None

    # -- inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> Optional[bool]:
        """Whether the event succeeded.  ``None`` until triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- firing ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def _process_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay", "_cancelled")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        # Born triggered: initialize every slot directly rather than
        # paying for Event.__init__ and then overwriting half of it.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._state = TRIGGERED
        self._value = value
        self._ok = True
        self._cancelled = False
        self.delay = delay
        # _schedule inlined: this is the pool-miss half of the hottest
        # allocation path in the kernel (timeout() handles the pool-hit
        # half), and the extra call level is measurable at millions of
        # timers per run.
        env._eid += 1
        queue = env._queue
        if queue is not None:
            heappush(queue, (env._now + delay, env._eid, self))
        else:
            env._sched_insert(env._now + delay, env._eid, self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Discard the timeout: its callbacks will never run.

        The queue entry becomes a *tombstone*: it is dropped unprocessed
        — no callback invocation, and the simulation clock never
        advances to its deadline.  Under the heap scheduler the entry
        usually stays queued until its scheduled time surfaces (and is
        compacted out in bulk when tombstones come to dominate the
        queue); under the wheel scheduler tombstones are dropped
        bucket-locally when their bucket is loaded.  Either way the
        observable simulation — clock, callback order, final drain time
        — is identical.  This is for timers that get superseded before
        they fire (the network's completion wake-up, a container's
        keep-alive expiry, an invocation's execution watchdog).  The
        caller is responsible for not cancelling a timeout some process
        still waits on (that process would never resume).  Cancelling
        twice is a no-op; cancelling an already-processed timeout is an
        error.
        """
        if self._state == PROCESSED:
            raise SimulationError("cannot cancel a processed timeout")
        if self._cancelled:
            return
        self._cancelled = True
        self.env._note_cancelled_timer()

    def _process_callbacks(self) -> None:
        if self._cancelled:
            # Dropped without running callbacks.  The state still moves
            # to PROCESSED (the lifecycle other kernel paths and the
            # free-list expect) and the flag resets so a pooled reuse
            # starts clean.
            self._cancelled = False
            self.env._cancelled_timers -= 1
            self._state = PROCESSED
            self.callbacks.clear()
            return
        Event._process_callbacks(self)


class _Resume:
    """Minimal queue entry that re-enters one callback without a full Event.

    The kernel schedules these wherever it used to allocate a throwaway
    trampoline :class:`Event` (process bootstrap, resuming a process that
    yielded an already-processed event, interrupt delivery).  A ``_Resume``
    never escapes the kernel, so ``step()`` recycles it through a
    per-environment free-list.  It quacks like a triggered event for the
    one consumer it has: ``Process._resume`` reads ``ok`` and ``_value``.
    """

    __slots__ = ("_callback", "ok", "_value")

    def __init__(self, callback: Callable[["_Resume"], None], ok: bool, value: Any):
        self._callback = callback
        self.ok = ok
        self._value = value

    def _process_callbacks(self) -> None:
        self._callback(self)


class _ConditionValue(dict):
    """Mapping of event -> value for condition events (AllOf / AnyOf)."""


class _Condition(Event):
    """Base for composite events over several child events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self._on_empty()
            return
        if len(self._events) == 1:
            # Single-event fast path: AllOf and AnyOf degenerate to the
            # same "mirror the one child" behavior, so skip the counting
            # machinery and the _collect_values scan entirely.
            event = self._events[0]
            if event.env is not env:
                raise SimulationError("events from different environments")
            if event.processed:
                self._mirror_single(event)
            else:
                event.callbacks.append(self._mirror_single)
            return
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _on_empty(self) -> None:
        """Hook for the zero-event case; AllOf succeeds, AnyOf raises."""
        self.succeed(_ConditionValue())

    def _mirror_single(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if event.ok:
            value = _ConditionValue()
            value[event] = event._value
            self.succeed(value)
        else:
            self.fail(event._value)

    def _collect_values(self) -> _ConditionValue:
        result = _ConditionValue()
        for event in self._events:
            # Timeouts are born triggered; only events whose callbacks ran
            # have actually occurred in simulated time.
            if event.processed and event.ok:
                result[event] = event._value
        return result

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once all child events have fired; fails fast on any failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Fires as soon as any child event fires.

    An ``AnyOf`` over zero events is rejected: "any of nothing" can never
    fire, and silently succeeding (the ``AllOf`` vacuous-truth semantics)
    hides bugs where a waiter list was accidentally empty.
    """

    __slots__ = ()

    def _on_empty(self) -> None:
        raise SimulationError("AnyOf requires at least one event")

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self.succeed(self._collect_values())


class Process(Event):
    """A running generator coroutine.

    A process is itself an event: it triggers (with the generator's return
    value) when the generator exits, so processes can wait on each other.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current simulation time.
        env._schedule_resume(self._resume, True, None)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever the process currently waits on.
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        self.env._schedule_resume(self._resume, False, Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if self._state != PENDING:
            # Stale wake-up: the process finished earlier in this
            # timestep (its awaited value was already queued when an
            # interrupt was scheduled, or two parties interrupted it).
            # Sending into the exhausted generator would re-trigger the
            # event; dropping the delivery is the correct semantics.
            return
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event.ok:
                next_target = self._generator.send(event._value)
            else:
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            env._active_process = None
            self._generator.close()
            self.succeed(stop.value)
            return
        except Interrupt:
            # The process let an interrupt escape: treat as normal exit.
            env._active_process = None
            self.succeed(None)
            return
        except BaseException as error:
            env._active_process = None
            self.fail(error)
            if not self.callbacks:
                # Nobody is waiting for this process; surface the crash.
                env._crashed.append((self, error))
            return
        env._active_process = None
        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, "
                "which is not an Event"
            )
        if next_target._state == PROCESSED:
            # The event already fired; resume immediately (same timestep)
            # through a pooled _Resume instead of a trampoline Event.
            env._schedule_resume(
                self._resume, next_target._ok, next_target._value
            )
        else:
            self._target = next_target
            next_target.callbacks.append(self._resume)


class Environment:
    """Holds the event queue and the simulation clock.

    ``scheduler`` selects the priority structure behind the queue (see
    :mod:`repro.sim.sched`): ``"heap"`` (the default binary heap),
    ``"wheel"`` (a calendar-queue timer wheel with O(1) amortized
    insert and bucket-local tombstone dropping), a factory callable, or
    ``None`` to resolve the process-wide ``FAASFLOW_SCHEDULER`` default.
    Both schedulers realize the exact same ``(when, eid)`` total order,
    so every observable simulation result is bit-identical either way.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_sched",
        "_sched_insert",
        "_is_wheel",
        "_eid",
        "_active_process",
        "_crashed",
        "_timeout_pool",
        "_resume_pool",
        "_cancelled_timers",
        "_compaction_threshold",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        timer_compaction_threshold: int = 64,
        scheduler=None,
    ):
        if timer_compaction_threshold < 1:
            raise SimulationError(
                "timer_compaction_threshold must be >= 1, got "
                f"{timer_compaction_threshold}"
            )
        from .sched import HeapScheduler, WheelScheduler, make_scheduler

        self._now = float(initial_time)
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._crashed: list[tuple[Process, BaseException]] = []
        self._cancelled_timers = 0
        self._compaction_threshold = int(timer_compaction_threshold)
        self._sched = make_scheduler(self, scheduler)
        # The heap's backing list is aliased as ``_queue`` so the inlined
        # dispatch loops (and the hot factories below) keep using
        # C-level heappush/heappop directly.  Under any other scheduler
        # ``_queue`` is None, inserts go through the pre-bound
        # ``_sched_insert``, and dispatch runs the wheel-inlined loop
        # (``_run_wheel``) or the generic interface loop (``_run_sched``).
        self._queue: Optional[list[tuple[float, int, Event]]] = (
            self._sched.heap if type(self._sched) is HeapScheduler else None
        )
        self._sched_insert = self._sched.insert
        self._is_wheel = type(self._sched) is WheelScheduler
        # Free-lists for the two hottest allocations: Timeout events
        # (recycled only once provably unreferenced) and kernel-internal
        # _Resume entries (never escape, always recycled).
        self._timeout_pool: list[Timeout] = []
        self._resume_pool: list[_Resume] = []

    # -- clock -------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def scheduler(self):
        """The live :class:`~repro.sim.sched.Scheduler` instance."""
        return self._sched

    @property
    def scheduler_name(self) -> str:
        """Name of the active scheduler (``"heap"`` or ``"wheel"``)."""
        return self._sched.name

    @property
    def queued_events(self) -> int:
        """Entries queued, including cancelled-but-queued tombstones."""
        return len(self._sched)

    @property
    def timer_compaction_threshold(self) -> int:
        """Cancelled-timer count below which heap compaction never runs.

        Heap-only knob: the wheel scheduler drops tombstones
        bucket-locally and never runs a global compaction pass.
        """
        return self._compaction_threshold

    # -- event factories ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            event = pool.pop()
            event._state = TRIGGERED
            event._ok = True
            event._value = value
            event.delay = delay
            self._eid += 1
            queue = self._queue
            if queue is not None:
                heappush(queue, (self._now + delay, self._eid, event))
            else:
                self._sched_insert(self._now + delay, self._eid, event)
            return event
        return Timeout(self, delay, value)

    def schedule_at(self, when: float, value: Any = None) -> Timeout:
        """Schedule a timeout at an *absolute* simulation time.

        Unlike ``timeout(when - now)``, the heap entry carries ``when``
        exactly — no ``now + delay`` round-trip through floating point —
        so two environments that agree on ``when`` fire the event at
        bit-identical times regardless of what their local clocks read
        when it was scheduled.  This is the injection primitive the shard
        coordinator uses to deliver cross-shard messages with exact
        timestamps, and the network's analytic progress mode uses for
        completion timers.  ``when`` must not be in the past.
        """
        when = float(when)
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when}, clock already at {self._now}"
            )
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            event._state = TRIGGERED
            event._ok = True
            event._value = value
        else:
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = []
            event._state = TRIGGERED
            event._value = value
            event._ok = True
            event._cancelled = False
        event.delay = when - self._now
        self._eid += 1
        queue = self._queue
        if queue is not None:
            heappush(queue, (when, self._eid, event))
        else:
            # The scheduler receives ``when`` exactly as named — the
            # wheel carries full keys in its buckets, so the cross-shard
            # exact-timestamp contract holds under either scheduler.
            self._sched_insert(when, self._eid, event)
        return event

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        queue = self._queue
        if queue is not None:
            heappush(queue, (self._now + delay, self._eid, event))
        else:
            self._sched_insert(self._now + delay, self._eid, event)

    def _schedule_resume(
        self, callback: Callable[[Any], None], ok: bool, value: Any
    ) -> None:
        """Schedule a bare callback re-entry at the current time.

        Replaces the old pattern of allocating a trampoline ``Event`` +
        callback list + succeed/fail just to hop through the queue.
        """
        pool = self._resume_pool
        if pool:
            entry = pool.pop()
            entry._callback = callback
            entry.ok = ok
            entry._value = value
        else:
            entry = _Resume(callback, ok, value)
        self._eid += 1
        queue = self._queue
        if queue is not None:
            heappush(queue, (self._now, self._eid, entry))
        else:
            self._sched_insert(self._now, self._eid, entry)

    def _note_cancelled_timer(self) -> None:
        """Bookkeeping hook for :meth:`Timeout.cancel`.

        Delegates to the scheduler: the heap rebuilds itself without
        tombstones once they pass ``timer_compaction_threshold`` AND
        make up more than half of the queue; the wheel drops tombstones
        bucket-locally and treats this as a no-op.
        """
        self._cancelled_timers += 1
        if self._sched.note_cancelled(self._cancelled_timers):
            self._cancelled_timers = 0

    def _retire_cancelled(self, event: Timeout) -> None:
        """Retire a cancelled timer dropped without being dispatched.

        Same lifecycle a tombstone takes when the dispatch loop pops it:
        the state moves to PROCESSED (what other kernel paths and the
        free-list expect) and the flag resets so a pooled reuse starts
        clean.  The caller recycles separately, so the refcount proof
        in :meth:`_recycle` sees exactly the frames it expects.
        """
        event._cancelled = False
        event._state = PROCESSED
        event.callbacks.clear()
        self._cancelled_timers -= 1

    def peek(self) -> float:
        """Time of the next event that will actually fire, or ``inf``.

        Lazily-cancelled timeouts parked at the head of the queue are
        retired on the way (the scheduler owns the skip — one shared
        implementation for this method and the shard coordinator's
        barrier lookahead): they would otherwise make ``peek`` report a
        time at which nothing observable happens.  The shard
        coordinator's conservative-window protocol depends on this — a
        stale head would both shrink windows needlessly and, worse,
        keep a drained shard looking busy forever.
        """
        return self._sched.peek()

    def step(self) -> None:
        """Process the next live event; raises if the queue is empty.

        Cancelled tombstones ahead of the next live event are retired
        silently, without advancing the clock.  If the queue held only
        tombstones they are all retired and the call returns without
        processing anything.
        """
        sched = self._sched
        if not len(sched):
            raise SimulationError("no scheduled events")
        while True:
            try:
                when, _, event = sched.pop()
            except IndexError:
                # The queue held only tombstones; all retired.
                return
            if type(event) is Timeout and event._cancelled:
                self._retire_cancelled(event)
                self._recycle(event)
                continue
            break
        self._now = when
        event._process_callbacks()
        if self._crashed:
            process, error = self._crashed.pop()
            raise SimulationError(
                f"process {process.name!r} crashed at t={self._now}"
            ) from error
        self._recycle(event)

    def _recycle(self, event: Event) -> None:
        """Return a processed queue entry to its free-list when safe.

        ``_Resume`` entries are kernel-internal and always recyclable.  A
        ``Timeout`` is recycled only when the refcount proves this frame
        holds the sole remaining references (nobody kept the object, put
        it in a condition's ``_events``, or stored it in a result dict).
        """
        cls = type(event)
        if cls is _Resume:
            if len(self._resume_pool) < _POOL_CAP:
                self._resume_pool.append(event)
        elif (
            cls is Timeout
            and _getrefcount is not None
            and len(self._timeout_pool) < _POOL_CAP
            and _getrefcount(event) == 3  # self._recycle arg + local + getrefcount arg
        ):
            self._timeout_pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulation time (run up to and including that
        time) or an :class:`Event` (run until it has been processed, then
        return its value).

        The clock is monotonic: a numeric ``until`` in the past (e.g. a
        second ``run(until=...)`` call with a smaller deadline after the
        first set ``now`` to its deadline) is a no-op — nothing is
        processed and ``now`` is left where it was, never rewound.

        Cancelled tombstones are dropped without running callbacks and
        without advancing the clock, so the observable clock trajectory
        (including the final ``now`` after a full drain) is identical
        under every scheduler and independent of compaction timing.
        """
        queue = self._queue
        if queue is None:
            if self._is_wheel:
                return self._run_wheel(until)
            return self._run_sched(until)
        # The dispatch body below is step() inlined (including the
        # tombstone drop and free-list recycling) — the per-event
        # method-call overhead is measurable at millions of events per
        # run.  Keep the copies in sync with step()/_recycle() and the
        # generic loop in _run_sched().
        crashed = self._crashed
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        if isinstance(until, Event):
            stop_event = until
            if not stop_event.processed:
                # run() is a waiter: a failure of the awaited event is
                # handled (re-raised below), not an unhandled crash.
                stop_event.callbacks.append(lambda _event: None)
            while stop_event._state != PROCESSED:
                if not queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                    )
                when, _, event = heappop(queue)
                cls = type(event)
                if cls is Timeout and event._cancelled:
                    event._cancelled = False
                    event._state = PROCESSED
                    event.callbacks.clear()
                    self._cancelled_timers -= 1
                    if (
                        _getrefcount is not None
                        and len(timeout_pool) < _POOL_CAP
                        and _getrefcount(event) == 2  # loop local + getrefcount arg
                    ):
                        timeout_pool.append(event)
                    continue
                self._now = when
                event._process_callbacks()
                if crashed:
                    process, error = crashed.pop()
                    raise SimulationError(
                        f"process {process.name!r} crashed at t={self._now}"
                    ) from error
                if cls is _Resume:
                    if len(resume_pool) < _POOL_CAP:
                        resume_pool.append(event)
                elif (
                    cls is Timeout
                    and _getrefcount is not None
                    and len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
            if stop_event.ok:
                return stop_event._value
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            # Deadline already in the past: never rewind the clock.
            return None
        while queue and queue[0][0] <= deadline:
            when, _, event = heappop(queue)
            cls = type(event)
            if cls is Timeout and event._cancelled:
                event._cancelled = False
                event._state = PROCESSED
                event.callbacks.clear()
                self._cancelled_timers -= 1
                if (
                    _getrefcount is not None
                    and len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
                continue
            self._now = when
            event._process_callbacks()
            if crashed:
                process, error = crashed.pop()
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now}"
                ) from error
            if cls is _Resume:
                if len(resume_pool) < _POOL_CAP:
                    resume_pool.append(event)
            elif (
                cls is Timeout
                and _getrefcount is not None
                and len(timeout_pool) < _POOL_CAP
                and _getrefcount(event) == 2  # loop local + getrefcount arg
            ):
                timeout_pool.append(event)
        if deadline != float("inf"):
            self._now = deadline
        return None

    def _run_wheel(self, until: Optional[float | Event]) -> Any:
        """The ``run`` dispatch loop with the wheel's hot path inlined.

        Mirrors the inlined heap loops in :meth:`run`: head selection
        (active-bucket tail vs. near-heap minimum) happens right here
        instead of through two scheduler method calls per event — at
        millions of events per run the calls alone cost more than the
        extraction.  Bucket refills still go through
        ``WheelScheduler._load_next`` (amortized: once per bucket, not
        per event).  The ``_cur``/``_near`` lists are stable objects
        filled in place, so the local aliases below stay valid across
        refills.  Keep in sync with step()/_recycle() and the wheel's
        own pop()/pop_until().
        """
        sched = self._sched
        cur = sched._cur
        near = sched._near
        load_next = sched._load_next
        crashed = self._crashed
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        if isinstance(until, Event):
            stop_event = until
            if not stop_event.processed:
                stop_event.callbacks.append(lambda _event: None)
            while stop_event._state != PROCESSED:
                # Head select: tail of the sorted active bucket unless
                # the near heap holds something earlier.  No lingering
                # entry-tuple locals — the refcount proofs below need
                # the key tuple gone by the time they run.
                if cur:
                    if near and near[0] < cur[-1]:
                        when, _, event = heappop(near)
                    else:
                        when, _, event = cur.pop()
                elif near:
                    when, _, event = heappop(near)
                else:
                    if not load_next():
                        raise SimulationError(
                            "event queue drained before the awaited event fired"
                        )
                    continue
                cls = type(event)
                if cls is Timeout and event._cancelled:
                    event._cancelled = False
                    event._state = PROCESSED
                    event.callbacks.clear()
                    self._cancelled_timers -= 1
                    if (
                        _getrefcount is not None
                        and len(timeout_pool) < _POOL_CAP
                        and _getrefcount(event) == 2  # loop local + getrefcount arg
                    ):
                        timeout_pool.append(event)
                    continue
                self._now = when
                event._process_callbacks()
                if crashed:
                    process, error = crashed.pop()
                    raise SimulationError(
                        f"process {process.name!r} crashed at t={self._now}"
                    ) from error
                if cls is _Resume:
                    if len(resume_pool) < _POOL_CAP:
                        resume_pool.append(event)
                elif (
                    cls is Timeout
                    and _getrefcount is not None
                    and len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
            if stop_event.ok:
                return stop_event._value
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            return None
        while True:
            if cur:
                if near and near[0] < cur[-1]:
                    if near[0][0] > deadline:
                        break
                    when, _, event = heappop(near)
                else:
                    if cur[-1][0] > deadline:
                        break
                    when, _, event = cur.pop()
            elif near:
                if near[0][0] > deadline:
                    break
                when, _, event = heappop(near)
            else:
                if not load_next():
                    break
                continue
            cls = type(event)
            if cls is Timeout and event._cancelled:
                event._cancelled = False
                event._state = PROCESSED
                event.callbacks.clear()
                self._cancelled_timers -= 1
                if (
                    _getrefcount is not None
                    and len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
                continue
            self._now = when
            event._process_callbacks()
            if crashed:
                process, error = crashed.pop()
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now}"
                ) from error
            if cls is _Resume:
                if len(resume_pool) < _POOL_CAP:
                    resume_pool.append(event)
            elif (
                cls is Timeout
                and _getrefcount is not None
                and len(timeout_pool) < _POOL_CAP
                and _getrefcount(event) == 2  # loop local + getrefcount arg
            ):
                timeout_pool.append(event)
        if deadline != float("inf"):
            self._now = deadline
        return None

    def _run_sched(self, until: Optional[float | Event]) -> Any:
        """The ``run`` dispatch loop for non-heap schedulers.

        Same semantics as the inlined heap loops above, driven through
        the :class:`~repro.sim.sched.Scheduler` interface.  Tombstones
        that survived bucket-local dropping (cancelled after their
        bucket was loaded) are retired here, clock untouched.
        """
        sched = self._sched
        crashed = self._crashed
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        if isinstance(until, Event):
            stop_event = until
            if not stop_event.processed:
                stop_event.callbacks.append(lambda _event: None)
            pop = sched.pop
            while stop_event._state != PROCESSED:
                try:
                    when, _, event = pop()
                except IndexError:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                    ) from None
                cls = type(event)
                if cls is Timeout and event._cancelled:
                    event._cancelled = False
                    event._state = PROCESSED
                    event.callbacks.clear()
                    self._cancelled_timers -= 1
                    if (
                        _getrefcount is not None
                        and len(timeout_pool) < _POOL_CAP
                        and _getrefcount(event) == 2  # loop local + getrefcount arg
                    ):
                        timeout_pool.append(event)
                    continue
                self._now = when
                event._process_callbacks()
                if crashed:
                    process, error = crashed.pop()
                    raise SimulationError(
                        f"process {process.name!r} crashed at t={self._now}"
                    ) from error
                if cls is _Resume:
                    if len(resume_pool) < _POOL_CAP:
                        resume_pool.append(event)
                elif (
                    cls is Timeout
                    and _getrefcount is not None
                    and len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
            if stop_event.ok:
                return stop_event._value
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            return None
        pop_until = sched.pop_until
        while True:
            entry = pop_until(deadline)
            if entry is None:
                break
            when, _, event = entry
            cls = type(event)
            if cls is Timeout and event._cancelled:
                event._cancelled = False
                event._state = PROCESSED
                event.callbacks.clear()
                self._cancelled_timers -= 1
                del entry  # release the key tuple so the proof below holds
                if (
                    _getrefcount is not None
                    and len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
                continue
            self._now = when
            event._process_callbacks()
            if crashed:
                process, error = crashed.pop()
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now}"
                ) from error
            if cls is _Resume:
                if len(resume_pool) < _POOL_CAP:
                    resume_pool.append(event)
            elif cls is Timeout and _getrefcount is not None:
                del entry  # release the key tuple before the refcount proof
                if (
                    len(timeout_pool) < _POOL_CAP
                    and _getrefcount(event) == 2  # loop local + getrefcount arg
                ):
                    timeout_pool.append(event)
        if deadline != float("inf"):
            self._now = deadline
        return None

"""Sharded cluster simulation with conservative time-window synchronization.

The cluster model has the shape Netherite and DataFlower exploit in real
engines: almost everything (container lifecycles, FaaStore traffic,
engine scheduling) is node-local, and only inter-node network traffic
couples nodes.  This module partitions a simulation into S *shards*,
each running its own :class:`~repro.sim.kernel.Environment` with the
unmodified kernel, and synchronizes them with classic conservative
(CMB-style) time windows:

- The **lookahead** ``L`` is the minimum latency of any cross-shard
  interaction (by default the network's propagation latency): a shard
  processing an event at time ``t`` can only influence another shard at
  ``t + L`` or later.
- Each round, the coordinator collects every *sender* shard's
  next-event time ``N_i`` and grants a window ``W = min(N_i) + L``.
  Every shard runs independently to ``W``; any message it emits carries
  a timestamp ``>= emit_time + L >= W``, so no shard can receive a
  message in its own past.  Shards that declare they will never send
  (``may_send = False``) do not constrain the window, which lets
  closed workloads run straight to drain in a single window.
- Cross-shard messages are exchanged **only at barriers**, with exact
  timestamps, and injected into the receiving shard through
  :meth:`Environment.schedule_at` — absolute-time scheduling, so the
  receiver fires the event at the bit-exact timestamp the sender named.

Two granularities are provided:

- **Node-granular** network sharding (:func:`run_network_sharded`):
  NICs are partitioned across shards, each shard runs the fluid network
  model in ``progress="analytic"`` mode (byte trajectories independent
  of the global event cadence — see ``network.py``), and flows whose
  endpoints land in different shards are simulated source-side against
  a proxy NIC with their accounting shipped at barriers.  When the
  partition keeps traffic shard-local (the aligned case), merged
  records are **bit-identical** to a single-process analytic run; when
  traffic crosses shards, the source shard sees only its own contention
  for the remote ingress link and results may diverge — the merge
  reports ``cross_flows`` / ``divergence_risk`` counters and
  ``strict=True`` refuses such partitions outright.
- **Cell-granular** workflow sharding (:func:`run_workflow_cells`):
  full engine runs (MasterSP or WorkerSP) cannot be split at node
  boundaries without losing exactness — the remote store's slot queue
  and the storage NIC are zero-lookahead global couplings — so whole
  independent scenarios ("cells") are partitioned across shard workers
  via the PR-1 :class:`~repro.parallel.ParallelRunner` machinery, with
  each cell's invocation-id range pinned by
  :func:`~repro.core.state.reset_invocation_ids` so records are
  bit-identical no matter how many shards ran them.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Optional, Sequence

from .kernel import Environment, SimulationError
from .network import MB, Network, NetworkConfig, TransferRecord

__all__ = [
    "ShardAPI",
    "ShardCoordinator",
    "partition_nodes",
    "run_network_single",
    "run_network_sharded",
    "run_workflow_cells",
    "make_workflow_cell",
    "DEFAULT_LOOKAHEAD",
]

_INF = float("inf")

# Matches NetworkConfig.latency — the one-way propagation latency is the
# soonest any cross-shard interaction can take effect.
DEFAULT_LOOKAHEAD = NetworkConfig.latency

# Every cell owns a disjoint invocation-id range this wide.
_CELL_ID_STRIDE = 10_000_000

# Same philosophy as ParallelRunner: environments that cannot fork/spawn
# (sandboxes, restricted CI runners) fall back to in-process execution
# rather than failing the run.
_FALLBACK_ERRORS = (OSError, ImportError, PermissionError)


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def partition_nodes(
    names: Sequence[str], shards: int, group_size: int = 1
) -> list[list[str]]:
    """Split ``names`` into ``shards`` contiguous, group-aligned parts.

    ``group_size`` is the coupling unit: nodes inside one group exchange
    traffic, so a group must never straddle a shard boundary (that is
    what keeps the aligned sharded run exact).  Whole groups are dealt
    to shards as evenly as possible, preserving order.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    if group_size < 1:
        raise SimulationError(f"group_size must be >= 1, got {group_size}")
    names = list(names)
    groups = [names[i : i + group_size] for i in range(0, len(names), group_size)]
    if shards > len(groups):
        raise SimulationError(
            f"cannot split {len(groups)} group(s) of {group_size} node(s) "
            f"across {shards} shards"
        )
    per, extra = divmod(len(groups), shards)
    parts: list[list[str]] = []
    cursor = 0
    for index in range(shards):
        take = per + (1 if index < extra else 0)
        chunk = groups[cursor : cursor + take]
        cursor += take
        parts.append([name for group in chunk for name in group])
    return parts


# ---------------------------------------------------------------------------
# Shard programs and hosts
# ---------------------------------------------------------------------------

class ShardAPI:
    """Capabilities a shard program gets from its host.

    ``send`` queues a cross-shard message for barrier delivery.  The
    timestamp must respect the lookahead (``ts >= now + L``): that is
    the conservative contract that makes the coordinator's windows safe.
    """

    def __init__(self, env: Environment, shard_id: int, lookahead: float):
        self.env = env
        self.shard_id = shard_id
        self.lookahead = lookahead
        self._outbox: list[tuple[int, float, Any]] = []

    def send(self, dst_shard: int, payload: Any, ts: Optional[float] = None) -> None:
        earliest = self.env.now + self.lookahead
        if ts is None:
            ts = earliest
        elif ts < earliest:
            raise SimulationError(
                f"cross-shard send at t={self.env.now} with ts={ts} violates "
                f"lookahead {self.lookahead} (earliest legal ts {earliest})"
            )
        self._outbox.append((dst_shard, ts, payload))


class _ShardHost:
    """One shard: an environment, a program, and the window protocol.

    A *program* is any object built by ``factory(env, api, payload)``
    exposing: ``may_send`` (bool — will this shard ever emit cross-shard
    messages?), ``on_message(payload, ts)`` (delivery hook; call
    ``api.env.schedule_at(ts, ...)`` for simulated delivery, or apply
    immediately for accounting-only traffic), optionally
    ``pull_outbox()`` (extra messages beyond ``api.send``), and
    ``result()`` (picklable final state).
    """

    def __init__(
        self,
        shard_id: int,
        factory,
        payload,
        lookahead: float,
        scheduler: Optional[str] = None,
    ):
        self.env = Environment(scheduler=scheduler)
        self.api = ShardAPI(self.env, shard_id, lookahead)
        self.program = factory(self.env, self.api, payload)

    def hello(self) -> tuple[float, bool]:
        return (self.env.peek(), bool(getattr(self.program, "may_send", False)))

    def window(
        self, until: Optional[float], inbox: list[tuple[float, Any]]
    ) -> tuple[float, bool, list[tuple[int, float, Any]]]:
        for ts, payload in inbox:
            self.program.on_message(payload, ts)
        if until is None:
            self.env.run()
        else:
            self.env.run(until=until)
        outbox = list(self.api._outbox)
        self.api._outbox.clear()
        pull = getattr(self.program, "pull_outbox", None)
        if pull is not None:
            outbox.extend(pull())
        return (
            self.env.peek(),
            bool(getattr(self.program, "may_send", False)),
            outbox,
        )

    def finish(self) -> Any:
        return self.program.result()


def _shard_worker_main(
    conn, shard_id: int, factory, payload, lookahead: float, scheduler=None
):
    """Entry point of one shard worker process (module-level: spawn-safe)."""
    try:
        host = _ShardHost(shard_id, factory, payload, lookahead, scheduler)
        conn.send(("ok", host.hello()))
    except BaseException as error:  # noqa: BLE001 - shipped to coordinator
        conn.send(("err", f"{type(error).__name__}: {error}"))
        return
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            return
        try:
            if cmd[0] == "window":
                conn.send(("ok", host.window(cmd[1], cmd[2])))
            elif cmd[0] == "finish":
                conn.send(("ok", host.finish()))
                return
            else:
                conn.send(("err", f"unknown command {cmd[0]!r}"))
                return
        except BaseException as error:  # noqa: BLE001
            conn.send(("err", f"{type(error).__name__}: {error}"))
            return


# ---------------------------------------------------------------------------
# Backends: in-process hosts or one worker process per shard
# ---------------------------------------------------------------------------

class _LocalBackend:
    name = "inproc"

    def __init__(
        self,
        specs: list[tuple],
        lookahead: float,
        scheduler: Optional[str] = None,
    ):
        self.hosts = [
            _ShardHost(i, factory, payload, lookahead, scheduler)
            for i, (factory, payload) in enumerate(specs)
        ]

    def hello_all(self):
        return [host.hello() for host in self.hosts]

    def window_all(self, cmds):
        return [
            host.window(until, inbox)
            for host, (until, inbox) in zip(self.hosts, cmds)
        ]

    def finish_all(self):
        return [host.finish() for host in self.hosts]

    def close(self):
        self.hosts = []


class _ProcessBackend:
    name = "process"

    def __init__(
        self,
        specs: list[tuple],
        lookahead: float,
        scheduler: Optional[str] = None,
    ):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.procs = []
        self.conns = []
        try:
            for i, (factory, payload) in enumerate(specs):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child, i, factory, payload, lookahead, scheduler),
                    daemon=True,
                )
                proc.start()
                child.close()
                self.procs.append(proc)
                self.conns.append(parent)
        except BaseException:
            self.close()
            raise

    def _recv(self, conn):
        status, value = conn.recv()
        if status != "ok":
            raise SimulationError(f"shard worker failed: {value}")
        return value

    def hello_all(self):
        return [self._recv(conn) for conn in self.conns]

    def window_all(self, cmds):
        # Send every command before the first receive so the workers run
        # their windows concurrently.
        for conn, (until, inbox) in zip(self.conns, cmds):
            conn.send(("window", until, inbox))
        return [self._recv(conn) for conn in self.conns]

    def finish_all(self):
        for conn in self.conns:
            conn.send(("finish",))
        return [self._recv(conn) for conn in self.conns]

    def close(self):
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self.procs = []
        self.conns = []


class ShardCoordinator:
    """Drives S shard programs through conservative time windows.

    ``programs`` is a list of ``(factory, payload)`` pairs, one per
    shard; factories must be module-level callables (they cross the
    process boundary).  ``processes=False`` runs every shard in-process
    (same protocol, no concurrency) — the default for tests.
    """

    def __init__(
        self,
        programs: list[tuple],
        lookahead: float = DEFAULT_LOOKAHEAD,
        processes: bool = True,
        max_rounds: int = 1_000_000,
        scheduler: Optional[str] = None,
    ):
        if lookahead <= 0:
            raise SimulationError(f"lookahead must be > 0, got {lookahead}")
        if not programs:
            raise SimulationError("need at least one shard program")
        self.programs = list(programs)
        self.lookahead = float(lookahead)
        self.processes = processes
        self.max_rounds = max_rounds
        # Scheduler *name* (picklable) for every shard environment; None
        # resolves the process-wide FAASFLOW_SCHEDULER default in each
        # worker.  Barrier injection uses schedule_at's exact absolute
        # timestamps, which both schedulers honor bit-identically.
        self.scheduler = scheduler

    def run(self) -> dict:
        backend = None
        states = None
        if self.processes:
            try:
                backend = _ProcessBackend(
                    self.programs, self.lookahead, self.scheduler
                )
                states = backend.hello_all()
            except _FALLBACK_ERRORS:
                if backend is not None:
                    backend.close()
                backend = None
        if backend is None:
            backend = _LocalBackend(
                self.programs, self.lookahead, self.scheduler
            )
            states = backend.hello_all()
        try:
            return self._drive(backend, states)
        finally:
            backend.close()

    def _drive(self, backend, states) -> dict:
        shard_count = len(self.programs)
        pending: list[list[tuple[float, Any]]] = [[] for _ in range(shard_count)]
        rounds = 0
        messages = 0
        while True:
            # Effective next event: the shard's own queue head or the
            # earliest undelivered message headed its way.
            eff = []
            for i, (peek, _may) in enumerate(states):
                nxt = peek
                for ts, _payload in pending[i]:
                    if ts < nxt:
                        nxt = ts
                eff.append(nxt)
            if all(nxt == _INF for nxt in eff):
                break
            senders = [i for i, (_peek, may) in enumerate(states) if may]
            if senders:
                horizon = min(eff[i] for i in senders)
                window = None if horizon == _INF else horizon + self.lookahead
            else:
                # Nobody will ever emit: every shard is causally closed
                # and can run to drain in one window.
                window = None
            inboxes = pending
            pending = [[] for _ in range(shard_count)]
            for inbox in inboxes:
                inbox.sort(key=lambda entry: entry[0])
            results = backend.window_all(
                [(window, inboxes[i]) for i in range(shard_count)]
            )
            rounds += 1
            if rounds > self.max_rounds:
                raise SimulationError(
                    f"shard barrier protocol exceeded {self.max_rounds} rounds"
                )
            states = []
            for peek, may, outbox in results:
                states.append((peek, may))
                for dst, ts, payload in outbox:
                    if not 0 <= dst < shard_count:
                        raise SimulationError(
                            f"cross-shard message to unknown shard {dst}"
                        )
                    pending[dst].append((ts, payload))
                    messages += 1
        outputs = backend.finish_all()
        return {
            "results": outputs,
            "rounds": rounds,
            "messages": messages,
            "backend": backend.name,
        }


# ---------------------------------------------------------------------------
# Node-granular network sharding
# ---------------------------------------------------------------------------

class _NetworkShardProgram:
    """Runs one shard of the fluid network model.

    The payload carries this shard's nodes, the full node→shard map,
    and the local slice of a transfer plan with *absolute* start times
    (``(at, src, dst, size)`` tuples).  Flows to nodes owned by other
    shards run against remote proxy NICs; their completion records ship
    at barriers as accounting-only messages (``may_send`` stays False —
    byte counters tolerate late delivery, so they never constrain the
    window).
    """

    def __init__(self, env: Environment, api: ShardAPI, payload: dict):
        self.env = env
        self.api = api
        net_kwargs = dict(payload.get("net_kwargs") or {})
        net_kwargs["progress"] = "analytic"
        self.net = Network(env, NetworkConfig(**net_kwargs))
        self.telemetry = None
        if payload.get("telemetry"):
            from ..obs.telemetry import MetricsRegistry

            # One registry per shard: network metrics are labeled by the
            # owning source node, so the per-shard label-sets are
            # disjoint and the merged snapshot is value-identical to a
            # single-process run's (ships at drain via result()).
            self.telemetry = MetricsRegistry(clock=lambda: env.now)
            self.net.telemetry = self.telemetry
        self.node_to_shard = payload["node_to_shard"]
        bandwidth = payload["bandwidth"]
        local = payload["local_nodes"]
        local_set = set(local)
        for name in local:
            self.net.attach(name, bandwidth)
        proxied: set[str] = set()
        for _at, _src, dst, _size in payload["plan"]:
            if dst not in local_set and dst not in proxied:
                proxied.add(dst)
                self.net.attach_remote(dst, bandwidth)
        nic = self.net.nic
        transfer = self.net.transfer
        for at, src, dst, size in payload["plan"]:
            event = env.schedule_at(at)
            event.callbacks.append(
                lambda _e, s=nic(src), d=nic(dst), z=size: transfer(s, d, z)
            )
        self.may_send = False

    def pull_outbox(self):
        box = self.net.cross_outbox
        if not box:
            return []
        out = [
            (
                self.node_to_shard[rec.dst],
                rec.finished_at,
                ("ingest", (rec.src, rec.dst, rec.size, rec.started_at,
                            rec.finished_at, rec.kind, rec.tag)),
            )
            for rec in box
        ]
        del box[:]
        return out

    def on_message(self, payload: Any, ts: float) -> None:
        kind, data = payload
        if kind == "ingest":
            # Accounting-only: applied immediately, not simulated — the
            # receiving shard's clock may already be past ``ts``.
            self.net.ingest_remote(TransferRecord(*data))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown network shard message {kind!r}")

    def result(self) -> dict:
        net = self.net
        return {
            "records": [
                (r.src, r.dst, r.size, r.started_at, r.finished_at, r.kind, r.tag)
                for r in net.records
            ],
            "total_bytes": net.total_bytes,
            "nonlocal_bytes": net.nonlocal_bytes,
            "message_count": net.message_count,
            "flow_count": net.flow_count,
            "remote_ingest_count": net.remote_ingest_count,
            "nic_bytes": {
                name: (n.bytes_sent, n.bytes_received)
                for name, n in net.nics.items()
                if not n.remote
            },
            "now": self.env.now,
            "telemetry": (
                self.telemetry.snapshot()
                if self.telemetry is not None
                else None
            ),
        }


def _network_shard_factory(env, api, payload):
    return _NetworkShardProgram(env, api, payload)


def run_network_single(
    plan: Sequence[tuple],
    node_names: Sequence[str],
    bandwidth: float = 100 * MB,
    net_kwargs: Optional[dict] = None,
    telemetry: bool = False,
    scheduler: Optional[str] = None,
) -> dict:
    """Single-environment analytic reference for a shardable plan.

    Uses the same absolute-time scheduling as the sharded path, so a
    shard-aligned plan produces bit-identical records either way —
    under either kernel scheduler.
    """
    env = Environment(scheduler=scheduler)
    kwargs = dict(net_kwargs or {})
    kwargs["progress"] = "analytic"
    net = Network(env, NetworkConfig(**kwargs))
    registry = None
    if telemetry:
        from ..obs.telemetry import MetricsRegistry

        registry = MetricsRegistry(clock=lambda: env.now)
        net.telemetry = registry
    for name in node_names:
        net.attach(name, bandwidth)
    nic = net.nic
    transfer = net.transfer
    for at, src, dst, size in plan:
        event = env.schedule_at(at)
        event.callbacks.append(
            lambda _e, s=nic(src), d=nic(dst), z=size: transfer(s, d, z)
        )
    env.run()
    return {
        "records": sorted(
            (r.src, r.dst, r.size, r.started_at, r.finished_at, r.kind, r.tag)
            for r in net.records
        ),
        "total_bytes": net.total_bytes,
        "nonlocal_bytes": net.nonlocal_bytes,
        "message_count": net.message_count,
        "flow_count": net.flow_count,
        "nic_bytes": {
            name: (n.bytes_sent, n.bytes_received) for name, n in net.nics.items()
        },
        "makespan": env.now,
        "shards": 1,
        "rounds": 0,
        "cross_messages": 0,
        "cross_flows": 0,
        "divergence_risk": 0,
        "backend": "single",
        "telemetry": registry.snapshot() if registry is not None else None,
    }


def _divergence_risk(records: list[tuple], node_to_shard: dict) -> int:
    """Count time-overlapping ingress sharings a source shard can't see.

    A cross-shard flow is simulated against a proxy of the remote
    ingress link; if another shard (including the owner) pushed traffic
    into the same node at an overlapping time, single-process
    water-filling would have coupled them and the sharded result may
    diverge.  Purely a post-merge diagnostic.
    """
    by_dst: dict[str, list[tuple[float, float, int]]] = {}
    for src, dst, _size, started, finished, kind, _tag in records:
        if kind != "flow":
            continue
        by_dst.setdefault(dst, []).append(
            (started, finished, node_to_shard[src])
        )
    risky = 0
    for dst, intervals in by_dst.items():
        shards_present = {shard for _s, _f, shard in intervals}
        if len(shards_present) < 2:
            continue
        intervals.sort()
        for i, (start_i, finish_i, shard_i) in enumerate(intervals):
            for start_j, finish_j, shard_j in intervals[i + 1 :]:
                if start_j >= finish_i:
                    break
                if shard_j != shard_i:
                    risky += 1
    return risky


def run_network_sharded(
    plan: Sequence[tuple],
    node_names: Sequence[str],
    shards: int,
    bandwidth: float = 100 * MB,
    group_size: int = 1,
    lookahead: Optional[float] = None,
    processes: bool = True,
    strict: bool = False,
    net_kwargs: Optional[dict] = None,
    telemetry: bool = False,
    scheduler: Optional[str] = None,
) -> dict:
    """Run a transfer plan across ``shards`` shard environments.

    ``plan`` entries are ``(at, src, dst, size)`` with absolute start
    times and node *names*.  ``shards=1`` short-circuits to
    :func:`run_network_single` — one environment, no coordinator, no
    worker processes.  ``strict=True`` raises if any flow crosses a
    shard boundary (the partition was supposed to be aligned).
    ``telemetry=True`` collects a per-shard metrics registry, ships the
    snapshots at drain, and merges them in shard order — value-identical
    to the single-process snapshot because every network metric is
    labeled by its owning source node.
    """
    if shards == 1:
        return run_network_single(
            plan,
            node_names,
            bandwidth,
            net_kwargs,
            telemetry=telemetry,
            scheduler=scheduler,
        )
    parts = partition_nodes(node_names, shards, group_size)
    node_to_shard = {
        name: index for index, part in enumerate(parts) for name in part
    }
    cfg = NetworkConfig(**dict(net_kwargs or {}, progress="analytic"))
    look = cfg.latency if lookahead is None else lookahead
    payloads = []
    for index, part in enumerate(parts):
        local_set = set(part)
        payloads.append(
            {
                "local_nodes": part,
                "plan": [entry for entry in plan if entry[1] in local_set],
                "bandwidth": bandwidth,
                "node_to_shard": node_to_shard,
                "net_kwargs": dict(net_kwargs or {}),
                "telemetry": telemetry,
            }
        )
    coordinator = ShardCoordinator(
        [(_network_shard_factory, payload) for payload in payloads],
        lookahead=look,
        processes=processes,
        scheduler=scheduler,
    )
    outcome = coordinator.run()
    records: list[tuple] = []
    totals = {
        "total_bytes": 0.0,
        "nonlocal_bytes": 0.0,
        "message_count": 0,
        "flow_count": 0,
    }
    nic_bytes: dict[str, tuple[float, float]] = {}
    makespan = 0.0
    ingests = 0
    for shard_result in outcome["results"]:
        records.extend(shard_result["records"])
        for key in totals:
            totals[key] += shard_result[key]
        nic_bytes.update(shard_result["nic_bytes"])
        ingests += shard_result["remote_ingest_count"]
        if shard_result["now"] > makespan:
            makespan = shard_result["now"]
    records.sort()
    cross = sum(
        1
        for src, dst, _size, _st, _fin, kind, _tag in records
        if kind == "flow" and node_to_shard[src] != node_to_shard[dst]
    )
    if strict and cross:
        raise SimulationError(
            f"strict sharded run saw {cross} cross-shard flow(s); "
            "partition is not aligned with the traffic (check group_size)"
        )
    return {
        "records": records,
        **totals,
        "nic_bytes": nic_bytes,
        "makespan": makespan,
        "shards": shards,
        "rounds": outcome["rounds"],
        "cross_messages": outcome["messages"],
        "cross_flows": cross,
        "remote_ingests": ingests,
        "divergence_risk": (
            _divergence_risk(records, node_to_shard) if cross else 0
        ),
        "backend": outcome["backend"],
        "partition": [list(part) for part in parts],
        "telemetry": _merged_shard_telemetry(outcome["results"]),
    }


def _merged_shard_telemetry(results: Sequence[dict]) -> Optional[dict]:
    """Merge per-shard telemetry snapshots in shard order."""
    snapshots = [r.get("telemetry") for r in results]
    if not any(s is not None for s in snapshots):
        return None
    from ..obs.telemetry import merge_snapshots

    return merge_snapshots(s for s in snapshots if s is not None)


# ---------------------------------------------------------------------------
# Cell-granular workflow sharding
# ---------------------------------------------------------------------------

def make_workflow_cell(
    workload,
    engine: str = "worker",
    seed: int = 13,
    invocations: int = 3,
    workers: int = 3,
    bandwidth_mb: float = 50.0,
    **extra,
) -> dict:
    """Describe one independent engine scenario (picklable spec).

    ``workload`` is a benchmark name (``"video-ffmpeg"``) or a tuple
    ``("layered_random", {"seed": 3, ...})`` naming a builder in
    ``repro.workloads.synthetic`` plus its kwargs.
    """
    return {
        "workload": workload,
        "engine": engine,
        "seed": seed,
        "invocations": invocations,
        "workers": workers,
        "bandwidth_mb": bandwidth_mb,
        **extra,
    }


def _build_cell_dag(workload):
    if isinstance(workload, (tuple, list)):
        kind = workload[0]
        kwargs = dict(workload[1]) if len(workload) > 1 else {}
        from ..workloads import synthetic

        try:
            builder = getattr(synthetic, kind)
        except AttributeError:
            raise SimulationError(f"unknown synthetic builder {kind!r}") from None
        return builder(**kwargs)
    from ..workloads.registry import build

    try:
        return build(workload)
    except KeyError:
        from pathlib import Path

        path = Path(workload)
        if path.exists():
            from ..wdl import load_workflow

            return load_workflow(path)
        raise SimulationError(
            f"{workload!r} is neither a benchmark name nor a WDL file"
        ) from None


def _run_workflow_cell(spec: dict) -> dict:
    """Run one cell (pool-shippable: module-level, lazy heavy imports)."""
    from ..core.state import reset_invocation_ids
    from ..runner import _SCALAR_FIELDS, run_workflow

    spec = dict(spec)
    cell_index = spec.pop("cell_index", 0)
    workload = spec.pop("workload")
    # Deterministic, disjoint id range per cell: records come out
    # identical no matter which shard worker ran the cell.
    reset_invocation_ids(cell_index * _CELL_ID_STRIDE + 1)
    dag = _build_cell_dag(workload)
    summary = run_workflow(dag, **spec)
    out = {field: summary[field] for field in _SCALAR_FIELDS}
    out.update(
        cell_index=cell_index,
        records=[
            (
                r.workflow,
                r.invocation_id,
                r.mode,
                r.started_at,
                r.finished_at,
                r.status,
                r.critical_path_exec,
                r.cold_starts,
                r.retries,
            )
            for r in summary["records"]
        ],
    )
    if summary.get("telemetry") is not None:
        # One fresh registry per cell: cell runs are bit-identical for
        # any shard count, so merging these snapshots in cell order
        # replays the exact same float additions regardless of which
        # worker ran which cell.
        out["telemetry"] = summary["telemetry"]
    return out


def run_workflow_cells(
    cells: Sequence[dict], shards: int = 1, processes: bool = True
) -> list[dict]:
    """Run independent workflow cells across ``shards`` worker processes.

    Results come back in cell order and are bit-identical for any shard
    count (each cell is causally closed; see module docstring for why
    engine runs shard at cell rather than node granularity).
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    from ..parallel import ParallelRunner

    specs = [dict(cell, cell_index=index) for index, cell in enumerate(cells)]
    jobs = shards if processes else 1
    return ParallelRunner(jobs).map(_run_workflow_cell, specs)
